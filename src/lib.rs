//! # incprof-suite
//!
//! Umbrella crate for the IncProf reproduction: re-exports every
//! component crate so examples, integration tests, and downstream users
//! can depend on one crate.
//!
//! See the repository README for the architecture overview and
//! DESIGN.md for the paper-to-crate mapping.

pub use appekg;
pub use hpc_apps;
pub use incprof_cluster as cluster;
pub use incprof_collect as collect;
pub use incprof_core as core;
pub use incprof_obs as obs;
pub use incprof_par as par;
pub use incprof_profile as profile;
pub use incprof_runtime as runtime;
pub use incprof_serve as serve;
pub use incprof_shard as shard;
pub use incprof_store as store;
pub use mpi_sim;
