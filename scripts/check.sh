#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from anywhere inside the repository.
set -euo pipefail
cd "$(git rev-parse --show-toplevel)"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (workspace, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> incprof-lint (workspace invariants, warnings are errors)"
cargo run -q -p incprof-lint -- --deny-warnings --json target/lint-diagnostics.json

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "All checks passed."
