#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from anywhere inside the repository.
#
#   scripts/check.sh            # everything
#   scripts/check.sh smoke      # only the serve smoke (CI runs this step
#                               # separately so its artifacts upload on
#                               # failure; SMOKE_DIR overrides the workdir)
#   scripts/check.sh cluster-smoke
#                               # only the shard-router cluster smoke:
#                               # 2 spawned backends, kill -9 failover,
#                               # merged scrape (SMOKE_DIR as above)
#   scripts/check.sh docs-links # only the README ↔ docs/ link check
#   scripts/check.sh sca        # only the static-analysis gate: incprof
#                               # sca over the workspace (graph rules +
#                               # per-line lints, warnings are errors)
#                               # plus the apps call-graph export; leaves
#                               # target/sca-report.json for CI upload
#   scripts/check.sh incr       # only the incremental-analysis bench
#                               # gate: warm >= 15x overall / >= 4x per
#                               # app, cold-path budget, k7/k8 Lloyd
#                               # iteration cap; leaves
#                               # experiments_out/incr_report.json
set -euo pipefail
cd "$(git rev-parse --show-toplevel)"

docs_links() {
    echo "==> docs links (every docs/*.md linked from README, every link resolves)"
    local fail=0
    for doc in docs/*.md; do
        grep -qF "$doc" README.md \
            || { echo "docs-links: $doc is not linked from README.md"; fail=1; }
    done
    for ref in $(grep -o 'docs/[A-Za-z0-9_.-]*\.md' README.md | sort -u); do
        [ -f "$ref" ] \
            || { echo "docs-links: README.md links missing file $ref"; fail=1; }
    done
    [ "$fail" -eq 0 ] || exit 1
}

serve_smoke() {
    echo "==> serve smoke (daemon + admin round-trip on ephemeral ports)"
    cargo build -q -p incprof-cli
    INCPROF="$(pwd)/target/debug/incprof"
    if [ -z "${SMOKE_DIR:-}" ]; then
        SMOKE_DIR="$(mktemp -d)"
        trap 'rm -rf "$SMOKE_DIR"' EXIT
    else
        mkdir -p "$SMOKE_DIR"
    fi
    "$INCPROF" demo "$SMOKE_DIR/run.json" >/dev/null
    # timeout(1) hard-bounds the whole exchange so a wedged daemon fails
    # the gate instead of hanging it; the daemon picks its own ports and
    # reports them through --addr-file / --admin-addr-file.
    timeout 60 "$INCPROF" serve --addr 127.0.0.1:0 --addr-file "$SMOKE_DIR/addr.txt" \
        --admin 127.0.0.1:0 --admin-addr-file "$SMOKE_DIR/admin.txt" \
        --store-dir "$SMOKE_DIR/store" \
        >"$SMOKE_DIR/serve.log" 2>&1 &
    SERVE_PID=$!
    for _ in $(seq 1 100); do
        [ -s "$SMOKE_DIR/addr.txt" ] && [ -s "$SMOKE_DIR/admin.txt" ] && break
        sleep 0.1
    done
    [ -s "$SMOKE_DIR/addr.txt" ] || { echo "serve smoke: daemon never bound"; exit 1; }
    [ -s "$SMOKE_DIR/admin.txt" ] || { echo "serve smoke: admin socket never bound"; exit 1; }
    ADDR="$(cat "$SMOKE_DIR/addr.txt")"
    ADMIN="$(cat "$SMOKE_DIR/admin.txt")"
    timeout 60 "$INCPROF" push "$ADDR" "$SMOKE_DIR/run.json" --analysis --keep-open \
        --session-file "$SMOKE_DIR/session.txt" \
        >"$SMOKE_DIR/report.json"
    grep -q '"phases"' "$SMOKE_DIR/report.json" \
        || { echo "serve smoke: report has no phases"; cat "$SMOKE_DIR/report.json"; exit 1; }
    # Admin plane: the scrape must be well-formed exposition that saw
    # the push traffic, and the flight-recorder dump valid JSON. grep -v
    # drops the CLI's trailing "top: 1 refresh(es) of ..." status line.
    timeout 60 "$INCPROF" top "$ADMIN" --iterations 1 --raw \
        | grep -v '^top: ' >"$SMOKE_DIR/scrape.txt"
    grep -q '^# TYPE incprof_serve_frames_received counter$' "$SMOKE_DIR/scrape.txt" \
        || { echo "serve smoke: scrape missing frame counter"; cat "$SMOKE_DIR/scrape.txt"; exit 1; }
    grep -q '^incprof_session_snapshots{session="[0-9]*"} [1-9]' "$SMOKE_DIR/scrape.txt" \
        || { echo "serve smoke: scrape has no session snapshots"; cat "$SMOKE_DIR/scrape.txt"; exit 1; }
    awk '!/^# TYPE / && !/^[a-z_][a-z0-9_]*({[^}]*})? -?[0-9.]+(e-?[0-9]+)?$/ { bad=1; print "malformed:", $0 } END { exit bad }' \
        "$SMOKE_DIR/scrape.txt" \
        || { echo "serve smoke: malformed exposition line"; exit 1; }
    timeout 60 "$INCPROF" top "$ADMIN" --iterations 1 --recorder >"$SMOKE_DIR/recorder.json"
    grep -q '"total":' "$SMOKE_DIR/recorder.json" \
        || { echo "serve smoke: recorder dump malformed"; cat "$SMOKE_DIR/recorder.json"; exit 1; }
    timeout 60 "$INCPROF" top "$ADMIN" --iterations 1 --health | grep -q '"status":"ok"' \
        || { echo "serve smoke: health not ok"; exit 1; }
    timeout 60 "$INCPROF" push "$ADDR" "$SMOKE_DIR/run.json" --analysis --shutdown >/dev/null
    wait "$SERVE_PID" || { echo "serve smoke: daemon exited non-zero"; cat "$SMOKE_DIR/serve.log"; exit 1; }

    # Second life: a fresh daemon over the same --store-dir must answer
    # for the kept-open session by id, byte-identically to the first
    # life's report (transparent rehydration; docs/PERSISTENCE.md).
    echo "==> serve smoke: restart + rehydrate over $SMOKE_DIR/store"
    [ -s "$SMOKE_DIR/session.txt" ] || { echo "serve smoke: push wrote no session id"; exit 1; }
    SID="$(cat "$SMOKE_DIR/session.txt")"
    timeout 60 "$INCPROF" serve --addr 127.0.0.1:0 --addr-file "$SMOKE_DIR/addr2.txt" \
        --store-dir "$SMOKE_DIR/store" \
        >"$SMOKE_DIR/serve2.log" 2>&1 &
    SERVE2_PID=$!
    for _ in $(seq 1 100); do
        [ -s "$SMOKE_DIR/addr2.txt" ] && break
        sleep 0.1
    done
    [ -s "$SMOKE_DIR/addr2.txt" ] || { echo "serve smoke: restarted daemon never bound"; exit 1; }
    ADDR2="$(cat "$SMOKE_DIR/addr2.txt")"
    timeout 60 "$INCPROF" query "$ADDR2" "$SID" --analysis --close --shutdown \
        >"$SMOKE_DIR/report2.json"
    cmp -s "$SMOKE_DIR/report.json" "$SMOKE_DIR/report2.json" || {
        echo "serve smoke: rehydrated report differs from the first life"
        diff "$SMOKE_DIR/report.json" "$SMOKE_DIR/report2.json" | head -20
        exit 1
    }
    wait "$SERVE2_PID" || { echo "serve smoke: restarted daemon exited non-zero"; cat "$SMOKE_DIR/serve2.log"; exit 1; }
}

cluster_smoke() {
    echo "==> cluster smoke (shard router + 2 backends, kill -9 failover)"
    cargo build -q -p incprof-cli
    INCPROF="$(pwd)/target/debug/incprof"
    if [ -z "${SMOKE_DIR:-}" ]; then
        SMOKE_DIR="$(mktemp -d)"
        trap 'rm -rf "$SMOKE_DIR"' EXIT
    else
        mkdir -p "$SMOKE_DIR"
    fi
    "$INCPROF" demo "$SMOKE_DIR/run.json" >/dev/null
    mkdir -p "$SMOKE_DIR/pids"
    # The router spawns its two serve children itself (spawn mode); all
    # three processes share the store so a killed backend's sessions can
    # replay on the survivor. timeout(1) bounds the whole cluster's life.
    timeout 120 "$INCPROF" shard --backends 2 \
        --addr 127.0.0.1:0 --addr-file "$SMOKE_DIR/router-addr.txt" \
        --admin 127.0.0.1:0 --admin-addr-file "$SMOKE_DIR/router-admin.txt" \
        --store-dir "$SMOKE_DIR/cluster-store" --pid-dir "$SMOKE_DIR/pids" \
        >"$SMOKE_DIR/shard.log" 2>&1 &
    SHARD_PID=$!
    for _ in $(seq 1 150); do
        [ -s "$SMOKE_DIR/router-addr.txt" ] && [ -s "$SMOKE_DIR/router-admin.txt" ] && break
        sleep 0.1
    done
    [ -s "$SMOKE_DIR/router-addr.txt" ] \
        || { echo "cluster smoke: router never bound"; cat "$SMOKE_DIR/shard.log"; exit 1; }
    [ -s "$SMOKE_DIR/router-admin.txt" ] \
        || { echo "cluster smoke: router admin never bound"; cat "$SMOKE_DIR/shard.log"; exit 1; }
    RADDR="$(cat "$SMOKE_DIR/router-addr.txt")"
    RADMIN="$(cat "$SMOKE_DIR/router-admin.txt")"

    # Push/query round-trip through the router, session kept open so the
    # failover below addresses the same id.
    timeout 60 "$INCPROF" push "$RADDR" "$SMOKE_DIR/run.json" --analysis --keep-open \
        --session-file "$SMOKE_DIR/cluster-session.txt" \
        >"$SMOKE_DIR/cluster-report.json"
    grep -q '"phases"' "$SMOKE_DIR/cluster-report.json" \
        || { echo "cluster smoke: report has no phases"; cat "$SMOKE_DIR/cluster-report.json"; exit 1; }

    # The merged scrape must be well-formed exposition carrying both
    # shards' samples under the shard label, with TYPE lines deduped.
    timeout 60 "$INCPROF" top "$RADMIN" --iterations 1 --raw \
        | grep -v '^top: ' >"$SMOKE_DIR/cluster-scrape.txt"
    grep -q 'shard="0"' "$SMOKE_DIR/cluster-scrape.txt" \
        || { echo "cluster smoke: scrape has no shard 0 samples"; cat "$SMOKE_DIR/cluster-scrape.txt"; exit 1; }
    grep -q 'shard="1"' "$SMOKE_DIR/cluster-scrape.txt" \
        || { echo "cluster smoke: scrape has no shard 1 samples"; cat "$SMOKE_DIR/cluster-scrape.txt"; exit 1; }
    [ "$(grep -c '^# TYPE incprof_serve_frames_received ' "$SMOKE_DIR/cluster-scrape.txt")" = 1 ] \
        || { echo "cluster smoke: merged scrape duplicates TYPE lines"; exit 1; }
    awk '!/^# TYPE / && !/^[a-z_][a-z0-9_]*({[^}]*})? -?[0-9.]+(e-?[0-9]+)?$/ { bad=1; print "malformed:", $0 } END { exit bad }' \
        "$SMOKE_DIR/cluster-scrape.txt" \
        || { echo "cluster smoke: malformed merged exposition line"; exit 1; }
    timeout 60 "$INCPROF" top "$RADMIN" --iterations 1 --health | grep -q '"status":"ok"' \
        || { echo "cluster smoke: aggregate health not ok"; exit 1; }

    # Kill -9 the backend that owns the session (found via the pure
    # placement helper) and query again: the survivor must adopt the
    # session, replay it from the shared store, and answer with the
    # byte-identical report.
    SID="$(cat "$SMOKE_DIR/cluster-session.txt")"
    OWNER="$("$INCPROF" shard --route "$SID" --backends 2)"
    echo "==> cluster smoke: kill -9 shard $OWNER (owner of session $SID), query must fail over"
    kill -9 "$(cat "$SMOKE_DIR/pids/backend-$OWNER.pid")"
    timeout 60 "$INCPROF" query "$RADDR" "$SID" --analysis >"$SMOKE_DIR/cluster-report2.json"
    cmp -s "$SMOKE_DIR/cluster-report.json" "$SMOKE_DIR/cluster-report2.json" || {
        echo "cluster smoke: post-failover report differs from the pre-kill report"
        diff "$SMOKE_DIR/cluster-report.json" "$SMOKE_DIR/cluster-report2.json" | head -20
        exit 1
    }
    timeout 60 "$INCPROF" top "$RADMIN" --iterations 1 --health | grep -q '"status":"degraded"' \
        || { echo "cluster smoke: health must report degraded after a backend death"; exit 1; }

    # Drain: Shutdown through the router drains the surviving backend
    # before the ack, and the router process exits cleanly.
    timeout 60 "$INCPROF" query "$RADDR" "$SID" --close --shutdown >/dev/null
    wait "$SHARD_PID" \
        || { echo "cluster smoke: router exited non-zero"; cat "$SMOKE_DIR/shard.log"; exit 1; }
}

sca_gate() {
    echo "==> incprof sca (multi-pass static analysis: parser, call graph, P02/D05/A01)"
    cargo build -q -p incprof-cli
    INCPROF="$(pwd)/target/debug/incprof"
    # The JSON artifact (diagnostics + graph stats + timed run) survives
    # for CI to upload when the gate fails.
    "$INCPROF" sca . --deny-warnings --json target/sca-report.json
    echo "==> incprof callgraph (apps static graph vs golden)"
    "$INCPROF" callgraph . --json target/apps-callgraph.json
    cmp -s target/apps-callgraph.json tests/golden/apps_callgraph.json || {
        echo "sca: apps call graph drifted from tests/golden/apps_callgraph.json"
        diff tests/golden/apps_callgraph.json target/apps-callgraph.json | head -20
        exit 1
    }
}

if [ "${1:-all}" = "smoke" ]; then
    serve_smoke
    echo "Serve smoke passed."
    exit 0
fi

if [ "${1:-all}" = "cluster-smoke" ]; then
    cluster_smoke
    echo "Cluster smoke passed."
    exit 0
fi

incr_gate() {
    echo "==> incr_bench (warm-vs-cold replay: speedup, cold budget, k7/k8 iteration gates)"
    # Release build: the gates are timing assertions. The JSON report
    # (per-app speedups, counter deltas) survives for CI to upload when
    # a gate fails.
    cargo run -q --release -p incprof-bench --bin incr_bench
}

if [ "${1:-all}" = "sca" ]; then
    sca_gate
    echo "Static-analysis gate passed."
    exit 0
fi

if [ "${1:-all}" = "incr" ]; then
    incr_gate
    echo "Incremental-analysis bench gate passed."
    exit 0
fi

if [ "${1:-all}" = "docs-links" ]; then
    docs_links
    echo "Docs links OK."
    exit 0
fi

docs_links

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (workspace, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> incprof-lint (workspace invariants, warnings are errors)"
cargo run -q -p incprof-lint -- --deny-warnings --json target/lint-diagnostics.json

sca_gate

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> cache determinism (warm analysis byte-identical to cold)"
cargo test -q -p incprof-suite --test cache_determinism

incr_gate

serve_smoke

cluster_smoke

echo "All checks passed."
