#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from anywhere inside the repository.
set -euo pipefail
cd "$(git rev-parse --show-toplevel)"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (workspace, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> incprof-lint (workspace invariants, warnings are errors)"
cargo run -q -p incprof-lint -- --deny-warnings --json target/lint-diagnostics.json

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> cache determinism (warm analysis byte-identical to cold)"
cargo test -q -p incprof-suite --test cache_determinism

echo "==> serve smoke (daemon round-trip on an ephemeral port)"
cargo build -q -p incprof-cli
INCPROF="$(pwd)/target/debug/incprof"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
"$INCPROF" demo "$SMOKE_DIR/run.json" >/dev/null
# timeout(1) hard-bounds the whole exchange so a wedged daemon fails the
# gate instead of hanging it; the daemon picks its own port and reports
# it through --addr-file.
timeout 60 "$INCPROF" serve --addr 127.0.0.1:0 --addr-file "$SMOKE_DIR/addr.txt" \
    >"$SMOKE_DIR/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SMOKE_DIR/addr.txt" ] && break
    sleep 0.1
done
[ -s "$SMOKE_DIR/addr.txt" ] || { echo "serve smoke: daemon never bound"; exit 1; }
ADDR="$(cat "$SMOKE_DIR/addr.txt")"
timeout 60 "$INCPROF" push "$ADDR" "$SMOKE_DIR/run.json" --analysis --shutdown \
    >"$SMOKE_DIR/report.json"
grep -q '"phases"' "$SMOKE_DIR/report.json" \
    || { echo "serve smoke: report has no phases"; cat "$SMOKE_DIR/report.json"; exit 1; }
wait "$SERVE_PID" || { echo "serve smoke: daemon exited non-zero"; cat "$SMOKE_DIR/serve.log"; exit 1; }

echo "All checks passed."
