#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from anywhere inside the repository.
#
#   scripts/check.sh            # everything
#   scripts/check.sh smoke      # only the serve smoke (CI runs this step
#                               # separately so its artifacts upload on
#                               # failure; SMOKE_DIR overrides the workdir)
#   scripts/check.sh docs-links # only the README ↔ docs/ link check
#   scripts/check.sh sca        # only the static-analysis gate: incprof
#                               # sca over the workspace (graph rules +
#                               # per-line lints, warnings are errors)
#                               # plus the apps call-graph export; leaves
#                               # target/sca-report.json for CI upload
set -euo pipefail
cd "$(git rev-parse --show-toplevel)"

docs_links() {
    echo "==> docs links (every docs/*.md linked from README, every link resolves)"
    local fail=0
    for doc in docs/*.md; do
        grep -qF "$doc" README.md \
            || { echo "docs-links: $doc is not linked from README.md"; fail=1; }
    done
    for ref in $(grep -o 'docs/[A-Za-z0-9_.-]*\.md' README.md | sort -u); do
        [ -f "$ref" ] \
            || { echo "docs-links: README.md links missing file $ref"; fail=1; }
    done
    [ "$fail" -eq 0 ] || exit 1
}

serve_smoke() {
    echo "==> serve smoke (daemon + admin round-trip on ephemeral ports)"
    cargo build -q -p incprof-cli
    INCPROF="$(pwd)/target/debug/incprof"
    if [ -z "${SMOKE_DIR:-}" ]; then
        SMOKE_DIR="$(mktemp -d)"
        trap 'rm -rf "$SMOKE_DIR"' EXIT
    else
        mkdir -p "$SMOKE_DIR"
    fi
    "$INCPROF" demo "$SMOKE_DIR/run.json" >/dev/null
    # timeout(1) hard-bounds the whole exchange so a wedged daemon fails
    # the gate instead of hanging it; the daemon picks its own ports and
    # reports them through --addr-file / --admin-addr-file.
    timeout 60 "$INCPROF" serve --addr 127.0.0.1:0 --addr-file "$SMOKE_DIR/addr.txt" \
        --admin 127.0.0.1:0 --admin-addr-file "$SMOKE_DIR/admin.txt" \
        --store-dir "$SMOKE_DIR/store" \
        >"$SMOKE_DIR/serve.log" 2>&1 &
    SERVE_PID=$!
    for _ in $(seq 1 100); do
        [ -s "$SMOKE_DIR/addr.txt" ] && [ -s "$SMOKE_DIR/admin.txt" ] && break
        sleep 0.1
    done
    [ -s "$SMOKE_DIR/addr.txt" ] || { echo "serve smoke: daemon never bound"; exit 1; }
    [ -s "$SMOKE_DIR/admin.txt" ] || { echo "serve smoke: admin socket never bound"; exit 1; }
    ADDR="$(cat "$SMOKE_DIR/addr.txt")"
    ADMIN="$(cat "$SMOKE_DIR/admin.txt")"
    timeout 60 "$INCPROF" push "$ADDR" "$SMOKE_DIR/run.json" --analysis --keep-open \
        --session-file "$SMOKE_DIR/session.txt" \
        >"$SMOKE_DIR/report.json"
    grep -q '"phases"' "$SMOKE_DIR/report.json" \
        || { echo "serve smoke: report has no phases"; cat "$SMOKE_DIR/report.json"; exit 1; }
    # Admin plane: the scrape must be well-formed exposition that saw
    # the push traffic, and the flight-recorder dump valid JSON. grep -v
    # drops the CLI's trailing "top: 1 refresh(es) of ..." status line.
    timeout 60 "$INCPROF" top "$ADMIN" --iterations 1 --raw \
        | grep -v '^top: ' >"$SMOKE_DIR/scrape.txt"
    grep -q '^# TYPE incprof_serve_frames_received counter$' "$SMOKE_DIR/scrape.txt" \
        || { echo "serve smoke: scrape missing frame counter"; cat "$SMOKE_DIR/scrape.txt"; exit 1; }
    grep -q '^incprof_session_snapshots{session="[0-9]*"} [1-9]' "$SMOKE_DIR/scrape.txt" \
        || { echo "serve smoke: scrape has no session snapshots"; cat "$SMOKE_DIR/scrape.txt"; exit 1; }
    awk '!/^# TYPE / && !/^[a-z_][a-z0-9_]*({[^}]*})? -?[0-9.]+(e-?[0-9]+)?$/ { bad=1; print "malformed:", $0 } END { exit bad }' \
        "$SMOKE_DIR/scrape.txt" \
        || { echo "serve smoke: malformed exposition line"; exit 1; }
    timeout 60 "$INCPROF" top "$ADMIN" --iterations 1 --recorder >"$SMOKE_DIR/recorder.json"
    grep -q '"total":' "$SMOKE_DIR/recorder.json" \
        || { echo "serve smoke: recorder dump malformed"; cat "$SMOKE_DIR/recorder.json"; exit 1; }
    timeout 60 "$INCPROF" top "$ADMIN" --iterations 1 --health | grep -q '"status":"ok"' \
        || { echo "serve smoke: health not ok"; exit 1; }
    timeout 60 "$INCPROF" push "$ADDR" "$SMOKE_DIR/run.json" --analysis --shutdown >/dev/null
    wait "$SERVE_PID" || { echo "serve smoke: daemon exited non-zero"; cat "$SMOKE_DIR/serve.log"; exit 1; }

    # Second life: a fresh daemon over the same --store-dir must answer
    # for the kept-open session by id, byte-identically to the first
    # life's report (transparent rehydration; docs/PERSISTENCE.md).
    echo "==> serve smoke: restart + rehydrate over $SMOKE_DIR/store"
    [ -s "$SMOKE_DIR/session.txt" ] || { echo "serve smoke: push wrote no session id"; exit 1; }
    SID="$(cat "$SMOKE_DIR/session.txt")"
    timeout 60 "$INCPROF" serve --addr 127.0.0.1:0 --addr-file "$SMOKE_DIR/addr2.txt" \
        --store-dir "$SMOKE_DIR/store" \
        >"$SMOKE_DIR/serve2.log" 2>&1 &
    SERVE2_PID=$!
    for _ in $(seq 1 100); do
        [ -s "$SMOKE_DIR/addr2.txt" ] && break
        sleep 0.1
    done
    [ -s "$SMOKE_DIR/addr2.txt" ] || { echo "serve smoke: restarted daemon never bound"; exit 1; }
    ADDR2="$(cat "$SMOKE_DIR/addr2.txt")"
    timeout 60 "$INCPROF" query "$ADDR2" "$SID" --analysis --close --shutdown \
        >"$SMOKE_DIR/report2.json"
    cmp -s "$SMOKE_DIR/report.json" "$SMOKE_DIR/report2.json" || {
        echo "serve smoke: rehydrated report differs from the first life"
        diff "$SMOKE_DIR/report.json" "$SMOKE_DIR/report2.json" | head -20
        exit 1
    }
    wait "$SERVE2_PID" || { echo "serve smoke: restarted daemon exited non-zero"; cat "$SMOKE_DIR/serve2.log"; exit 1; }
}

sca_gate() {
    echo "==> incprof sca (multi-pass static analysis: parser, call graph, P02/D05/A01)"
    cargo build -q -p incprof-cli
    INCPROF="$(pwd)/target/debug/incprof"
    # The JSON artifact (diagnostics + graph stats + timed run) survives
    # for CI to upload when the gate fails.
    "$INCPROF" sca . --deny-warnings --json target/sca-report.json
    echo "==> incprof callgraph (apps static graph vs golden)"
    "$INCPROF" callgraph . --json target/apps-callgraph.json
    cmp -s target/apps-callgraph.json tests/golden/apps_callgraph.json || {
        echo "sca: apps call graph drifted from tests/golden/apps_callgraph.json"
        diff tests/golden/apps_callgraph.json target/apps-callgraph.json | head -20
        exit 1
    }
}

if [ "${1:-all}" = "smoke" ]; then
    serve_smoke
    echo "Serve smoke passed."
    exit 0
fi

if [ "${1:-all}" = "sca" ]; then
    sca_gate
    echo "Static-analysis gate passed."
    exit 0
fi

if [ "${1:-all}" = "docs-links" ]; then
    docs_links
    echo "Docs links OK."
    exit 0
fi

docs_links

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (workspace, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> incprof-lint (workspace invariants, warnings are errors)"
cargo run -q -p incprof-lint -- --deny-warnings --json target/lint-diagnostics.json

sca_gate

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> cache determinism (warm analysis byte-identical to cold)"
cargo test -q -p incprof-suite --test cache_determinism

serve_smoke

echo "All checks passed."
