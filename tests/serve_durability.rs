//! Durable sessions: a daemon restarted over the same `--store-dir`
//! must answer for its old sessions as if it had never stopped.
//!
//! For each of the paper's five applications the cumulative series is
//! split across a daemon restart: the first half is streamed into a
//! durable daemon which is then shut down mid-stream (sessions left
//! open), and the second half is streamed into a *fresh* daemon over
//! the same store directory, addressing the same session ids. The
//! final Full report — session id, snapshot count, online timeline,
//! analysis — is compared as raw JSON bytes against an uninterrupted
//! daemon that saw the whole stream in one life (run without a store,
//! which also pins that persistence never perturbs report bytes).
//!
//! A second test tears the log mid-record, the crash the append path
//! must survive: the damaged tail is truncated cleanly on reopen, the
//! surviving prefix stays queryable (byte-identical to the offline
//! pipeline on that prefix), the stale checkpoint is rejected, and the
//! session still closes without leaking.

use incprof_suite::collect::SampleSeries;
use incprof_suite::core::PhaseDetector;
use incprof_suite::hpc_apps::{gadget2, graph500, lammps, miniamr, minife, HeartbeatPlan, RunMode};
use incprof_suite::profile::FunctionTable;
use incprof_suite::serve::{Client, ServeConfig, Server};
use std::path::PathBuf;

/// Profile every app once; returns (name, rank-0 series, table).
fn profiled_runs() -> Vec<(&'static str, SampleSeries, FunctionTable)> {
    let plan = HeartbeatPlan::none();
    let mode = RunMode::virtual_1s();
    let mut runs = Vec::new();
    let g = graph500::run(&graph500::Graph500Config::tiny(), mode, &plan).rank0;
    runs.push(("Graph500", g.series, g.table));
    let m = minife::run(&minife::MiniFeConfig::tiny(), mode, &plan).rank0;
    runs.push(("MiniFE", m.series, m.table));
    let a = miniamr::run(&miniamr::MiniAmrConfig::tiny(), mode, &plan).rank0;
    runs.push(("MiniAMR", a.series, a.table));
    let l = lammps::run(&lammps::LammpsConfig::tiny(), mode, &plan).rank0;
    runs.push(("LAMMPS", l.series, l.table));
    let ga = gadget2::run(&gadget2::Gadget2Config::tiny(), mode, &plan).rank0;
    runs.push(("Gadget2", ga.series, ga.table));
    runs
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("incprof_durab_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(store: &std::path::Path) -> ServeConfig {
    ServeConfig {
        store_dir: Some(store.to_path_buf()),
        ..ServeConfig::default()
    }
}

#[test]
fn restart_mid_stream_rehydrates_all_apps_byte_identically() {
    let runs = profiled_runs();
    let store = tmpdir("restart");

    // Uninterrupted baseline: one daemon sees every snapshot of every
    // app in a single life. No store: the bytes must match regardless.
    let mut baselines: Vec<(u64, String)> = Vec::new();
    {
        let server = Server::bind(ServeConfig::default()).expect("bind baseline");
        let addr = server.local_addr().to_string();
        let handle = server.start().expect("start baseline");
        for (app, series, table) in &runs {
            let mut client = Client::connect_tcp(&addr).expect("connect");
            let session = client.open().expect("open");
            for snap in series.snapshots() {
                client
                    .push_retry(session, &snap.to_gmon(table), 50)
                    .unwrap_or_else(|e| panic!("{app}: baseline push failed: {e}"));
            }
            let report = client.query_report(session).expect("baseline query");
            baselines.push((session, report));
        }
        handle.shutdown();
    }

    // First life: stream only the first half of each app, then stop the
    // daemon with every session still open (mid-stream).
    let mut sessions: Vec<u64> = Vec::new();
    {
        let server = Server::bind(durable_config(&store)).expect("bind first life");
        let addr = server.local_addr().to_string();
        let handle = server.start().expect("start first life");
        for ((app, series, table), (baseline_id, _)) in runs.iter().zip(&baselines) {
            let mut client = Client::connect_tcp(&addr).expect("connect");
            let session = client.open().expect("open");
            assert_eq!(
                session, *baseline_id,
                "{app}: durable daemon must assign the same session id"
            );
            let half = series.len().div_ceil(2);
            for snap in &series.snapshots()[..half] {
                client
                    .push_retry(session, &snap.to_gmon(table), 50)
                    .unwrap_or_else(|e| panic!("{app}: first-life push failed: {e}"));
            }
            sessions.push(session);
        }
        handle.shutdown();
    }

    // Second life: a fresh daemon over the same directory. The old
    // session ids must accept the rest of the stream (rehydrating
    // transparently on first touch) and report exactly the baseline.
    {
        let server = Server::bind(durable_config(&store)).expect("bind second life");
        let addr = server.local_addr().to_string();
        let handle = server.start().expect("start second life");
        for ((app, series, table), (session, baseline)) in runs.iter().zip(&baselines) {
            let mut client = Client::connect_tcp(&addr).expect("connect");
            let half = series.len().div_ceil(2);
            for snap in &series.snapshots()[half..] {
                client
                    .push_retry(*session, &snap.to_gmon(table), 50)
                    .unwrap_or_else(|e| panic!("{app}: second-life push failed: {e}"));
            }
            let report = client.query_report(*session).expect("recovered query");
            assert_eq!(
                report, *baseline,
                "{app}: report across a restart differs from the uninterrupted daemon"
            );
            client.close(*session).expect("close");
        }
        assert_eq!(handle.active_sessions(), 0, "sessions must not leak");
        handle.shutdown();
    }

    // Close is destructive: nothing durable remains.
    let leftovers: Vec<_> = std::fs::read_dir(&store)
        .map(|d| d.flatten().map(|e| e.path()).collect())
        .unwrap_or_default();
    assert!(leftovers.is_empty(), "closed sessions left {leftovers:?}");
}

#[test]
fn torn_log_tail_is_truncated_cleanly_and_the_prefix_stays_queryable() {
    let plan = HeartbeatPlan::none();
    let run = minife::run(&minife::MiniFeConfig::tiny(), RunMode::virtual_1s(), &plan).rank0;
    let (series, table) = (run.series, run.table);
    assert!(series.len() >= 2, "need at least two snapshots to tear one");
    let store = tmpdir("torn");

    // First life: stream everything, leave the session open, shut down.
    let session = {
        let server = Server::bind(durable_config(&store)).expect("bind");
        let addr = server.local_addr().to_string();
        let handle = server.start().expect("start");
        let mut client = Client::connect_tcp(&addr).expect("connect");
        let session = client.open().expect("open");
        for snap in series.snapshots() {
            client
                .push_retry(session, &snap.to_gmon(&table), 50)
                .expect("push");
        }
        handle.shutdown();
        session
    };

    // Tear the tail: chop a few bytes off the last record, simulating a
    // crash mid-append. The graceful shutdown above also wrote a
    // checkpoint covering the *whole* series — now stale, so reopening
    // must reject it and replay the truncated log cold.
    let log = store.join(session.to_string()).join("log.iprf");
    let len = std::fs::metadata(&log).expect("log exists").len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&log)
        .expect("open log");
    file.set_len(len - 5).expect("truncate");
    drop(file);

    // Second life: the surviving prefix (all but the torn record) must
    // be queryable and byte-identical to the offline pipeline on it.
    let prefix: SampleSeries = series.snapshots()[..series.len() - 1]
        .iter()
        .cloned()
        .collect();
    let offline = serde_json::to_string(
        &PhaseDetector::default()
            .detect_series(&prefix)
            .expect("offline detect"),
    )
    .expect("serialize offline analysis");

    let server = Server::bind(durable_config(&store)).expect("bind after tear");
    let addr = server.local_addr().to_string();
    let handle = server.start().expect("start after tear");
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let analysis = client.query_analysis(session).expect("query prefix");
    assert_eq!(analysis, offline, "torn-tail prefix analysis differs");
    let full = client.query_report(session).expect("query full");
    assert!(
        full.contains(&format!("\"snapshots\":{}", series.len() - 1)),
        "{full}"
    );
    assert!(
        !full.contains("\"fault\""),
        "torn tail must not fault: {full}"
    );
    client.close(session).expect("close");
    assert_eq!(handle.active_sessions(), 0, "sessions must not leak");
    handle.shutdown();
}
