//! Integration: full phase discovery over every mini-app, plus the
//! discovered-heartbeat re-instrumentation loop (the paper's complete
//! workflow: profile → detect → instrument → heartbeat data).

use incprof_suite::appekg::HeartbeatSeries;
use incprof_suite::core::PhaseDetector;
use incprof_suite::hpc_apps::plan::discovered_site_names;
use incprof_suite::hpc_apps::{gadget2, graph500, lammps, miniamr, minife, HeartbeatPlan, RunMode};

#[test]
fn graph500_discovered_sites_drive_heartbeats() {
    let cfg = graph500::Graph500Config {
        scale: 11,
        edge_factor: 8,
        num_roots: 8,
        ..graph500::Graph500Config::tiny()
    };
    let profiled = graph500::run(&cfg, RunMode::virtual_1s(), &HeartbeatPlan::none());
    let analysis = PhaseDetector::new()
        .detect_series(&profiled.rank0.series)
        .unwrap();
    let plan = HeartbeatPlan::from_analysis(&analysis, &profiled.rank0.table);
    assert!(!plan.is_empty());

    // Re-run with the discovered instrumentation; every planned site must
    // actually beat.
    let hb_run = graph500::run(&cfg, RunMode::virtual_1s(), &plan);
    let series = HeartbeatSeries::from_records(
        &hb_run.rank0.hb_records,
        Some(hb_run.rank0.series.len() as u64),
    );
    assert_eq!(
        series.len(),
        plan.len(),
        "every discovered site produced heartbeats"
    );
    for s in series.values() {
        assert!(s.total_count() > 0);
    }
}

#[test]
fn minife_phase_count_matches_paper_band() {
    let out = minife::run(
        &minife::MiniFeConfig {
            n: 14,
            cg_iters: 60,
            procs: 1,
        },
        RunMode::virtual_1s(),
        &HeartbeatPlan::none(),
    );
    let analysis = PhaseDetector::new()
        .detect_series(&out.rank0.series)
        .unwrap();
    // Paper: 5 phases. Accept the neighborhood — the clustering is
    // scale-dependent — but never a trivial single phase.
    assert!((3..=6).contains(&analysis.k), "k = {}", analysis.k);
}

#[test]
fn every_phase_is_covered_at_threshold() {
    let out = miniamr::run(
        &miniamr::MiniAmrConfig::tiny(),
        RunMode::virtual_1s(),
        &HeartbeatPlan::none(),
    );
    let analysis = PhaseDetector::new()
        .detect_series(&out.rank0.series)
        .unwrap();
    for phase in &analysis.phases {
        if phase.intervals.iter().any(|_| true) {
            assert!(
                phase.coverage() >= 0.5,
                "phase {} coverage {}",
                phase.id,
                phase.coverage()
            );
        }
    }
}

#[test]
fn lammps_heartbeat_durations_track_kernel_cost() {
    // The discovered force-kernel heartbeat's mean duration must be the
    // per-call kernel time, not noise.
    let cfg = lammps::LammpsConfig {
        atoms_per_side: 9,
        steps: 60,
        rebuild_every: 8,
        ..lammps::LammpsConfig::tiny()
    };
    let profiled = lammps::run(&cfg, RunMode::virtual_1s(), &HeartbeatPlan::none());
    let analysis = PhaseDetector::new()
        .detect_series(&profiled.rank0.series)
        .unwrap();
    let plan = HeartbeatPlan::from_analysis(&analysis, &profiled.rank0.table);
    let names = discovered_site_names(&analysis, &profiled.rank0.table);
    assert!(names.contains("PairLJCut::compute"), "{names:?}");

    let hb_run = lammps::run(&cfg, RunMode::virtual_1s(), &plan);
    let compute_idx = hb_run
        .rank0
        .hb_names
        .iter()
        .position(|n| n.starts_with("PairLJCut::compute"))
        .unwrap() as u32;
    let mut total_duration = 0.0;
    let mut total_count = 0u64;
    for r in &hb_run.rank0.hb_records {
        if let Some(s) = r.stats(incprof_suite::appekg::HeartbeatId(compute_idx)) {
            total_duration += s.total_duration_ns as f64;
            total_count += s.count;
        }
    }
    assert!(total_count > 0);
    let mean = total_duration / total_count as f64;
    assert!(mean > 0.0);
}

#[test]
fn gadget2_fast_functions_stay_undetected_at_one_second() {
    // The paper's §VI-E finding: the four fast timestep drivers cannot be
    // phases at 1-second interval resolution.
    let out = gadget2::run(
        &gadget2::Gadget2Config {
            particles: 400,
            steps: 20,
            pm_grid: 16,
            ..gadget2::Gadget2Config::tiny()
        },
        RunMode::virtual_1s(),
        &HeartbeatPlan::none(),
    );
    let analysis = PhaseDetector::new()
        .detect_series(&out.rank0.series)
        .unwrap();
    let names = discovered_site_names(&analysis, &out.rank0.table);
    for fast in [
        "find_next_sync_point_and_drift",
        "advance_and_find_timesteps",
    ] {
        assert!(
            !names.contains(fast),
            "{fast} should be invisible at 1 s intervals"
        );
    }
}

#[test]
fn rank_symmetry_holds_for_multirank_runs() {
    // "All of the applications being used are symmetrically parallel and
    // thus all processes behave similarly" (§VI): result_check values are
    // produced via collectives, so a 4-rank wall run and a 1-rank wall
    // run of graph500 must both validate cleanly.
    for procs in [1usize, 4] {
        let out = graph500::run(
            &graph500::Graph500Config {
                scale: 8,
                edge_factor: 6,
                num_roots: 2,
                procs,
                ..graph500::Graph500Config::tiny()
            },
            RunMode::Wall {
                interval_ns: 50_000_000,
                profile: true,
            },
            &HeartbeatPlan::none(),
        );
        assert_eq!(out.result_check, 0.0, "procs = {procs}");
    }
}
