//! Parallel determinism gate: phase detection must be **bit-identical**
//! for every `INCPROF_THREADS` setting.
//!
//! The `incprof-par` pool promises that chunk boundaries and reduction
//! order never depend on the worker count. This test drives the promise
//! end-to-end: profile each of the paper's five applications once
//! (virtual clock — the collected series itself is deterministic), then
//! run the full detection pipeline (feature build → k sweep → elbow →
//! Algorithm 1) at 1, 2, and 8 workers and require exact equality of
//! every output — assignments, phases, and the raw f64 WCSS / silhouette
//! sweeps (compared bitwise, not within a tolerance).

use incprof_suite::collect::SampleSeries;
use incprof_suite::core::{PhaseAnalysis, PhaseDetector};
use incprof_suite::hpc_apps::{gadget2, graph500, lammps, miniamr, minife, HeartbeatPlan, RunMode};

/// Profile every app once; returns (name, rank-0 cumulative series).
fn profiled_series() -> Vec<(&'static str, SampleSeries)> {
    let plan = HeartbeatPlan::none();
    let mode = RunMode::virtual_1s();
    vec![
        (
            "Graph500",
            graph500::run(&graph500::Graph500Config::tiny(), mode, &plan)
                .rank0
                .series,
        ),
        (
            "MiniFE",
            minife::run(&minife::MiniFeConfig::tiny(), mode, &plan)
                .rank0
                .series,
        ),
        (
            "MiniAMR",
            miniamr::run(&miniamr::MiniAmrConfig::tiny(), mode, &plan)
                .rank0
                .series,
        ),
        (
            "LAMMPS",
            lammps::run(&lammps::LammpsConfig::tiny(), mode, &plan)
                .rank0
                .series,
        ),
        (
            "Gadget2",
            gadget2::run(&gadget2::Gadget2Config::tiny(), mode, &plan)
                .rank0
                .series,
        ),
    ]
}

fn assert_bit_identical(app: &str, threads: usize, base: &PhaseAnalysis, got: &PhaseAnalysis) {
    assert_eq!(got.k, base.k, "{app}: k differs at {threads} threads");
    assert_eq!(
        got.assignments, base.assignments,
        "{app}: assignments differ at {threads} threads"
    );
    assert_eq!(
        got.phases, base.phases,
        "{app}: phases differ at {threads} threads"
    );
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    assert_eq!(
        bits(&got.wcss_sweep),
        bits(&base.wcss_sweep),
        "{app}: WCSS sweep differs bitwise at {threads} threads"
    );
    let sil_bits = |v: &[Option<f64>]| {
        v.iter()
            .map(|x| x.map(f64::to_bits))
            .collect::<Vec<Option<u64>>>()
    };
    assert_eq!(
        sil_bits(&got.silhouette_sweep),
        sil_bits(&base.silhouette_sweep),
        "{app}: silhouette sweep differs bitwise at {threads} threads"
    );
}

#[test]
fn clustering_is_bit_identical_across_thread_counts() {
    let detector = PhaseDetector::new();
    for (app, series) in profiled_series() {
        incprof_suite::par::set_threads(1);
        let base = detector
            .detect_series(&series)
            .unwrap_or_else(|e| panic!("{app}: {e}"));
        assert!(base.k >= 1, "{app}: no phases detected");
        for threads in [2usize, 8] {
            incprof_suite::par::set_threads(threads);
            let got = detector.detect_series(&series).unwrap();
            assert_bit_identical(app, threads, &base, &got);
        }
        incprof_suite::par::set_threads(0);
    }
}

#[test]
fn pruned_kmeans_is_bit_identical_across_thread_counts() {
    // The Hamerly-bound fast path skips exact distance work per point;
    // its correctness claim is "identical bits to the naive argmin, at
    // any worker count". The tiny app series stay under the parallel
    // threshold inside Lloyd (n·k·d >= 200_000), so synthesize a
    // 3000×10 dataset where k = 8 crosses it and the pruned assignment
    // really runs chunked.
    use incprof_suite::cluster::{kmeans, Dataset, KMeansConfig};
    let (n, d) = (3000usize, 10usize);
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 40) as f64 / (1u64 << 24) as f64
    };
    let mut data = Dataset::zeros(n, d);
    for i in 0..n {
        let blob = (i % 4) as f64 * 10.0;
        for j in 0..d {
            data.set(i, j, blob + next());
        }
    }
    let pruned = KMeansConfig::new(8).with_seed(99);
    let naive = KMeansConfig {
        pruning: false,
        ..pruned.clone()
    };
    let bits = |r: &incprof_suite::cluster::KMeansResult| {
        let centroid_bits: Vec<u64> = (0..8)
            .flat_map(|c| r.centroids.row(c).iter().map(|v| v.to_bits()))
            .collect();
        (
            r.assignments.clone(),
            r.wcss.to_bits(),
            centroid_bits,
            r.iterations,
        )
    };
    incprof_suite::par::set_threads(1);
    let base = kmeans(&data, &pruned);
    assert_eq!(
        bits(&base),
        bits(&kmeans(&data, &naive)),
        "pruning changed the result at 1 thread"
    );
    for threads in [2usize, 8] {
        incprof_suite::par::set_threads(threads);
        assert_eq!(
            bits(&kmeans(&data, &pruned)),
            bits(&base),
            "pruned k-means differs at {threads} threads"
        );
        assert_eq!(
            bits(&kmeans(&data, &naive)),
            bits(&base),
            "naive k-means differs at {threads} threads"
        );
    }
    incprof_suite::par::set_threads(0);
}

#[test]
fn detect_many_is_bit_identical_to_solo_detects() {
    // Batch-of-runs concurrency (one pool task per run) must not change
    // any individual result either.
    let detector = PhaseDetector::new();
    let series = profiled_series();
    let matrices: Vec<_> = series
        .iter()
        .map(|(_, s)| {
            incprof_suite::collect::IntervalMatrix::from_interval_profiles(
                &s.interval_profiles().unwrap(),
            )
        })
        .collect();
    incprof_suite::par::set_threads(8);
    let batched = detector.detect_many(&matrices);
    incprof_suite::par::set_threads(1);
    for (i, (app, _)) in series.iter().enumerate() {
        let solo = detector.detect(&matrices[i]).unwrap();
        let got = batched[i].as_ref().unwrap();
        assert_bit_identical(app, 8, &solo, got);
    }
    incprof_suite::par::set_threads(0);
}
