//! The cluster determinism bridge: putting the `incprof-shard` router
//! in front of the daemon must never move a report byte.
//!
//! For each of the paper's five applications the rank-0 cumulative
//! series is streamed through three topologies — a plain
//! `incprof-serve` daemon, a router fronting a 1-backend cluster, and a
//! router fronting a 3-backend cluster — and the sessions' Full
//! reports are compared as raw JSON bytes, no tolerance, no reparse.
//! Topology is infrastructure, not semantics.
//!
//! A second test kills a backend mid-stream (graceful shutdown here;
//! `scripts/check.sh` covers the `kill -9` flavor): the dead shard's
//! sessions fail over to the ring's next healthy backend, replay from
//! the shared store, absorb the rest of the stream, and still produce
//! reports byte-identical to an uninterrupted single daemon.

use incprof_suite::collect::SampleSeries;
use incprof_suite::hpc_apps::{gadget2, graph500, lammps, miniamr, minife, HeartbeatPlan, RunMode};
use incprof_suite::profile::FunctionTable;
use incprof_suite::serve::{Client, ServeConfig, Server, ServerHandle};
use incprof_suite::shard::{BackendSpec, Ring, Router, RouterConfig, RouterHandle};
use std::path::{Path, PathBuf};

/// Profile every app once; returns (name, rank-0 series, table).
fn profiled_runs() -> Vec<(&'static str, SampleSeries, FunctionTable)> {
    let plan = HeartbeatPlan::none();
    let mode = RunMode::virtual_1s();
    let mut runs = Vec::new();
    let g = graph500::run(&graph500::Graph500Config::tiny(), mode, &plan).rank0;
    runs.push(("Graph500", g.series, g.table));
    let m = minife::run(&minife::MiniFeConfig::tiny(), mode, &plan).rank0;
    runs.push(("MiniFE", m.series, m.table));
    let a = miniamr::run(&miniamr::MiniAmrConfig::tiny(), mode, &plan).rank0;
    runs.push(("MiniAMR", a.series, a.table));
    let l = lammps::run(&lammps::LammpsConfig::tiny(), mode, &plan).rank0;
    runs.push(("LAMMPS", l.series, l.table));
    let ga = gadget2::run(&gadget2::Gadget2Config::tiny(), mode, &plan).rank0;
    runs.push(("Gadget2", ga.series, ga.table));
    runs
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("incprof_shard_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// An in-process cluster: `n` durable backends over one shared store,
/// fronted by a router.
struct Cluster {
    backends: Vec<Option<ServerHandle>>,
    router: RouterHandle,
}

impl Cluster {
    fn start(n: usize, store: &Path) -> Cluster {
        let mut backends = Vec::with_capacity(n);
        let mut specs = Vec::with_capacity(n);
        for _ in 0..n {
            let server = Server::bind(ServeConfig {
                store_dir: Some(store.to_path_buf()),
                ..ServeConfig::default()
            })
            .expect("bind backend");
            specs.push(BackendSpec {
                data: server.local_addr().to_string(),
                admin: None,
            });
            backends.push(Some(server.start().expect("start backend")));
        }
        let router = Router::bind(RouterConfig {
            backends: specs,
            store_dir: Some(store.to_path_buf()),
            ..RouterConfig::default()
        })
        .expect("bind router");
        Cluster {
            backends,
            router: router.start().expect("start router"),
        }
    }

    /// Gracefully stop one backend (the "kill": its listener closes and
    /// its sessions drain to the shared store).
    fn kill_backend(&mut self, b: usize) {
        if let Some(handle) = self.backends[b].take() {
            handle.shutdown();
        }
    }

    fn shutdown(self) {
        self.router.shutdown();
        for handle in self.backends.into_iter().flatten() {
            handle.shutdown();
        }
    }
}

/// Stream every app through a plain daemon and return (session id,
/// report bytes) per app — the baseline every topology must match.
fn baseline_reports(runs: &[(&str, SampleSeries, FunctionTable)]) -> Vec<(u64, String)> {
    let server = Server::bind(ServeConfig::default()).expect("bind baseline");
    let addr = server.local_addr().to_string();
    let handle = server.start().expect("start baseline");
    let mut reports = Vec::new();
    for (app, series, table) in runs {
        let mut client = Client::connect_tcp(&addr).expect("connect");
        let session = client.open().expect("open");
        for snap in series.snapshots() {
            client
                .push_retry(session, &snap.to_gmon(table), 50)
                .unwrap_or_else(|e| panic!("{app}: baseline push failed: {e}"));
        }
        reports.push((session, client.query_report(session).expect("query")));
    }
    handle.shutdown();
    reports
}

#[test]
fn cluster_reports_are_byte_identical_across_topologies() {
    let runs = profiled_runs();
    let baselines = baseline_reports(&runs);

    for n in [1usize, 3] {
        let store = tmpdir(&format!("topo{n}"));
        let cluster = Cluster::start(n, &store);
        for ((app, series, table), (base_session, base_report)) in runs.iter().zip(&baselines) {
            let mut client = Client::connect_tcp(cluster.router.addr()).expect("connect router");
            let session = client.open().expect("open via router");
            assert_eq!(
                session, *base_session,
                "{app}: router-allocated id diverged from the plain daemon's"
            );
            for snap in series.snapshots() {
                client
                    .push_retry(session, &snap.to_gmon(table), 50)
                    .unwrap_or_else(|e| panic!("{app}: push via {n}-backend cluster failed: {e}"));
            }
            let report = client.query_report(session).expect("query via router");
            assert_eq!(
                &report, base_report,
                "{app}: report through a {n}-backend cluster differs from plain incprof-serve"
            );
        }
        assert!(
            cluster.router.backends_up().iter().all(|&u| u),
            "no backend should die in the happy path"
        );
        cluster.shutdown();
        let _ = std::fs::remove_dir_all(&store);
    }
}

#[test]
fn killing_a_backend_mid_stream_keeps_reports_byte_identical() {
    let runs = profiled_runs();
    let baselines = baseline_reports(&runs);

    let store = tmpdir("failover");
    let mut cluster = Cluster::start(3, &store);
    let ring = Ring::new(3);

    // First half of every stream lands on the healthy ring.
    let mut clients = Vec::new();
    for ((app, series, table), (base_session, _)) in runs.iter().zip(&baselines) {
        let mut client = Client::connect_tcp(cluster.router.addr()).expect("connect router");
        let session = client.open().expect("open via router");
        assert_eq!(session, *base_session, "{app}: allocation diverged");
        let snaps = series.snapshots();
        for snap in &snaps[..snaps.len() / 2] {
            client
                .push_retry(session, &snap.to_gmon(table), 50)
                .unwrap_or_else(|e| panic!("{app}: pre-kill push failed: {e}"));
        }
        clients.push((client, session));
    }

    // Kill the first session's home shard. Per the pinned ring
    // placements, some sessions live there and some do not — the test
    // covers both the failover and the untouched path.
    let victim = ring.owner(clients[0].1);
    let moved = clients
        .iter()
        .filter(|(_, s)| ring.owner(*s) == victim)
        .count();
    assert!(
        moved >= 1,
        "the victim backend must own at least one session"
    );
    assert!(
        moved < clients.len(),
        "the victim backend must not own every session"
    );
    cluster.kill_backend(victim);

    // Second half flows through the router as if nothing happened: the
    // dead shard's sessions adopt on the next healthy backend and
    // replay from the shared store before answering.
    for (((app, series, table), (_, base_report)), (client, session)) in
        runs.iter().zip(&baselines).zip(&mut clients)
    {
        let snaps = series.snapshots();
        for snap in &snaps[snaps.len() / 2..] {
            client
                .push_retry(*session, &snap.to_gmon(table), 50)
                .unwrap_or_else(|e| panic!("{app}: post-kill push failed: {e}"));
        }
        let report = client.query_report(*session).expect("post-kill query");
        assert_eq!(
            &report, base_report,
            "{app}: post-failover report differs from an uninterrupted daemon"
        );
    }

    let up = cluster.router.backends_up();
    assert!(!up[victim], "the router must have marked the victim down");
    assert_eq!(
        up.iter().filter(|&&u| u).count(),
        2,
        "only the victim may be down"
    );
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&store);
}
