//! The paper-facing static call graph: `incprof callgraph`'s JSON over
//! the five apps is golden-pinned, and the `source_context` join gives
//! back function ids that round-trip against the profile's function
//! table.

use incprof_suite::collect::IntervalMatrix;
use incprof_suite::core::{source_context_json, PhaseDetector, SourceGraph};
use incprof_suite::hpc_apps::minife::{self, MiniFeConfig};
use incprof_suite::hpc_apps::{HeartbeatPlan, RunMode};
use std::path::Path;

const GOLDEN: &str = include_str!("golden/apps_callgraph.json");

fn apps_analysis() -> incprof_lint::WorkspaceAnalysis {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    incprof_lint::analyze_subtree(root, "crates/apps/src").expect("apps subtree walk failed")
}

#[test]
fn apps_callgraph_json_matches_golden() {
    let analysis = apps_analysis();
    let rendered = analysis.graph.render_json(&analysis.symbols);
    assert_eq!(
        rendered, GOLDEN,
        "apps static call graph drifted from tests/golden/apps_callgraph.json; \
         regenerate with: cargo run -p incprof-cli --bin incprof -- callgraph . \
         --json tests/golden/apps_callgraph.json"
    );
}

#[test]
fn apps_callgraph_is_deterministic_and_covers_all_five_apps() {
    let a = apps_analysis();
    let b = apps_analysis();
    assert_eq!(
        a.graph.render_json(&a.symbols),
        b.graph.render_json(&b.symbols)
    );
    for app in [
        "minife.rs",
        "miniamr.rs",
        "lammps.rs",
        "gadget2.rs",
        "graph500.rs",
    ] {
        assert!(
            a.symbols
                .defs
                .iter()
                .any(|d| d.file.ends_with(app) && d.name == "run"),
            "no `run` parsed out of {app}"
        );
    }
    // The paper's MiniFE hot kernel hangs off the app driver.
    let golden: &str = GOLDEN;
    assert!(
        golden.contains("\"qualified\":\"cg_solve\""),
        "cg_solve missing"
    );
}

#[test]
fn source_context_ids_round_trip_against_the_function_table() {
    // Run MiniFE, detect phases, join against the real static graph,
    // then check every (id, name) pair in the emitted source_context
    // resolves back through the run's FunctionTable both ways.
    let cfg = MiniFeConfig {
        n: 10,
        cg_iters: 40,
        procs: 1,
    };
    let out = minife::run(&cfg, RunMode::virtual_1s(), &HeartbeatPlan::none());
    let intervals = out.rank0.series.interval_profiles().unwrap();
    let matrix = IntervalMatrix::from_interval_profiles(&intervals);
    let analysis = PhaseDetector::new().detect(&matrix).unwrap();
    let table = &out.rank0.table;

    let sca = apps_analysis();
    let graph = SourceGraph::new(sca.graph.named_edges(&sca.symbols));
    let json = source_context_json(&analysis, |id| table.name(id), &graph);

    let mut checked = 0;
    for entry in json.split("{\"id\":").skip(1) {
        let (id, rest) = entry.split_once(",\"name\":\"").expect("id/name shape");
        let name = rest.split('"').next().unwrap();
        let id: u32 = id.parse().unwrap();
        assert_eq!(
            table.id_of(name).map(|f| f.0),
            Some(id),
            "source_context id {id} does not round-trip for {name}"
        );
        checked += 1;
    }
    assert!(checked > 0, "no functions in source_context:\n{json}");
    // And the known MiniFE shape: the CG solve phase is attributed to a
    // function whose static caller is the app driver.
    assert!(
        json.contains("\"name\":\"cg_solve\",\"callers\":[\"run\"]"),
        "{json}"
    );
}
