//! Cross-crate integration: runtime → collector → (gprof report path) →
//! phase detection → Algorithm 1, on a synthetic workload with planted
//! phases.

use incprof_suite::collect::{CollectorConfig, IncProfCollector, IntervalMatrix};
use incprof_suite::core::types::InstrumentationType;
use incprof_suite::core::{PhaseAnalysis, PhaseDetector};
use incprof_suite::profile::FunctionTable;
use incprof_suite::runtime::{Clock, ProfilerRuntime};

const INTERVAL: u64 = 1_000_000_000;

/// Build a three-phase synthetic run:
/// * phase A — 12 intervals of `setup` (many short calls per interval);
/// * phase B — 20 intervals of one long `simulate` call (zero calls
///   after the first interval → loop site);
/// * phase C — 8 intervals of `teardown`.
fn planted_run() -> (incprof_suite::collect::SampleSeries, FunctionTable) {
    let clock = Clock::virtual_clock();
    let rt = ProfilerRuntime::with_clock(clock.clone());
    let setup = rt.register_function("setup");
    let simulate = rt.register_function("simulate");
    let teardown = rt.register_function("teardown");
    let collector = IncProfCollector::manual(rt.clone(), CollectorConfig::default());

    for _ in 0..12 {
        for _ in 0..40 {
            let _g = rt.enter(setup);
            clock.advance(INTERVAL / 40);
        }
        collector.tick();
    }
    {
        let _g = rt.enter(simulate);
        for _ in 0..20 {
            clock.advance(INTERVAL);
            collector.tick();
        }
    }
    for _ in 0..8 {
        let _g = rt.enter(teardown);
        clock.advance(INTERVAL);
        drop(_g);
        collector.tick();
    }
    (collector.into_series(), rt.function_table())
}

fn phase_of<'a>(
    analysis: &'a PhaseAnalysis,
    table: &FunctionTable,
    name: &str,
) -> &'a incprof_suite::core::Phase {
    analysis
        .phases
        .iter()
        .find(|p| p.sites.iter().any(|s| table.name(s.function) == name))
        .unwrap_or_else(|| panic!("no phase selected site {name}"))
}

#[test]
fn planted_phases_are_recovered_exactly() {
    let (series, table) = planted_run();
    assert_eq!(series.len(), 40);
    let analysis = PhaseDetector::new().detect_series(&series).unwrap();
    assert_eq!(analysis.k, 3, "three planted phases");

    let pa = phase_of(&analysis, &table, "setup");
    assert_eq!(pa.intervals, (0..12).collect::<Vec<_>>());
    let pb = phase_of(&analysis, &table, "simulate");
    assert_eq!(pb.intervals, (12..32).collect::<Vec<_>>());
    let pc = phase_of(&analysis, &table, "teardown");
    assert_eq!(pc.intervals, (32..40).collect::<Vec<_>>());
}

#[test]
fn site_types_follow_call_structure() {
    let (series, table) = planted_run();
    let analysis = PhaseDetector::new().detect_series(&series).unwrap();
    let setup_site = analysis
        .phases
        .iter()
        .flat_map(|p| &p.sites)
        .find(|s| table.name(s.function) == "setup")
        .unwrap();
    assert_eq!(
        setup_site.inst_type,
        InstrumentationType::Body,
        "setup is called every interval"
    );

    let sim_site = analysis
        .phases
        .iter()
        .flat_map(|p| &p.sites)
        .find(|s| table.name(s.function) == "simulate")
        .unwrap();
    assert_eq!(
        sim_site.inst_type,
        InstrumentationType::Loop,
        "simulate runs across intervals without new calls"
    );
}

#[test]
fn coverage_percentages_are_consistent() {
    let (series, _) = planted_run();
    let analysis = PhaseDetector::new().detect_series(&series).unwrap();
    let n_total: usize = analysis.phases.iter().map(|p| p.intervals.len()).sum();
    assert_eq!(n_total, 40);
    for phase in &analysis.phases {
        for site in &phase.sites {
            // app% = phase% × |phase| / total.
            let expected_app = site.phase_pct * phase.intervals.len() as f64 / n_total as f64;
            assert!((site.app_pct - expected_app).abs() < 1e-9);
            assert!(site.phase_pct <= 100.0 + 1e-9);
        }
        assert!(phase.coverage() >= 0.95, "phase {} under-covered", phase.id);
    }
}

#[test]
fn report_path_reproduces_direct_path_phases() {
    // The paper's pipeline goes through gprof *text reports*; verify the
    // report path and the direct in-memory path agree on phase structure
    // despite the 10 ms report rounding.
    let (series, table) = planted_run();
    let detector = PhaseDetector::new();
    let direct = detector.detect_series(&series).unwrap();
    let (via_reports, _matrix, parsed_table) =
        detector.detect_series_via_reports(&series, &table).unwrap();

    assert_eq!(direct.k, via_reports.k);
    // Same partition of intervals (cluster ids may permute; compare as
    // co-membership).
    let n = direct.assignments.len();
    for i in 0..n {
        for j in (i + 1)..n {
            assert_eq!(
                direct.assignments[i] == direct.assignments[j],
                via_reports.assignments[i] == via_reports.assignments[j],
                "intervals {i},{j} grouped differently via reports"
            );
        }
    }
    // Same site names.
    let direct_names: std::collections::BTreeSet<String> = direct
        .phases
        .iter()
        .flat_map(|p| p.sites.iter().map(|s| table.name(s.function).to_string()))
        .collect();
    let report_names: std::collections::BTreeSet<String> = via_reports
        .phases
        .iter()
        .flat_map(|p| {
            p.sites
                .iter()
                .map(|s| parsed_table.name(s.function).to_string())
        })
        .collect();
    assert_eq!(direct_names, report_names);
}

#[test]
fn interval_matrix_reconstructs_run_totals() {
    let (series, table) = planted_run();
    let intervals = series.interval_profiles().unwrap();
    let matrix = IntervalMatrix::from_interval_profiles(&intervals);
    assert_eq!(matrix.n_intervals(), 40);
    // Sum over the matrix equals the final cumulative sample's total.
    let last_total = series.last().unwrap().flat.total_self_time() as f64 / 1e9;
    assert!((matrix.total_self_secs() - last_total).abs() < 1e-9);
    // Column totals match the per-function cumulative totals.
    for (col, &f) in matrix.functions().iter().enumerate() {
        let cum = series.last().unwrap().flat.get(f).self_time as f64 / 1e9;
        assert!(
            (matrix.column_total_secs(col) - cum).abs() < 1e-9,
            "column {} ({})",
            col,
            table.name(f)
        );
    }
}

#[test]
fn gmon_binary_path_roundtrips_through_collector() {
    let clock = Clock::virtual_clock();
    let rt = ProfilerRuntime::with_clock(clock.clone());
    let f = rt.register_function("kernel");
    let collector = IncProfCollector::manual(
        rt.clone(),
        CollectorConfig {
            interval_ns: INTERVAL,
            encode_gmon: true,
        },
    );
    for _ in 0..4 {
        let _g = rt.enter(f);
        clock.advance(INTERVAL);
        drop(_g);
        collector.tick();
    }
    let dumps = collector.decode_gmon_dumps().unwrap();
    assert_eq!(dumps.len(), 4);
    for (i, d) in dumps.iter().enumerate() {
        assert_eq!(d.sample_index as usize, i);
        let id = d.functions.iter().next().unwrap().0;
        assert_eq!(d.flat.get(id).self_time, (i as u64 + 1) * INTERVAL);
    }
}
