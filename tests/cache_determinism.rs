//! The incremental-analysis determinism contract: warm (cached) results
//! must be **byte-identical** to cold `PhaseDetector` output.
//!
//! `AnalysisCache` reuses interval deltas and pairwise-distance entries
//! across streamed queries; its entire correctness argument is that
//! every reused number is bit-for-bit the one a cold run would have
//! computed. These tests pin that over the paper's five applications
//! under a streaming push/query interleave — at every prefix of every
//! series, the cached analysis JSON is compared byte-wise against a
//! fresh `detect_series` (no tolerance, no reparse), including the
//! memoized second query, scaled-feature configurations that force the
//! invalidation path, config changes mid-stream, and the serve-session
//! wiring with the cache on and off.

use incprof_suite::collect::SampleSeries;
use incprof_suite::core::{AnalysisCache, FeatureSet, PhaseDetector};
use incprof_suite::hpc_apps::{gadget2, graph500, lammps, miniamr, minife, HeartbeatPlan, RunMode};
use incprof_suite::profile::FunctionTable;

/// Profile every app once; returns (name, rank-0 series, table).
fn profiled_runs() -> Vec<(&'static str, SampleSeries, FunctionTable)> {
    let plan = HeartbeatPlan::none();
    let mode = RunMode::virtual_1s();
    let mut runs = Vec::new();
    let g = graph500::run(&graph500::Graph500Config::tiny(), mode, &plan).rank0;
    runs.push(("Graph500", g.series, g.table));
    let m = minife::run(&minife::MiniFeConfig::tiny(), mode, &plan).rank0;
    runs.push(("MiniFE", m.series, m.table));
    let a = miniamr::run(&miniamr::MiniAmrConfig::tiny(), mode, &plan).rank0;
    runs.push(("MiniAMR", a.series, a.table));
    let l = lammps::run(&lammps::LammpsConfig::tiny(), mode, &plan).rank0;
    runs.push(("LAMMPS", l.series, l.table));
    let ga = gadget2::run(&gadget2::Gadget2Config::tiny(), mode, &plan).rank0;
    runs.push(("Gadget2", ga.series, ga.table));
    runs
}

fn json(analysis: &incprof_suite::core::PhaseAnalysis) -> String {
    serde_json::to_string(analysis).expect("serialize analysis")
}

/// Stream `series` prefix-by-prefix through `cache`, comparing every
/// warm result (and a second, memoized query) byte-wise against a cold
/// `detect_series` on the same prefix.
fn assert_warm_equals_cold(
    app: &str,
    detector: &PhaseDetector,
    cache: &mut AnalysisCache,
    series: &SampleSeries,
) {
    let mut prefix = SampleSeries::new();
    for snap in series.snapshots() {
        prefix.push(snap.clone());
        let n = prefix.len();
        let cold = json(
            &detector
                .detect_series(&prefix)
                .unwrap_or_else(|e| panic!("{app}[..{n}]: cold detect failed: {e}")),
        );
        let warm = json(
            &cache
                .analyze(detector, &prefix)
                .unwrap_or_else(|e| panic!("{app}[..{n}]: warm analyze failed: {e}")),
        );
        assert_eq!(warm, cold, "{app}[..{n}]: warm != cold");
        // Query again with no new data: the memo path must return the
        // same bytes, not just an equivalent analysis.
        let memo = json(&cache.analyze(detector, &prefix).expect("memo query"));
        assert_eq!(memo, cold, "{app}[..{n}]: memoized != cold");
    }
}

#[test]
fn warm_analysis_is_byte_identical_across_all_apps() {
    let detector = PhaseDetector::default();
    for (app, series, _) in &profiled_runs() {
        let mut cache = AnalysisCache::new();
        assert_warm_equals_cold(app, &detector, &mut cache, series);
    }
}

#[test]
fn warm_analysis_is_byte_identical_under_column_stat_scalings() {
    // MinMax and ZScore scale by *column* statistics, which shift as new
    // intervals arrive — the configurations that exercise the cache's
    // rescale-invalidation fallback. RowFraction is row-local (rows are
    // stable up to new zero columns) and rides the extend path; the
    // wider feature sets change the block layout the prefix check must
    // re-align.
    use incprof_suite::cluster::Scaling;
    let runs = profiled_runs();
    let (app, series, _) = &runs[2]; // MiniAMR: the longest series.
    for scaling in [Scaling::MinMax, Scaling::ZScore, Scaling::RowFraction] {
        for features in [FeatureSet::SelfTime, FeatureSet::SelfTimeAndCalls] {
            let detector = PhaseDetector {
                scaling,
                features,
                ..PhaseDetector::default()
            };
            let mut cache = AnalysisCache::new();
            assert_warm_equals_cold(app, &detector, &mut cache, series);
        }
    }
}

#[test]
fn chain_catchup_over_skipped_pushes_is_byte_identical() {
    // A dashboard that polls rarely leaves the k-means chains several
    // snapshots behind; the next query advances each chain over the
    // missed rows in one go. The fold is defined purely over the data,
    // so the catch-up answer must match both a cold run and a cache
    // that was queried at every push.
    let detector = PhaseDetector::default();
    for stride in [2usize, 5] {
        for (app, series, _) in &profiled_runs() {
            let mut sparse = AnalysisCache::new();
            let mut prefix = SampleSeries::new();
            for (i, snap) in series.snapshots().iter().enumerate() {
                prefix.push(snap.clone());
                let last = i + 1 == series.len();
                if i % stride != 0 && !last {
                    continue; // push without querying
                }
                let cold = json(&detector.detect_series(&prefix).expect("cold"));
                let warm = json(&sparse.analyze(&detector, &prefix).expect("catch-up"));
                assert_eq!(
                    warm,
                    cold,
                    "{app}[..{}] stride {stride}: catch-up != cold",
                    prefix.len()
                );
            }
        }
    }
}

#[test]
fn checkpoint_roundtrip_mid_stream_preserves_warm_byte_identity() {
    // Encode the cache (pair matrix + k-means chains + memo) halfway
    // through a stream, decode it into a fresh instance — as the serve
    // rehydration path does — and finish the stream on the decoded
    // cache. Every post-restore answer must still be byte-identical to
    // cold, and the restored state must be byte-identical to the
    // original encoder's.
    let detector = PhaseDetector::default();
    let runs = profiled_runs();
    for idx in [1usize, 2] {
        // MiniFE and MiniAMR: the series long enough to split.
        let (app, series, _) = &runs[idx];
        let mut cache = AnalysisCache::new();
        let half = series.len() / 2;
        let mut prefix = SampleSeries::new();
        for snap in &series.snapshots()[..half] {
            prefix.push(snap.clone());
            cache.analyze(&detector, &prefix).expect("warm first half");
        }
        let blob = cache.encode_state();
        let mut restored = AnalysisCache::decode_state(&blob).expect("mid-stream blob must decode");
        assert_eq!(
            restored.encode_state(),
            blob,
            "{app}: decode/encode round trip changed the blob"
        );
        for snap in &series.snapshots()[half..] {
            prefix.push(snap.clone());
            let cold = json(&detector.detect_series(&prefix).expect("cold"));
            let warm = json(&restored.analyze(&detector, &prefix).expect("restored"));
            assert_eq!(warm, cold, "{app}[..{}]: restored != cold", prefix.len());
        }
    }
}

#[test]
fn stale_version_checkpoint_is_rejected_not_misparsed() {
    // The chain section bumped the blob format to v2. A v1 blob (or any
    // other version byte) must be refused outright — the caller then
    // replays the snapshot log cold — never field-shifted into garbage.
    let detector = PhaseDetector::default();
    let runs = profiled_runs();
    let (_, series, _) = &runs[1];
    let mut cache = AnalysisCache::new();
    cache.analyze(&detector, series).expect("warm");
    let mut blob = cache.encode_state();
    assert!(AnalysisCache::decode_state(&blob).is_some());
    let current = blob[0];
    for version in [0u8, 1, current + 1, 0xFF] {
        blob[0] = version;
        assert!(
            AnalysisCache::decode_state(&blob).is_none(),
            "version {version} blob must be rejected"
        );
    }
}

#[test]
fn config_change_mid_stream_invalidates_instead_of_serving_stale() {
    let runs = profiled_runs();
    let (_, series, _) = &runs[1]; // MiniFE
    let a = PhaseDetector::default();
    let b = PhaseDetector {
        seed: 7,
        ..PhaseDetector::default()
    };
    assert_ne!(a.fingerprint(), b.fingerprint());
    let mut cache = AnalysisCache::new();
    // Warm the cache fully under config A, then swap to B on the same
    // series: results must match a cold B run, then a cold A run again.
    cache.analyze(&a, series).expect("warm A");
    let warm_b = json(&cache.analyze(&b, series).expect("warm B"));
    let cold_b = json(&b.detect_series(series).expect("cold B"));
    assert_eq!(warm_b, cold_b, "stale config-A state leaked into B");
    let warm_a = json(&cache.analyze(&a, series).expect("warm A again"));
    let cold_a = json(&a.detect_series(series).expect("cold A"));
    assert_eq!(warm_a, cold_a);
}

#[test]
fn serve_sessions_with_and_without_cache_agree_under_interleave() {
    use incprof_suite::core::OnlineConfig;
    use incprof_suite::serve::{Registry, ReportMode};
    use std::time::Instant;

    let detector = PhaseDetector::default();
    for (app, series, table) in &profiled_runs() {
        let cached = Registry::new(OnlineConfig::default(), 2, 64, true);
        let uncached = Registry::new(OnlineConfig::default(), 2, 64, false);
        let (_, cs) = cached.open().expect("open cached");
        let (_, us) = uncached.open().expect("open uncached");
        let mut cs = cs.lock().expect("lock cached session");
        let mut us = us.lock().expect("lock uncached session");
        for (i, snap) in series.snapshots().iter().enumerate() {
            let gmon = snap.to_gmon(table);
            cs.enqueue(gmon.clone(), Instant::now()).expect("enqueue");
            us.enqueue(gmon, Instant::now()).expect("enqueue");
            // Interleave: query both sessions after every push (the
            // query drains the pending snapshot first), twice every
            // third push to hit the memo path.
            let queries = if i % 3 == 0 { 2 } else { 1 };
            for _ in 0..queries {
                assert_eq!(
                    cs.report_json(&detector, ReportMode::AnalysisOnly),
                    us.report_json(&detector, ReportMode::AnalysisOnly),
                    "{app}: cached session diverged at push {i}"
                );
            }
        }
        assert_eq!(
            cs.report_json(&detector, ReportMode::Full),
            us.report_json(&detector, ReportMode::Full),
            "{app}: full reports diverged"
        );
    }
}
