//! Tier-1 gate: the workspace must lint clean.
//!
//! This is the in-test wiring of `incprof-lint` (the other two are the
//! `incprof lint` subcommand and the `scripts/check.sh` / CI step). It
//! runs under plain `cargo test`, with warnings promoted to errors, so
//! a determinism, clock, or panic-hygiene regression fails the build
//! with a file:line diagnostic rather than surviving to review.

use incprof_lint::{lint_workspace, Config};
use std::path::Path;

#[test]
fn workspace_lints_clean_under_deny_warnings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint_workspace(root, &Config::default().deny_warnings())
        .expect("lint walk over the workspace failed");
    assert!(
        report.is_clean(),
        "lint violations in the workspace:\n{}",
        report.render_human()
    );
    assert_eq!(report.warnings(), 0, "deny-warnings run must promote");
    // Sanity that the walk actually saw the workspace: far more files
    // than an empty checkout, and the known allow-markers were honored.
    assert!(
        report.files_scanned > 50,
        "only {} files scanned — walk is broken",
        report.files_scanned
    );
    assert!(
        report.suppressions_used > 0,
        "the workspace carries justified allow-markers; none matched"
    );
}
