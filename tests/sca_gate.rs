//! Tier-1 static-analysis gate: the multi-pass analysis (parser →
//! symbols → call graph → reachability → graph rules P02/D05/A01) must
//! leave the workspace clean, actually link a non-trivial graph, and
//! finish fast enough to live in CI (< 2 s, asserted on the obs-timed
//! `lint.engine.run` span rather than a wall clock in the test).

use incprof_lint::{lint_workspace_analyzed, Config};
use std::path::Path;

#[test]
fn workspace_is_clean_under_graph_rules_and_fast() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (report, analysis) = lint_workspace_analyzed(root, &Config::default().deny_warnings())
        .expect("sca walk over the workspace failed");
    assert!(
        report.is_clean(),
        "static-analysis violations in the workspace:\n{}",
        report.render_human()
    );

    // The analysis linked a real graph, not a degenerate one.
    let (confident, ambiguous) = analysis.graph.edge_counts();
    assert!(
        analysis.symbols.defs.len() > 500,
        "only {} functions parsed — item parser is broken",
        analysis.symbols.defs.len()
    );
    assert!(
        confident > 500,
        "only {confident} confident edges — resolution is broken"
    );
    assert!(ambiguous > 0, "no ambiguous edges is implausible");

    // Runtime budget: the whole multi-pass run is wrapped in the
    // `lint.engine.run` span; its recorded duration must stay under 2 s.
    let dur_ns = incprof_obs::global()
        .spans()
        .records()
        .iter()
        .rev()
        .find(|r| r.closed && r.name == incprof_obs::names::LINT_RUN)
        .map(|r| r.dur_ns)
        .expect("lint.engine.run span not recorded");
    assert!(
        dur_ns < 2_000_000_000,
        "sca run took {} ms, over the 2 s CI budget",
        dur_ns / 1_000_000
    );
}

#[test]
fn graph_rule_hazards_are_all_justified() {
    // Every Panic/Blocking/Alloc fact that graph rules would flag is
    // covered by a reasoned allow-marker; the suppression count in a
    // full run therefore exceeds the per-line rules' alone.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (report, analysis) = lint_workspace_analyzed(root, &Config::default())
        .expect("sca walk over the workspace failed");
    assert!(report.is_clean(), "{}", report.render_human());
    assert!(
        !analysis.graph.facts.is_empty(),
        "hazard scanning found nothing — fact extraction is broken"
    );
}
