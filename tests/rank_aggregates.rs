//! Integration: cross-rank aggregate statistics over real multi-rank app
//! runs — the paper's "we only use all the data for aggregate
//! descriptive statistics" plus its symmetry claim.

use incprof_suite::collect::{representative_rank, RankAggregate};
use incprof_suite::hpc_apps::{graph500, minife, HeartbeatPlan, RunMode};

#[test]
fn graph500_ranks_are_symmetric() {
    let out = graph500::run(
        &graph500::Graph500Config {
            scale: 9,
            edge_factor: 8,
            num_roots: 4,
            procs: 4,
            ..graph500::Graph500Config::tiny()
        },
        RunMode::Wall {
            interval_ns: 50_000_000,
            profile: true,
        },
        &HeartbeatPlan::none(),
    );
    assert_eq!(out.rank_profiles.len(), 4);
    let agg = RankAggregate::from_profiles(&out.rank_profiles);
    assert_eq!(agg.n_ranks(), 4);
    // "All of the applications being used are symmetrically parallel and
    // thus all processes behave similarly": wall timings jitter, but the
    // symmetry score must stay high.
    let score = agg.symmetry_score();
    assert!(score > 0.5, "symmetry score {score}");
    // Call counts are *exactly* symmetric for the BFS kernel (one call
    // per root per rank).
    let bfs = out.rank0.table.id_of("run_bfs").unwrap();
    for p in &out.rank_profiles {
        assert_eq!(p.get(bfs).calls, 4);
    }
    // The representative rank is a valid index.
    assert!(representative_rank(&out.rank_profiles) < 4);
}

#[test]
fn minife_rank_profiles_cover_all_kernels() {
    let out = minife::run(
        &minife::MiniFeConfig {
            n: 6,
            cg_iters: 10,
            procs: 3,
        },
        RunMode::Wall {
            interval_ns: 50_000_000,
            profile: true,
        },
        &HeartbeatPlan::none(),
    );
    assert_eq!(out.rank_profiles.len(), 3);
    let agg = RankAggregate::from_profiles(&out.rank_profiles);
    let cg = out.rank0.table.id_of("cg_solve").unwrap();
    let fa = agg.function(cg).expect("cg_solve profiled on every rank");
    assert_eq!(fa.present_on, 3);
    assert!(fa.mean_calls >= 1.0);
}

#[test]
fn single_rank_virtual_run_has_one_profile() {
    let out = minife::run(
        &minife::MiniFeConfig::tiny(),
        RunMode::virtual_1s(),
        &HeartbeatPlan::none(),
    );
    assert_eq!(out.rank_profiles.len(), 1);
    // The per-rank profile matches rank 0's own series tail (same
    // cumulative totals, modulo the extra final stop() sample).
    let agg = RankAggregate::from_profiles(&out.rank_profiles);
    assert!((agg.symmetry_score() - 1.0).abs() < 1e-12);
}
