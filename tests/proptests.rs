//! Property-based tests over the core data structures and invariants.

use incprof_suite::cluster::{
    dbscan, kmeans, mean_silhouette, select_k, Dataset, DbscanParams, KMeansConfig,
    KSelectionMethod,
};
use incprof_suite::collect::{IntervalMatrix, SampleSeries};
use incprof_suite::core::PhaseDetector;
use incprof_suite::profile::report::{parse_flat_profile, write_flat_profile};
use incprof_suite::profile::{
    FlatProfile, FunctionId, FunctionInfo, FunctionStats, FunctionTable, GmonData,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

fn arb_stats() -> impl Strategy<Value = FunctionStats> {
    (0u64..10_000_000_000, 0u64..10_000, 0u64..10_000_000_000).prop_map(
        |(self_time, calls, child_time)| FunctionStats {
            self_time,
            calls,
            child_time,
        },
    )
}

fn arb_flat(max_fns: u32) -> impl Strategy<Value = FlatProfile> {
    proptest::collection::btree_map(0u32..max_fns, arb_stats(), 0..16)
        .prop_map(|m| m.into_iter().map(|(id, s)| (FunctionId(id), s)).collect())
}

/// A monotone cumulative series: start from one profile and only add.
fn arb_cumulative_series() -> impl Strategy<Value = Vec<FlatProfile>> {
    (arb_flat(8), proptest::collection::vec(arb_flat(8), 1..6)).prop_map(|(first, increments)| {
        let mut out = vec![first];
        for inc in increments {
            let mut next = out.last().unwrap().clone();
            next.merge(&inc);
            out.push(next);
        }
        out
    })
}

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (1usize..5).prop_flat_map(|d| {
        proptest::collection::vec(proptest::collection::vec(-100.0f64..100.0, d..=d), 2..24)
            .prop_map(Dataset::from_rows)
    })
}

// ---------------------------------------------------------------------
// Profile invariants
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn gmon_roundtrip_is_identity(flat in arb_flat(12)) {
        let mut table = FunctionTable::new();
        for (id, _) in flat.iter() {
            // Ensure every referenced function exists in the table.
            while table.len() <= id.index() {
                let n = table.len();
                table.register_info(FunctionInfo::named(format!("fn_{n}")));
            }
        }
        let gmon = GmonData {
            sample_index: 3,
            timestamp_ns: 99,
            functions: table,
            flat: flat.clone(),
            callgraph: Default::default(),
        };
        let decoded = GmonData::decode(&gmon.encode()).unwrap();
        prop_assert_eq!(decoded.flat, flat);
        prop_assert_eq!(decoded.sample_index, 3);
    }

    #[test]
    fn delta_then_merge_reconstructs(series in arb_cumulative_series()) {
        let deltas = SampleSeries::deltas_of(&series).unwrap();
        let mut sum = FlatProfile::new();
        for d in &deltas {
            sum.merge(d);
        }
        // Sum of all interval deltas equals the final cumulative profile
        // (modulo entries that are all-zero in the final profile).
        let last = series.last().unwrap();
        for (id, s) in last.iter() {
            prop_assert_eq!(sum.get(id), *s);
        }
    }

    #[test]
    fn delta_is_never_negative(series in arb_cumulative_series()) {
        for pair in series.windows(2) {
            let d = pair[1].delta(&pair[0]).unwrap();
            for (_, s) in d.iter() {
                prop_assert!(s.self_time <= pair[1].total_self_time());
            }
        }
    }

    #[test]
    fn report_roundtrip_preserves_calls_and_order(flat in arb_flat(10)) {
        let mut table = FunctionTable::new();
        for (id, _) in flat.iter() {
            while table.len() <= id.index() {
                let n = table.len();
                table.register(format!("func_{n}"));
            }
        }
        let text = write_flat_profile(&flat, &table);
        let rows = parse_flat_profile(&text).unwrap();
        prop_assert_eq!(rows.len(), flat.len());
        // Rows come back in self-time-descending order.
        for pair in rows.windows(2) {
            prop_assert!(pair[0].self_secs >= pair[1].self_secs - 1e-9);
        }
        // Call counts are exact; times within gprof's 10 ms rounding.
        for row in &rows {
            let id = table.id_of(&row.name).unwrap();
            let orig = flat.get(id);
            prop_assert_eq!(row.calls.unwrap_or(0), orig.calls);
            let diff = (row.self_secs - orig.self_time as f64 / 1e9).abs();
            prop_assert!(diff <= 0.005 + 1e-9, "diff {diff}");
        }
    }
}

// ---------------------------------------------------------------------
// Clustering invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kmeans_assigns_to_nearest_centroid(data in arb_dataset(), k in 1usize..5) {
        let k = k.min(data.nrows());
        let res = kmeans(&data, &KMeansConfig::new(k));
        prop_assert_eq!(res.assignments.len(), data.nrows());
        for i in 0..data.nrows() {
            let own = res.sq_dist_to_centroid(&data, i);
            for c in 0..res.k() {
                let d = incprof_suite::cluster::distance::sq_euclidean(
                    data.row(i),
                    res.centroids.row(c),
                );
                prop_assert!(own <= d + 1e-9);
            }
        }
    }

    #[test]
    fn kmeans_is_deterministic(data in arb_dataset()) {
        let cfg = KMeansConfig::new(2.min(data.nrows()));
        let a = kmeans(&data, &cfg);
        let b = kmeans(&data, &cfg);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn silhouette_is_bounded(data in arb_dataset(), k in 2usize..4) {
        let k = k.min(data.nrows());
        let res = kmeans(&data, &KMeansConfig::new(k));
        if let Some(s) = mean_silhouette(&data, &res.assignments) {
            prop_assert!((-1.0..=1.0).contains(&s), "mean silhouette {s}");
        }
    }

    #[test]
    fn select_k_stays_in_sweep_range(data in arb_dataset()) {
        for method in [KSelectionMethod::Elbow, KSelectionMethod::Silhouette] {
            let sel = select_k(&data, 8, method, &KMeansConfig::new(0));
            prop_assert!(sel.k >= 1 && sel.k <= 8.min(data.nrows()));
            prop_assert_eq!(sel.result.assignments.len(), data.nrows());
        }
    }

    #[test]
    fn dbscan_labels_are_dense(data in arb_dataset(), eps in 0.1f64..50.0) {
        let labels = dbscan(&data, DbscanParams { eps, min_points: 2 });
        let k = labels.iter().filter_map(|l| l.cluster()).max().map(|m| m + 1).unwrap_or(0);
        // Every cluster id below k must be inhabited.
        for c in 0..k {
            prop_assert!(labels.iter().any(|l| l.cluster() == Some(c)), "cluster {c} empty");
        }
    }
}

// ---------------------------------------------------------------------
// Pipeline / Algorithm 1 invariants
// ---------------------------------------------------------------------

/// Interval profiles where every interval has at least one active
/// function (so full coverage is achievable).
fn arb_interval_profiles() -> impl Strategy<Value = Vec<FlatProfile>> {
    proptest::collection::vec(
        (
            0u32..6,
            1u64..5_000_000_000,
            0u64..50,
            proptest::collection::btree_map(0u32..6, arb_stats(), 0..4),
        ),
        2..30,
    )
    .prop_map(|entries| {
        entries
            .into_iter()
            .map(|(anchor, self_time, calls, extra)| {
                let mut p = FlatProfile::new();
                p.set(
                    FunctionId(anchor),
                    FunctionStats {
                        self_time,
                        calls,
                        child_time: 0,
                    },
                );
                for (id, mut s) in extra {
                    // Keep extra entries nonzero-safe.
                    s.self_time = s.self_time.max(1);
                    if FunctionId(id) != FunctionId(anchor) {
                        p.set(FunctionId(id), s);
                    }
                }
                p
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn phase_detection_invariants(intervals in arb_interval_profiles()) {
        let matrix = IntervalMatrix::from_interval_profiles(&intervals);
        let analysis = PhaseDetector::new().detect(&matrix).unwrap();

        // Assignments cover every interval; phases partition them.
        prop_assert_eq!(analysis.assignments.len(), intervals.len());
        let mut all: Vec<usize> =
            analysis.phases.iter().flat_map(|p| p.intervals.iter().copied()).collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..intervals.len()).collect::<Vec<_>>());

        for phase in &analysis.phases {
            // Coverage meets the 95% threshold (every interval here has
            // an active function, so full coverage is always reachable).
            prop_assert!(
                phase.coverage() >= 0.95 - 1e-9,
                "phase {} coverage {}",
                phase.id,
                phase.coverage()
            );
            // No duplicate ⟨function, type⟩ sites within a phase.
            let mut seen = std::collections::BTreeSet::new();
            for site in &phase.sites {
                prop_assert!(seen.insert((site.function, site.inst_type)));
                prop_assert!(site.phase_pct >= 0.0 && site.phase_pct <= 100.0 + 1e-9);
                prop_assert!(site.app_pct <= site.phase_pct + 1e-9);
                // Attributed intervals belong to the phase and are active
                // for the site's function.
                let col = matrix.col_of(site.function).unwrap();
                for &iv in &site.covered_intervals {
                    prop_assert!(phase.intervals.contains(&iv));
                    prop_assert!(matrix.active(iv, col));
                }
            }
            // Attribution is disjoint across sites.
            let total_attributed: usize =
                phase.sites.iter().map(|s| s.covered_intervals.len()).sum();
            prop_assert!(total_attributed <= phase.intervals.len());
        }

        // WCSS sweep is recorded for k-means and selection is in range.
        prop_assert!(!analysis.wcss_sweep.is_empty());
        prop_assert!(analysis.k >= 1 && analysis.k <= 8);
    }

    #[test]
    fn detection_is_deterministic(intervals in arb_interval_profiles()) {
        let matrix = IntervalMatrix::from_interval_profiles(&intervals);
        let a = PhaseDetector::new().detect(&matrix).unwrap();
        let b = PhaseDetector::new().detect(&matrix).unwrap();
        prop_assert_eq!(a.assignments, b.assignments);
        prop_assert_eq!(a.phases, b.phases);
    }
}

// ---------------------------------------------------------------------
// Heartbeat invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn heartbeat_counts_are_conserved(
        durations in proptest::collection::vec(1u64..5_000u64, 1..60),
        gaps in proptest::collection::vec(0u64..5_000u64, 1..60),
    ) {
        use incprof_suite::appekg::AppEkg;
        use incprof_suite::runtime::Clock;
        let clock = Clock::virtual_clock();
        let ekg = AppEkg::new(clock.clone(), 1_000);
        let hb = ekg.register_heartbeat("hb");
        let n = durations.len().min(gaps.len());
        let mut total_duration = 0u64;
        for i in 0..n {
            ekg.begin(hb);
            clock.advance(durations[i]);
            ekg.end(hb);
            total_duration += durations[i];
            clock.advance(gaps[i]);
        }
        let records = ekg.finish();
        let count: u64 = records.iter().map(|r| r.count(hb)).sum();
        let dur: u64 = records
            .iter()
            .filter_map(|r| r.stats(hb))
            .map(|s| s.total_duration_ns)
            .sum();
        prop_assert_eq!(count, n as u64);
        prop_assert_eq!(dur, total_duration);
        // Every record's interval index is consistent with its start.
        for r in &records {
            prop_assert_eq!(r.start_ns, r.interval * 1_000);
        }
        prop_assert_eq!(ekg.unmatched_ends(), 0);
    }
}

// ---------------------------------------------------------------------
// Online detector invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn online_detector_invariants(
        seq in proptest::collection::vec((0u32..4, 0.5f64..2.0), 1..60),
    ) {
        use incprof_suite::core::online::{OnlineConfig, OnlinePhaseDetector};
        let mut det = OnlinePhaseDetector::new(OnlineConfig::default());
        let mut prev_phase = None;
        for (i, &(f, secs)) in seq.iter().enumerate() {
            let mut p = FlatProfile::new();
            p.set(
                FunctionId(f),
                FunctionStats { self_time: (secs * 1e9) as u64, calls: 1, child_time: 0 },
            );
            let obs = det.observe(&p);
            prop_assert_eq!(obs.interval, i);
            prop_assert!(obs.phase < det.n_phases());
            // Transition flag is consistent with the assignment stream.
            prop_assert_eq!(obs.transition, prev_phase.is_some_and(|pp| pp != obs.phase));
            prev_phase = Some(obs.phase);
        }
        // Bounded by the cap and by the number of intervals.
        prop_assert!(det.n_phases() <= 8);
        prop_assert!(det.n_phases() <= seq.len());
        // Phase sizes partition the intervals.
        let total: usize = det.phase_sizes().iter().sum();
        prop_assert_eq!(total, seq.len());
        prop_assert_eq!(det.assignments().len(), seq.len());
    }
}

// ---------------------------------------------------------------------
// Cross-rank aggregate invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rank_aggregate_invariants(profiles in proptest::collection::vec(arb_flat(6), 1..8)) {
        use incprof_suite::collect::{representative_rank, RankAggregate};
        let agg = RankAggregate::from_profiles(&profiles);
        prop_assert_eq!(agg.n_ranks(), profiles.len());
        let score = agg.symmetry_score();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&score), "score {score}");
        for (_, fa) in agg.iter() {
            prop_assert!(fa.min_self_secs <= fa.mean_self_secs + 1e-12);
            prop_assert!(fa.mean_self_secs <= fa.max_self_secs + 1e-12);
            prop_assert!(fa.present_on <= profiles.len());
            prop_assert!(fa.cv() >= 0.0);
        }
        prop_assert!(representative_rank(&profiles) < profiles.len());
        // Identical profiles on every rank -> perfect symmetry.
        let clones = vec![profiles[0].clone(); 3];
        let sym = RankAggregate::from_profiles(&clones).symmetry_score();
        prop_assert!((sym - 1.0).abs() < 1e-12);
    }
}

// ---------------------------------------------------------------------
// Call-graph report & cycle invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn call_graph_report_roundtrips_arcs(
        arcs in proptest::collection::btree_map((0u32..6, 0u32..6), 1u64..1000, 1..12),
    ) {
        use incprof_suite::profile::cgparse::{callgraph_from_entries, parse_call_graph};
        use incprof_suite::profile::report::write_call_graph;
        use incprof_suite::profile::GmonData;

        let mut gmon = GmonData::default();
        for f in 0..6u32 {
            gmon.functions.register(format!("fn_{f}"));
        }
        for (&(from, to), &count) in &arcs {
            gmon.callgraph.record_arcs(FunctionId(from), FunctionId(to), count);
            // Ensure endpoints appear in the flat profile so the writer
            // emits their primary lines.
            gmon.flat.record_self_time(FunctionId(from), 1_000_000);
            gmon.flat.record_self_time(FunctionId(to), 1_000_000);
            gmon.flat.record_calls(FunctionId(to), count);
        }
        let text = write_call_graph(&gmon);
        let entries = parse_call_graph(&text).unwrap();
        let mut table = FunctionTable::new();
        let rebuilt = callgraph_from_entries(&entries, &mut table);
        for (&(from, to), &count) in &arcs {
            let f = table.id_of(&format!("fn_{from}")).unwrap();
            let t = table.id_of(&format!("fn_{to}")).unwrap();
            prop_assert_eq!(rebuilt.get(f, t).count, count);
        }
        prop_assert_eq!(rebuilt.len(), arcs.len());
    }

    #[test]
    fn cycles_partition_and_detect_self_loops(
        arcs in proptest::collection::btree_set((0u32..8, 0u32..8), 1..20),
    ) {
        use incprof_suite::profile::{cycle_membership, find_cycles, CallGraphProfile};
        let mut cg = CallGraphProfile::new();
        for &(from, to) in &arcs {
            cg.record_arc(FunctionId(from), FunctionId(to));
        }
        let cycles = find_cycles(&cg);
        // Membership is a partition: no function in two cycles.
        let membership = cycle_membership(&cycles);
        let total: usize = cycles.iter().map(|c| c.members.len()).sum();
        prop_assert_eq!(membership.len(), total);
        // Every self arc lands in some cycle.
        for &(from, to) in &arcs {
            if from == to {
                prop_assert!(membership.contains_key(&FunctionId(from)));
            }
        }
        // Every two-node cycle (a->b and b->a) groups a and b together.
        for &(a, b) in &arcs {
            if a != b && arcs.contains(&(b, a)) {
                prop_assert_eq!(
                    membership.get(&FunctionId(a)),
                    membership.get(&FunctionId(b))
                );
            }
        }
    }
}
