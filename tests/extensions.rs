//! Integration: the paper's future-work extensions applied to real app
//! runs — phase merging (§VI-A/§VI-D) and call-graph-aware site lifting
//! (§VI-B).

use incprof_suite::collect::IntervalMatrix;
use incprof_suite::core::callgraph_select::lift_sites_to_callers;
use incprof_suite::core::merge::merge_phases_with_same_sites;
use incprof_suite::core::PhaseDetector;
use incprof_suite::hpc_apps::{lammps, minife, HeartbeatPlan, RunMode};

#[test]
fn merging_never_increases_phase_count_and_preserves_partition() {
    let out = lammps::run(
        &lammps::LammpsConfig {
            atoms_per_side: 9,
            steps: 60,
            rebuild_every: 8,
            ..lammps::LammpsConfig::tiny()
        },
        RunMode::virtual_1s(),
        &HeartbeatPlan::none(),
    );
    let analysis = PhaseDetector::new()
        .detect_series(&out.rank0.series)
        .unwrap();
    let merged = merge_phases_with_same_sites(&analysis);
    assert!(merged.k <= analysis.k);
    assert_eq!(merged.assignments.len(), analysis.assignments.len());
    // Partition preserved: same intervals, just regrouped.
    let before: usize = analysis.phases.iter().map(|p| p.intervals.len()).sum();
    let after: usize = merged.phases.iter().map(|p| p.intervals.len()).sum();
    assert_eq!(before, after);
    // Co-membership can only grow (merging unions clusters).
    for i in 0..analysis.assignments.len() {
        for j in (i + 1)..analysis.assignments.len() {
            if analysis.assignments[i] == analysis.assignments[j] {
                assert_eq!(merged.assignments[i], merged.assignments[j]);
            }
        }
    }
}

#[test]
fn callgraph_lifting_respects_behavioral_equivalence_on_minife() {
    // MiniFE's assembly leaf is the paper's motivating case. Whatever the
    // lifting decides, the resulting sites must still be functions that
    // are active in their phases.
    let out = minife::run(
        &minife::MiniFeConfig {
            n: 12,
            cg_iters: 40,
            procs: 1,
        },
        RunMode::virtual_1s(),
        &HeartbeatPlan::none(),
    );
    let intervals = out.rank0.series.interval_profiles().unwrap();
    let matrix = IntervalMatrix::from_interval_profiles(&intervals);
    let mut analysis = PhaseDetector::new().detect(&matrix).unwrap();
    let callgraph = &out.rank0.series.last().unwrap().callgraph;

    let lifted = lift_sites_to_callers(&mut analysis, &matrix, callgraph);
    // Lifting is conservative; it may move zero or more sites, but every
    // post-lift site must be active in at least one interval of its
    // phase and must still cover its attributed intervals' phase.
    let _ = lifted;
    for phase in &analysis.phases {
        for site in &phase.sites {
            let col = matrix
                .col_of(site.function)
                .expect("lifted site must be an observed function");
            assert!(
                phase.intervals.iter().any(|&i| matrix.active(i, col)),
                "site {:?} inactive across its whole phase",
                site.function
            );
        }
    }
}

#[test]
fn lifting_is_idempotent() {
    let out = minife::run(
        &minife::MiniFeConfig {
            n: 10,
            cg_iters: 30,
            procs: 1,
        },
        RunMode::virtual_1s(),
        &HeartbeatPlan::none(),
    );
    let intervals = out.rank0.series.interval_profiles().unwrap();
    let matrix = IntervalMatrix::from_interval_profiles(&intervals);
    let mut analysis = PhaseDetector::new().detect(&matrix).unwrap();
    let callgraph = &out.rank0.series.last().unwrap().callgraph;

    let _first = lift_sites_to_callers(&mut analysis, &matrix, callgraph);
    let snapshot = analysis.phases.clone();
    let second = lift_sites_to_callers(&mut analysis, &matrix, callgraph);
    assert_eq!(second, 0, "second lifting pass must be a no-op");
    assert_eq!(analysis.phases, snapshot);
}
