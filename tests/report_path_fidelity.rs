//! Paper-fidelity check on a real application: the full
//! snapshot → gprof-text-report → parse → delta → detect path must reach
//! the same conclusions as the in-memory path, despite gprof's 10 ms
//! report rounding — because the paper's own pipeline only ever saw the
//! text reports.

use incprof_suite::core::PhaseDetector;
use incprof_suite::hpc_apps::{graph500, HeartbeatPlan, RunMode};

#[test]
fn graph500_report_path_matches_direct_path() {
    // A scale where BFS and validation are clearly separated phases
    // (sub-interval kernels at tiny scales sit within 10 ms of each
    // other, where gprof's report rounding can legitimately flip the
    // near-tied dominant site).
    let cfg = graph500::Graph500Config {
        scale: 12,
        edge_factor: 16,
        num_roots: 20,
        ..graph500::Graph500Config::tiny()
    };
    let out = graph500::run(&cfg, RunMode::virtual_1s(), &HeartbeatPlan::none());
    let detector = PhaseDetector::new();

    let direct = detector.detect_series(&out.rank0.series).unwrap();
    let (via_reports, _matrix, parsed_table) = detector
        .detect_series_via_reports(&out.rank0.series, &out.rank0.table)
        .unwrap();

    assert_eq!(
        direct.k, via_reports.k,
        "phase count must survive report rounding"
    );

    // The dominant discovered site (by app %) must be the same function.
    let dominant_name = |analysis: &incprof_suite::core::PhaseAnalysis,
                         name: &dyn Fn(incprof_suite::profile::FunctionId) -> String|
     -> String {
        let site = analysis
            .phases
            .iter()
            .flat_map(|p| p.sites.iter())
            .max_by(|a, b| a.app_pct.partial_cmp(&b.app_pct).unwrap())
            .expect("at least one site");
        name(site.function)
    };
    let direct_dom = dominant_name(&direct, &|id| out.rank0.table.name(id).to_string());
    let report_dom = dominant_name(&via_reports, &|id| parsed_table.name(id).to_string());
    assert_eq!(direct_dom, report_dom);
    assert_eq!(direct_dom, "validate_bfs_result");

    // Interval partitions agree (cluster labels may permute).
    let n = direct.assignments.len();
    assert_eq!(n, via_reports.assignments.len());
    let mut mismatches = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            total += 1;
            if (direct.assignments[i] == direct.assignments[j])
                != (via_reports.assignments[i] == via_reports.assignments[j])
            {
                mismatches += 1;
            }
        }
    }
    // Rounding can flip a couple of boundary intervals; the partitions
    // must still agree on the overwhelming majority of pairs.
    assert!(
        (mismatches as f64) < 0.02 * total as f64,
        "{mismatches}/{total} pair disagreements"
    );
}
