//! The serve determinism bridge: phase analysis obtained **over the
//! wire** must be byte-identical to the offline pipeline on the same
//! snapshot series.
//!
//! For each of the paper's five applications, the rank-0 cumulative
//! series is streamed frame-by-frame into a live daemon session (gmon
//! binary payloads over TCP) and the session's analysis-only report is
//! compared — as raw JSON bytes, no tolerance, no reparse — against
//! `serde_json::to_string` of the offline `PhaseDetector` run locally.
//! The exercise repeats at 1 and 4 server worker threads: worker count
//! is infrastructure, not semantics, so the bytes must not move.

use incprof_suite::collect::SampleSeries;
use incprof_suite::core::PhaseDetector;
use incprof_suite::hpc_apps::{gadget2, graph500, lammps, miniamr, minife, HeartbeatPlan, RunMode};
use incprof_suite::profile::FunctionTable;
use incprof_suite::serve::{Client, ServeConfig, Server};

/// Profile every app once; returns (name, rank-0 series, table).
fn profiled_runs() -> Vec<(&'static str, SampleSeries, FunctionTable)> {
    let plan = HeartbeatPlan::none();
    let mode = RunMode::virtual_1s();
    let mut runs = Vec::new();
    let g = graph500::run(&graph500::Graph500Config::tiny(), mode, &plan).rank0;
    runs.push(("Graph500", g.series, g.table));
    let m = minife::run(&minife::MiniFeConfig::tiny(), mode, &plan).rank0;
    runs.push(("MiniFE", m.series, m.table));
    let a = miniamr::run(&miniamr::MiniAmrConfig::tiny(), mode, &plan).rank0;
    runs.push(("MiniAMR", a.series, a.table));
    let l = lammps::run(&lammps::LammpsConfig::tiny(), mode, &plan).rank0;
    runs.push(("LAMMPS", l.series, l.table));
    let ga = gadget2::run(&gadget2::Gadget2Config::tiny(), mode, &plan).rank0;
    runs.push(("Gadget2", ga.series, ga.table));
    runs
}

#[test]
fn wire_analysis_is_byte_identical_to_offline_at_1_and_4_workers() {
    let runs = profiled_runs();
    let detector = PhaseDetector::default();

    for workers in [1usize, 4] {
        let server = Server::bind(ServeConfig {
            workers,
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = server.local_addr().to_string();
        let handle = server.start().expect("start");

        for (app, series, table) in &runs {
            let offline = serde_json::to_string(
                &detector
                    .detect_series(series)
                    .unwrap_or_else(|e| panic!("{app}: offline detect failed: {e}")),
            )
            .expect("serialize offline analysis");

            let mut client = Client::connect_tcp(&addr).expect("connect");
            let session = client.open().expect("open session");
            for snap in series.snapshots() {
                let gmon = snap.to_gmon(table);
                client
                    .push_retry(session, &gmon, 50)
                    .unwrap_or_else(|e| panic!("{app}: push failed: {e}"));
            }
            let wire = client.query_analysis(session).expect("query analysis");
            assert_eq!(
                wire, offline,
                "{app}: wire analysis differs from offline at {workers} workers"
            );
            client.close(session).expect("close");
        }

        assert_eq!(handle.active_sessions(), 0, "sessions must not leak");
        handle.shutdown();
    }
}
