//! Offline stand-in for `rand` 0.8. [`rngs::StdRng`] is a SplitMix64
//! generator — statistically adequate for synthetic workloads and k-means
//! seeding, deterministic per seed, but NOT the real crate's ChaCha-based
//! StdRng: streams differ from upstream for the same seed.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait StandardSample {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is ≤ width/2^64 — irrelevant for the small
                // widths this workspace draws.
                let off = (rng.next_u64() as u128) % width;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % width;
                (lo as i128 + off as i128) as $t
            }
        }
    )*}
}

uniform_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing random-value methods, blanket-implemented for any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution for `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (shim for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele et al., "Fast splittable pseudorandom
            // number generators").
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(1..50);
            assert!((1..50).contains(&v));
            let f = rng.gen_range(-0.8..0.8);
            assert!((-0.8..0.8).contains(&f));
            let u = rng.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
