//! Offline stand-in for `serde_derive`, written directly against
//! `proc_macro` (no `syn`/`quote` available offline). Supports exactly the
//! shapes this workspace derives:
//!
//! - named-field structs, honoring `#[serde(skip)]` and
//!   `#[serde(with = "module")]` field attributes,
//! - newtype tuple structs (serialized transparently),
//! - unit-variant enums (serialized as the variant name),
//!
//! all without generic parameters. Anything else produces a
//! `compile_error!` naming the unsupported construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    ty: String,
    skip: bool,
    with: Option<String>,
}

enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    NewtypeStruct { name: String },
    UnitEnum { name: String, variants: Vec<String> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("valid compile_error")
}

/// Skip one attribute (`#` + bracket group) if present at `i`, returning
/// the bracket group's tokens when it was a `#[serde(...)]` attribute.
fn take_attr(tokens: &[TokenTree], i: &mut usize) -> Option<Option<Vec<TokenTree>>> {
    match (tokens.get(*i), tokens.get(*i + 1)) {
        (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
            if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
        {
            *i += 2;
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            match inner.first() {
                Some(TokenTree::Ident(id)) if id.to_string() == "serde" => match inner.get(1) {
                    Some(TokenTree::Group(args)) if args.delimiter() == Delimiter::Parenthesis => {
                        Some(Some(args.stream().into_iter().collect()))
                    }
                    _ => Some(None),
                },
                _ => Some(None),
            }
        }
        _ => None,
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Parse a `#[serde(...)]` argument list into (skip, with).
fn parse_serde_args(
    args: &[TokenTree],
    skip: &mut bool,
    with: &mut Option<String>,
) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        match &args[i] {
            TokenTree::Ident(id) if id.to_string() == "skip" => {
                *skip = true;
                i += 1;
            }
            TokenTree::Ident(id) if id.to_string() == "with" => {
                match (args.get(i + 1), args.get(i + 2)) {
                    (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                        if eq.as_char() == '=' =>
                    {
                        let s = lit.to_string();
                        let path = s.trim_matches('"').to_string();
                        if path.is_empty() || path == s {
                            return Err(format!(
                                "serde(with = ...) expects a string literal, got {s}"
                            ));
                        }
                        *with = Some(path);
                        i += 3;
                    }
                    _ => return Err("malformed serde(with = \"...\") attribute".to_string()),
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            other => return Err(format!("unsupported serde attribute `{other}`")),
        }
    }
    Ok(())
}

/// Parse the fields of a named struct from the brace group's tokens.
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip = false;
        let mut with = None;
        while let Some(serde_args) = take_attr(tokens, &mut i) {
            if let Some(args) = serde_args {
                parse_serde_args(&args, &mut skip, &mut with)?;
            }
        }
        if i >= tokens.len() {
            break; // trailing attrs only (e.g. after a trailing comma)
        }
        skip_visibility(tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Collect type tokens until a comma at angle-bracket depth zero.
        let mut ty = String::new();
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            if !ty.is_empty() {
                ty.push(' ');
            }
            ty.push_str(&tok.to_string());
            i += 1;
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        fields.push(Field {
            name,
            ty,
            skip,
            with,
        });
    }
    Ok(fields)
}

fn parse_unit_variants(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while take_attr(tokens, &mut i).is_some() {}
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(other) => {
                return Err(format!(
                    "only unit enum variants are supported, found {other} after `{name}`"
                ))
            }
        }
        variants.push(name);
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    while take_attr(&tokens, &mut i).is_some() {}
    skip_visibility(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type `{name}` is not supported by the serde shim derive"
            ));
        }
    }
    match (keyword.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok(Item::NamedStruct {
                name,
                fields: parse_named_fields(&body)?,
            })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            // Count top-level comma-separated fields inside the parens.
            let mut depth = 0i32;
            let mut nfields = 1usize;
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if inner.is_empty() {
                return Err(format!("empty tuple struct `{name}` is not supported"));
            }
            for (idx, tok) in inner.iter().enumerate() {
                if let TokenTree::Punct(p) = tok {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        ',' if depth == 0 && idx + 1 < inner.len() => nfields += 1,
                        _ => {}
                    }
                }
            }
            if nfields != 1 {
                return Err(format!(
                    "tuple struct `{name}` has {nfields} fields; only newtype structs are supported"
                ));
            }
            Ok(Item::NewtypeStruct { name })
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok(Item::UnitEnum {
                name,
                variants: parse_unit_variants(&body)?,
            })
        }
        (kw, other) => Err(format!(
            "unsupported item shape: {kw} followed by {other:?}"
        )),
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut wrappers = String::new();
            let mut body = String::new();
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            for (w, f) in live.iter().enumerate() {
                let fname = &f.name;
                if let Some(with) = &f.with {
                    wrappers.push_str(&format!(
                        "struct __SerdeWith{w}<'__a>(&'__a {ty});\n\
                         impl<'__a> ::serde::Serialize for __SerdeWith{w}<'__a> {{\n\
                             fn serialize<__S2: ::serde::Serializer>(&self, __s: __S2)\n\
                                 -> ::core::result::Result<__S2::Ok, __S2::Error> {{\n\
                                 {with}::serialize(self.0, __s)\n\
                             }}\n\
                         }}\n",
                        ty = f.ty,
                    ));
                    body.push_str(&format!(
                        "::serde::ser::SerializeStruct::serialize_field(&mut __st, \"{fname}\", \
                         &__SerdeWith{w}(&self.{fname}))?;\n"
                    ));
                } else {
                    body.push_str(&format!(
                        "::serde::ser::SerializeStruct::serialize_field(&mut __st, \"{fname}\", \
                         &self.{fname})?;\n"
                    ));
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S)\n\
                         -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                         {wrappers}\
                         let mut __st = ::serde::Serializer::serialize_struct(\
                             __serializer, \"{name}\", {n})?;\n\
                         {body}\
                         ::serde::ser::SerializeStruct::end(__st)\n\
                     }}\n\
                 }}\n",
                n = live.len(),
            )
        }
        Item::NewtypeStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S)\n\
                     -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                     ::serde::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)\n\
                 }}\n\
             }}\n"
        ),
        Item::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    format!(
                        "{name}::{v} => ::serde::Serializer::serialize_unit_variant(\
                         __serializer, \"{name}\", {i}u32, \"{v}\"),\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S)\n\
                         -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let custom = "<__D::Error as ::serde::de::Error>::custom";
    match item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                let fname = &f.name;
                if f.skip {
                    inits.push_str(&format!("{fname}: ::core::default::Default::default(),\n"));
                    continue;
                }
                let convert = match &f.with {
                    Some(with) => format!("{with}::deserialize(__v)"),
                    None => "::serde::Deserialize::deserialize(__v)".to_string(),
                };
                inits.push_str(&format!(
                    "{fname}: match ::serde::de::take_field(&mut __fields, \"{fname}\") {{\n\
                         ::core::option::Option::Some(__v) => {convert}.map_err({custom})?,\n\
                         ::core::option::Option::None => return ::core::result::Result::Err(\
                             {custom}(\"missing field `{fname}` in {name}\")),\n\
                     }},\n"
                ));
            }
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D)\n\
                         -> ::core::result::Result<Self, __D::Error> {{\n\
                         let __content = ::serde::Deserializer::deserialize_content(__deserializer)?;\n\
                         let mut __fields = ::serde::de::fields_of(__content).map_err({custom})?;\n\
                         let _ = &mut __fields;\n\
                         ::core::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}\n"
            )
        }
        Item::NewtypeStruct { name } => format!(
            "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                 fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D)\n\
                     -> ::core::result::Result<Self, __D::Error> {{\n\
                     ::core::result::Result::Ok({name}(::serde::Deserialize::deserialize(__deserializer)?))\n\
                 }}\n\
             }}\n"
        ),
        Item::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::core::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D)\n\
                         -> ::core::result::Result<Self, __D::Error> {{\n\
                         let __content = ::serde::Deserializer::deserialize_content(__deserializer)?;\n\
                         let __name = ::serde::de::variant_of(__content).map_err({custom})?;\n\
                         match __name.as_str() {{\n\
                             {arms}\
                             __other => ::core::result::Result::Err({custom}(\
                                 ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}

/// Derive `serde::Serialize` (shim).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derive `serde::Deserialize` (shim).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}
