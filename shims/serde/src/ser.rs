//! Serialization half of the shim: the `Serializer` trait plus `Serialize`
//! impls for the std types this workspace serializes, and a
//! [`ContentSerializer`] that renders any serializable value into the
//! shared [`Content`] tree (which `serde_json` then prints).

use crate::de::{Content, ContentError};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Display;

/// Error constraint for serializer error types.
pub trait Error: Sized + std::fmt::Debug + Display {
    /// Build an error from any printable message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A value that can be serialized.
pub trait Serialize {
    /// Feed this value into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Sequence sub-serializer.
pub trait SerializeSeq {
    /// Final output type.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Append one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Map sub-serializer.
pub trait SerializeMap {
    /// Final output type.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Append one key/value entry.
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error>;
    /// Finish the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct sub-serializer.
pub trait SerializeStruct {
    /// Final output type.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Append one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finish the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// A format backend. Compared to real serde, narrow integers/floats are
/// widened to `i64`/`u64`/`f64` before reaching the serializer.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Sequence sub-serializer type.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Map sub-serializer type.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Struct sub-serializer type.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

    /// Serialize a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serialize a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serialize an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serialize `()` / null.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;

    /// Serialize a newtype struct (transparently, by default).
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error> {
        let _ = name;
        value.serialize(self)
    }

    /// Serialize a unit enum variant (as its name, by default).
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error> {
        let _ = (name, variant_index);
        self.serialize_str(variant)
    }

    /// Begin a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begin a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begin a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;

    /// Serialize every item of an iterator as a sequence.
    fn collect_seq<I>(self, iter: I) -> Result<Self::Ok, Self::Error>
    where
        I: IntoIterator,
        I::Item: Serialize,
    {
        let mut seq = self.serialize_seq(None)?;
        for item in iter {
            seq.serialize_element(&item)?;
        }
        seq.end()
    }
}

// --- Serialize impls for std types -----------------------------------

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*}
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*}
}

ser_unsigned!(u8, u16, u32, u64, usize);
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self as f64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_seq(None)?;
                $(SerializeSeq::serialize_element(&mut seq, &self.$n)?;)+
                seq.end()
            }
        }
    )*}
}

ser_tuple! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

// --- ContentSerializer ------------------------------------------------

/// Serializer whose output is the shim's [`Content`] tree.
pub struct ContentSerializer;

/// Render any serializable value into a [`Content`] tree.
pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Result<Content, ContentError> {
    value.serialize(ContentSerializer)
}

/// Sequence builder for [`ContentSerializer`].
pub struct ContentSeqSer(Vec<Content>);

/// Map builder for [`ContentSerializer`].
pub struct ContentMapSer(Vec<(Content, Content)>);

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = ContentError;
    type SerializeSeq = ContentSeqSer;
    type SerializeMap = ContentMapSer;
    type SerializeStruct = ContentMapSer;

    fn serialize_bool(self, v: bool) -> Result<Content, ContentError> {
        Ok(Content::Bool(v))
    }

    fn serialize_i64(self, v: i64) -> Result<Content, ContentError> {
        Ok(Content::I64(v))
    }

    fn serialize_u64(self, v: u64) -> Result<Content, ContentError> {
        Ok(Content::U64(v))
    }

    fn serialize_f64(self, v: f64) -> Result<Content, ContentError> {
        Ok(Content::F64(v))
    }

    fn serialize_str(self, v: &str) -> Result<Content, ContentError> {
        Ok(Content::Str(v.to_owned()))
    }

    fn serialize_unit(self) -> Result<Content, ContentError> {
        Ok(Content::Null)
    }

    fn serialize_none(self) -> Result<Content, ContentError> {
        Ok(Content::Null)
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Content, ContentError> {
        value.serialize(ContentSerializer)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<ContentSeqSer, ContentError> {
        Ok(ContentSeqSer(Vec::with_capacity(len.unwrap_or(0))))
    }

    fn serialize_map(self, len: Option<usize>) -> Result<ContentMapSer, ContentError> {
        Ok(ContentMapSer(Vec::with_capacity(len.unwrap_or(0))))
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<ContentMapSer, ContentError> {
        Ok(ContentMapSer(Vec::with_capacity(len)))
    }
}

impl SerializeSeq for ContentSeqSer {
    type Ok = Content;
    type Error = ContentError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), ContentError> {
        self.0.push(value.serialize(ContentSerializer)?);
        Ok(())
    }

    fn end(self) -> Result<Content, ContentError> {
        Ok(Content::Seq(self.0))
    }
}

impl SerializeMap for ContentMapSer {
    type Ok = Content;
    type Error = ContentError;

    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), ContentError> {
        self.0.push((
            key.serialize(ContentSerializer)?,
            value.serialize(ContentSerializer)?,
        ));
        Ok(())
    }

    fn end(self) -> Result<Content, ContentError> {
        Ok(Content::Map(self.0))
    }
}

impl SerializeStruct for ContentMapSer {
    type Ok = Content;
    type Error = ContentError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), ContentError> {
        self.0.push((
            Content::Str(name.to_owned()),
            value.serialize(ContentSerializer)?,
        ));
        Ok(())
    }

    fn end(self) -> Result<Content, ContentError> {
        Ok(Content::Map(self.0))
    }
}
