//! Offline stand-in for `serde` with a radically simplified data model.
//!
//! Instead of serde's 29-method visitor protocol, every value passes through
//! one intermediate representation: [`de::Content`], a small JSON-shaped
//! tree. Serializers consume the usual `serialize_*` calls; deserializers
//! expose exactly one method, [`Deserializer::deserialize_content`], and
//! each `Deserialize` impl interprets the returned tree itself. This is
//! enough for the derive surface this workspace uses (named structs with
//! `#[serde(skip)]`/`#[serde(with)]`, newtype structs, unit enums) while
//! staying a few hundred lines.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
