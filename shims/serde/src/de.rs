//! Deserialization half of the shim. Every deserializer produces a
//! [`Content`] tree; every `Deserialize` impl interprets one. Numeric
//! coercions are deliberately permissive (`U64`/`I64`/`F64`/stringified
//! numbers all interconvert when lossless) because JSON map keys arrive
//! as strings and floats that hold integers round-trip as integers.

use std::collections::BTreeMap;
use std::fmt::{self, Display};

/// Error constraint for deserializer error types.
pub trait Error: Sized + std::fmt::Debug + Display {
    /// Build an error from any printable message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// The shim's single intermediate representation: a JSON-shaped tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// null / `None` / `()`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Map / struct (insertion-ordered entries).
    Map(Vec<(Content, Content)>),
}

/// Error type used when interpreting a [`Content`] tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentError(pub String);

impl Display for ContentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ContentError {}

impl Error for ContentError {
    fn custom<T: Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}

impl crate::ser::Error for ContentError {
    fn custom<T: Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, ContentError> {
    Err(ContentError(msg.into()))
}

impl Content {
    /// Short description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) => "unsigned integer",
            Content::I64(_) => "signed integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }

    /// Interpret as `u64`, coercing lossless integers and numeric strings.
    pub fn into_u64(self) -> Result<u64, ContentError> {
        match self {
            Content::U64(v) => Ok(v),
            Content::I64(v) if v >= 0 => Ok(v as u64),
            Content::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Ok(v as u64),
            Content::Str(s) => match s.parse::<u64>() {
                Ok(v) => Ok(v),
                Err(_) => err(format!("invalid unsigned integer string {s:?}")),
            },
            other => err(format!("expected unsigned integer, found {}", other.kind())),
        }
    }

    /// Interpret as `i64`, coercing lossless integers and numeric strings.
    pub fn into_i64(self) -> Result<i64, ContentError> {
        match self {
            Content::I64(v) => Ok(v),
            Content::U64(v) if v <= i64::MAX as u64 => Ok(v as i64),
            Content::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Ok(v as i64),
            Content::Str(s) => match s.parse::<i64>() {
                Ok(v) => Ok(v),
                Err(_) => err(format!("invalid integer string {s:?}")),
            },
            other => err(format!("expected integer, found {}", other.kind())),
        }
    }

    /// Interpret as `f64`, coercing integers and numeric strings.
    pub fn into_f64(self) -> Result<f64, ContentError> {
        match self {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            Content::Str(s) => match s.parse::<f64>() {
                Ok(v) => Ok(v),
                Err(_) => err(format!("invalid float string {s:?}")),
            },
            other => err(format!("expected float, found {}", other.kind())),
        }
    }

    /// Interpret as `bool`.
    pub fn into_bool(self) -> Result<bool, ContentError> {
        match self {
            Content::Bool(v) => Ok(v),
            other => err(format!("expected bool, found {}", other.kind())),
        }
    }

    /// Interpret as a string.
    pub fn into_string(self) -> Result<String, ContentError> {
        match self {
            Content::Str(s) => Ok(s),
            other => err(format!("expected string, found {}", other.kind())),
        }
    }

    /// Interpret as a sequence.
    pub fn into_seq(self) -> Result<Vec<Content>, ContentError> {
        match self {
            Content::Seq(items) => Ok(items),
            other => err(format!("expected sequence, found {}", other.kind())),
        }
    }

    /// Interpret as a map with arbitrary keys.
    pub fn into_map(self) -> Result<Vec<(Content, Content)>, ContentError> {
        match self {
            Content::Map(entries) => Ok(entries),
            other => err(format!("expected map, found {}", other.kind())),
        }
    }
}

/// A format frontend: anything that can yield a [`Content`] tree.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// Produce the value as a [`Content`] tree.
    fn deserialize_content(self) -> Result<Content, Self::Error>;
}

/// A [`Content`] tree is itself a deserializer (used for nested values).
impl<'de> Deserializer<'de> for Content {
    type Error = ContentError;

    fn deserialize_content(self) -> Result<Content, ContentError> {
        Ok(self)
    }
}

/// A value that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Read this value out of `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

// --- Helpers used by derive-generated code ----------------------------

/// Split a struct's [`Content::Map`] into named fields.
pub fn fields_of(content: Content) -> Result<Vec<(String, Content)>, ContentError> {
    content
        .into_map()?
        .into_iter()
        .map(|(k, v)| Ok((k.into_string()?, v)))
        .collect()
}

/// Remove and return the field `name`, if present.
pub fn take_field(fields: &mut Vec<(String, Content)>, name: &str) -> Option<Content> {
    let idx = fields.iter().position(|(k, _)| k == name)?;
    Some(fields.swap_remove(idx).1)
}

/// Interpret a unit-enum payload as the variant name.
pub fn variant_of(content: Content) -> Result<String, ContentError> {
    content.into_string()
}

// --- Deserialize impls for std types ----------------------------------

macro_rules! de_unsigned {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let v = deserializer.deserialize_content()?.into_u64().map_err(D::Error::custom)?;
                <$t>::try_from(v)
                    .map_err(|_| D::Error::custom(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*}
}

macro_rules! de_signed {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let v = deserializer.deserialize_content()?.into_i64().map_err(D::Error::custom)?;
                <$t>::try_from(v)
                    .map_err(|_| D::Error::custom(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*}
}

de_unsigned!(u8, u16, u32, u64, usize);
de_signed!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer
            .deserialize_content()?
            .into_bool()
            .map_err(D::Error::custom)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer
            .deserialize_content()?
            .into_f64()
            .map_err(D::Error::custom)
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(f64::deserialize(deserializer)? as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer
            .deserialize_content()?
            .into_string()
            .map_err(D::Error::custom)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(None),
            other => Ok(Some(T::deserialize(other).map_err(D::Error::custom)?)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = deserializer
            .deserialize_content()?
            .into_seq()
            .map_err(D::Error::custom)?;
        items
            .into_iter()
            .map(|c| T::deserialize(c).map_err(D::Error::custom))
            .collect()
    }
}

macro_rules! de_tuple {
    ($(($len:literal $($n:tt $t:ident),+))*) => {$(
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let items =
                    deserializer.deserialize_content()?.into_seq().map_err(D::Error::custom)?;
                if items.len() != $len {
                    return Err(D::Error::custom(format!(
                        "expected tuple of length {}, found sequence of length {}",
                        $len,
                        items.len()
                    )));
                }
                let mut it = items.into_iter();
                Ok(($(
                    {
                        let _ = $n;
                        $t::deserialize(it.next().expect("length checked"))
                            .map_err(D::Error::custom)?
                    },
                )+))
            }
        }
    )*}
}

de_tuple! {
    (2 0 T0, 1 T1)
    (3 0 T0, 1 T1, 2 T2)
    (4 0 T0, 1 T1, 2 T2, 3 T3)
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let entries = deserializer
            .deserialize_content()?
            .into_map()
            .map_err(D::Error::custom)?;
        entries
            .into_iter()
            .map(|(k, v)| {
                Ok((
                    K::deserialize(k).map_err(D::Error::custom)?,
                    V::deserialize(v).map_err(D::Error::custom)?,
                ))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercions() {
        assert_eq!(Content::Str("42".into()).into_u64().unwrap(), 42);
        assert_eq!(Content::F64(3.0).into_u64().unwrap(), 3);
        assert!(Content::F64(3.5).into_u64().is_err());
        assert_eq!(Content::U64(7).into_f64().unwrap(), 7.0);
        assert!(Content::Seq(vec![]).into_u64().is_err());
    }

    #[test]
    fn take_field_removes() {
        let mut fields = vec![
            ("a".to_string(), Content::U64(1)),
            ("b".to_string(), Content::U64(2)),
        ];
        assert_eq!(take_field(&mut fields, "b"), Some(Content::U64(2)));
        assert_eq!(take_field(&mut fields, "b"), None);
        assert_eq!(fields.len(), 1);
    }
}
