//! Offline stand-in for `crossbeam`. Only `crossbeam::channel`'s unbounded
//! channel is provided: a `Mutex<VecDeque>` + `Condvar` queue whose
//! `Sender`/`Receiver` are both `Clone + Send + Sync`, which is the
//! property `mpi-sim` needs (std's mpsc `Receiver` is `!Sync`).

/// Unbounded MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Inner<T>>);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(Arc<Inner<T>>);

    /// Error returned by [`Sender::send`] (never produced here: the queue
    /// is kept alive by every handle, so sends cannot fail).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] (never produced here).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a value; never blocks, never fails.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue the next value, blocking until one is available.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                q = self.0.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Option<T> {
            self.0
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&inner)), Receiver(inner))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_one_sender() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
        }

        #[test]
        fn blocking_recv_wakes_on_send() {
            let (tx, rx) = unbounded::<u32>();
            let h = std::thread::spawn(move || rx.recv().unwrap());
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send(99).unwrap();
            assert_eq!(h.join().unwrap(), 99);
        }

        #[test]
        fn receiver_is_sync_and_shareable() {
            let (tx, rx) = unbounded::<usize>();
            let rx = std::sync::Arc::new(rx);
            for i in 0..8 {
                tx.send(i).unwrap();
            }
            let mut got: Vec<usize> = std::thread::scope(|s| {
                (0..4)
                    .map(|_| {
                        let rx = std::sync::Arc::clone(&rx);
                        s.spawn(move || (rx.recv().unwrap(), rx.recv().unwrap()))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .flat_map(|h| {
                        let (a, b) = h.join().unwrap();
                        [a, b]
                    })
                    .collect()
            });
            got.sort_unstable();
            assert_eq!(got, (0..8).collect::<Vec<_>>());
        }
    }
}
