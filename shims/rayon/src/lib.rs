//! Offline stand-in for `rayon`: `into_par_iter()` runs sequentially on the
//! current thread. Call sites keep rayon's API shape, so swapping the real
//! crate back in needs no source changes — only restored parallelism.

/// Import surface mirroring `rayon::prelude`.
pub mod prelude {
    /// Conversion into a (sequential) "parallel" iterator.
    pub trait IntoParallelIterator {
        /// The underlying iterator type.
        type Iter: Iterator;
        /// Convert into the iterator wrapper.
        fn into_par_iter(self) -> ParIter<Self::Iter>;
    }

    impl<T: IntoIterator> IntoParallelIterator for T {
        type Iter = T::IntoIter;
        fn into_par_iter(self) -> ParIter<T::IntoIter> {
            ParIter(self.into_iter())
        }
    }

    /// Sequential iterator with rayon's adapter names.
    pub struct ParIter<I>(I);

    impl<I: Iterator> ParIter<I> {
        /// Map each element.
        pub fn map<T, F: FnMut(I::Item) -> T>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
            ParIter(self.0.map(f))
        }

        /// Keep elements matching the predicate.
        pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
            ParIter(self.0.filter(f))
        }

        /// Collect into any `FromIterator` container.
        pub fn collect<C: FromIterator<I::Item>>(self) -> C {
            self.0.collect()
        }

        /// Sum the elements.
        pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
            self.0.sum()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect() {
        let v: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }
}
