//! Offline stand-in for `criterion`: runs each benchmark long enough to
//! estimate a stable mean (auto-scaling the iteration count to ~0.3 s per
//! benchmark) and prints `ns/iter` to stdout. No statistics, plots, or
//! baseline comparison — just enough to keep `cargo bench` working and
//! produce comparable numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall time per benchmark.
const TARGET: Duration = Duration::from_millis(300);

/// The benchmark context handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _c: self,
            group: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count (accepted and ignored by the shim).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&self.group, &id.into_benchmark_id());
    }

    /// Run one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&self.group, &id.into_benchmark_id());
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally parameterized.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Function name + parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }
}

/// Conversion into a printable benchmark id (names or [`BenchmarkId`]s).
pub trait IntoBenchmarkId {
    /// Render the id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Measures closures, auto-scaling iterations to the time budget.
#[derive(Default)]
pub struct Bencher {
    /// Mean ns/iter of the final measured batch.
    result_ns: f64,
}

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until it takes ≥ ~1/8 of the budget,
        // then run one final batch scaled to fill the budget.
        let mut batch: u64 = 1;
        let mut elapsed;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            elapsed = start.elapsed();
            if elapsed >= TARGET / 8 || batch >= 1 << 40 {
                break;
            }
            batch *= 8;
        }
        let scale = (TARGET.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).clamp(1.0, 1024.0);
        let final_batch = ((batch as f64) * scale) as u64;
        let start = Instant::now();
        for _ in 0..final_batch {
            std::hint::black_box(routine());
        }
        self.result_ns = start.elapsed().as_nanos() as f64 / final_batch as f64;
    }

    /// Measure `routine` with a fresh un-timed `setup` value per iteration.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        // Setup is excluded from timing, so iterations are timed one by one.
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let budget_start = Instant::now();
        while budget_start.elapsed() < TARGET || iters == 0 {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.result_ns = total.as_nanos() as f64 / iters as f64;
    }

    fn report(&self, group: &str, id: &str) {
        println!("bench {group}/{id}: {:.1} ns/iter", self.result_ns);
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching criterion's API (`criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.result_ns > 0.0);
    }
}
