//! Offline stand-in for `bytes`: `Vec<u8>`-backed buffers with the
//! little-endian get/put helpers the gmon codec uses. Reading via [`Buf`]
//! consumes from the front of a `&[u8]` by re-slicing, matching the real
//! crate's `impl Buf for &[u8]`.

use std::ops::Deref;

/// Immutable contiguous bytes (here: an owned `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copy into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(v)
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> BytesMut {
        BytesMut(Vec::new())
    }

    /// New empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Freeze into immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Read cursor over a byte source.
///
/// # Panics
/// The fixed-width getters panic when fewer bytes remain than requested,
/// like the real crate; callers check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copy `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    /// Advance the cursor by `n` bytes.
    fn advance(&mut self, n: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }

    fn advance(&mut self, n: usize) {
        assert!(self.len() >= n, "buffer underflow");
        *self = &self[n..];
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        let mut two = [0u8; 2];
        r.copy_to_slice(&mut two);
        assert_eq!(&two, b"xy");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
