//! Offline stand-in for `serde_json`, layered on the serde shim's
//! [`Content`] tree: serialization renders a value to `Content` and prints
//! it; deserialization parses JSON text to `Content` and hands it to the
//! type's `Deserialize` impl. Map keys must be scalars (strings or
//! integers); integers are stringified, matching serde_json's behavior for
//! integer-keyed maps.

use serde::de::{Content, ContentError};
use serde::ser::to_content;
use serde::{Deserialize, Serialize};
use std::fmt;

mod value;
pub use value::Value;

/// JSON error (parse, print, or data-shape mismatch).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<ContentError> for Error {
    fn from(e: ContentError) -> Error {
        Error(e.0)
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Error {
        Error(msg.to_string())
    }
}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Error {
        Error(msg.to_string())
    }
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content = to_content(value)?;
    let mut out = String::new();
    print_content(&content, None, 0, &mut out)?;
    Ok(out)
}

/// Serialize `value` as a pretty-printed (2-space-indented) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content = to_content(value)?;
    let mut out = String::new();
    print_content(&content, Some(2), 0, &mut out)?;
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<'de, T: Deserialize<'de>>(text: &str) -> Result<T, Error> {
    let content = parse(text)?;
    T::deserialize(content).map_err(Error::from)
}

// --- Printer ----------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn print_key(key: &Content, out: &mut String) -> Result<(), Error> {
    match key {
        Content::Str(s) => escape_into(s, out),
        Content::U64(n) => escape_into(&n.to_string(), out),
        Content::I64(n) => escape_into(&n.to_string(), out),
        other => {
            return Err(Error(format!(
                "JSON map keys must be scalar, found {}",
                other.kind()
            )))
        }
    }
    Ok(())
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn print_content(
    c: &Content,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::F64(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                // serde_json renders non-finite floats as null.
                out.push_str("null");
            }
        }
        Content::Str(s) => escape_into(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                print_content(item, indent, depth + 1, out)?;
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                print_key(k, out)?;
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                print_content(v, indent, depth + 1, out)?;
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
    Ok(())
}

// --- Parser -----------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Content, Error> {
        if depth > MAX_DEPTH {
            return Err(Error("JSON nesting too deep".to_string()));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `]` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    entries.push((Content::Str(key), val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("invalid \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".to_string()))?;
                            // Surrogate pairs are not supported by the shim;
                            // lone surrogates map to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!(
                                "invalid escape {:?}",
                                other.map(|c| c as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".to_string()))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn roundtrip_map_with_integer_keys() {
        let mut m: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        m.insert(3, vec![1, 2]);
        m.insert(7, vec![]);
        let json = to_string(&m).unwrap();
        assert_eq!(json, r#"{"3":[1,2],"7":[]}"#);
        let back: BTreeMap<u32, Vec<u64>> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn roundtrip_tuples_options_strings() {
        let v: Vec<(u32, Option<f64>, String)> = vec![
            (1, None, "a\"b\n".to_string()),
            (2, Some(0.5), "π".to_string()),
        ];
        let json = to_string(&v).unwrap();
        let back: Vec<(u32, Option<f64>, String)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_print_shape() {
        let mut m: BTreeMap<String, u64> = BTreeMap::new();
        m.insert("k".into(), 3);
        let pretty = to_string_pretty(&m).unwrap();
        assert_eq!(pretty, "{\n  \"k\": 3\n}");
    }

    #[test]
    fn parse_errors_do_not_panic() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\"}", "nul", "1e", "--3"] {
            assert!(from_str::<Value>(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn value_index_and_compare() {
        let v: Value = from_str(r#"{"k":3,"s":"hi","arr":[1,2]}"#).unwrap();
        assert_eq!(v["k"], 3);
        assert_eq!(v["s"], "hi");
        assert_eq!(v["arr"][1], 2);
        assert!(v["missing"].is_null());
    }
}
