//! Dynamically-typed JSON value, built from the serde shim's `Content`.

use serde::de::{Content, Deserialize, Deserializer};
use std::ops::Index;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// null.
    Null,
    /// true / false.
    Bool(bool),
    /// Any number (unsigned, signed, or float).
    Number(Number),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object (insertion-ordered).
    Object(Vec<(String, Value)>),
}

/// A JSON number, preserving the parsed representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Float.
    F64(f64),
}

impl Number {
    fn as_f64(self) -> f64 {
        match self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }
}

static NULL: Value = Value::Null;

impl Value {
    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Unsigned integer contents, if losslessly available.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v),
            Value::Number(Number::I64(v)) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Numeric contents as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Boolean contents.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array contents.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object entries.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    fn from_content(c: Content) -> Value {
        match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(b),
            Content::U64(v) => Value::Number(Number::U64(v)),
            Content::I64(v) => Value::Number(Number::I64(v)),
            Content::F64(v) => Value::Number(Number::F64(v)),
            Content::Str(s) => Value::String(s),
            Content::Seq(items) => {
                Value::Array(items.into_iter().map(Value::from_content).collect())
            }
            Content::Map(entries) => Value::Object(
                entries
                    .into_iter()
                    .map(|(k, v)| {
                        let key = match k {
                            Content::Str(s) => s,
                            Content::U64(n) => n.to_string(),
                            Content::I64(n) => n.to_string(),
                            other => format!("{other:?}"),
                        };
                        (key, Value::from_content(v))
                    })
                    .collect(),
            ),
        }
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(Value::from_content(deserializer.deserialize_content()?))
    }
}

/// Missing keys index to `Value::Null`, like serde_json.
impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        match self {
            Value::Number(Number::U64(v)) => i64::try_from(*v) == Ok(*other as i64),
            Value::Number(Number::I64(v)) => *v == *other as i64,
            Value::Number(Number::F64(v)) => *v == *other as f64,
            _ => false,
        }
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}
