//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the non-poisoning `lock()`/`read()`/`write()` API the real crate
//! provides. A poisoned std lock (a panic while held) is recovered by taking
//! the inner guard — the data may be mid-update, but that matches
//! `parking_lot` semantics, which has no poisoning at all.

use std::fmt;
use std::sync::{self, MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive (non-poisoning `lock()`).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock (non-poisoning `read()`/`write()`).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> ReadGuard<'_, T> {
        ReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> WriteGuard<'_, T> {
        WriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(sync::TryLockError::Poisoned(e)) => {
                f.debug_tuple("RwLock").field(&&*e.into_inner()).finish()
            }
            Err(sync::TryLockError::WouldBlock) => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// RAII shared guard for [`RwLock`].
pub struct ReadGuard<'a, T: ?Sized>(RwLockReadGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for ReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct WriteGuard<'a, T: ?Sized>(RwLockWriteGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for WriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for WriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
