//! Offline stand-in for `proptest`: deterministic random testing with no
//! shrinking. Each test derives its RNG seed from the test-function name,
//! so failures reproduce exactly across runs; a failing case reports its
//! index and the assertion message, but is not minimized.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Convenience imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

/// Per-block configuration (only `cases` is honored by the shim).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Real proptest defaults to 256; the shim halves twice to keep the
        // full suite fast in CI while still exercising each property.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strat: self, f }
    }

    /// Derive a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { strat: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    strat: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        (self.f)(self.strat.new_value(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    strat: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn new_value(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.strat.new_value(rng)).new_value(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*}
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.new_value(rng),)+)
            }
        }
    )*}
}

tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*}
}

arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut StdRng) -> i32 {
        rng.gen::<u32>() as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut StdRng) -> i64 {
        rng.gen::<u64>() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        rng.gen::<f64>() * 2e6 - 1e6
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;

    fn new_value(&self, rng: &mut StdRng) -> A {
        A::arbitrary(rng)
    }
}

/// Generate any value of `A`.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(PhantomData)
}

// --- Regex-lite string strategies -------------------------------------

/// A `&str` pattern is a strategy for matching strings. The shim supports
/// the two shapes this workspace uses: `[a-b...]{m,n}` character classes
/// and `\PC{m,n}` (any non-control character), and panics on anything else.
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut StdRng) -> String {
        sample_pattern(self, rng)
    }
}

enum CharClass {
    NonControl,
    Set(Vec<(char, char)>),
}

fn parse_pattern(pattern: &str) -> (CharClass, u32, u32) {
    let (class, rest) = if let Some(rest) = pattern.strip_prefix("\\PC") {
        (CharClass::NonControl, rest)
    } else if let Some(body_and_rest) = pattern.strip_prefix('[') {
        let close = body_and_rest.find(']').unwrap_or_else(|| {
            panic!("proptest shim: unterminated character class in {pattern:?}")
        });
        let body: Vec<char> = body_and_rest[..close].chars().collect();
        let mut ranges = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                ranges.push((body[i], body[i + 2]));
                i += 3;
            } else {
                ranges.push((body[i], body[i]));
                i += 1;
            }
        }
        (CharClass::Set(ranges), &body_and_rest[close + 1..])
    } else {
        panic!("proptest shim: unsupported regex pattern {pattern:?}");
    };
    let counts = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("proptest shim: expected {{m,n}} repetition in {pattern:?}"));
    let (lo, hi) = counts
        .split_once(',')
        .unwrap_or_else(|| panic!("proptest shim: expected {{m,n}} repetition in {pattern:?}"));
    let lo: u32 = lo.trim().parse().expect("repetition lower bound");
    let hi: u32 = hi.trim().parse().expect("repetition upper bound");
    (class, lo, hi)
}

fn sample_pattern(pattern: &str, rng: &mut StdRng) -> String {
    // A handful of non-ASCII, non-control characters so `\PC` exercises
    // multi-byte UTF-8 paths too.
    const WIDE: &[char] = &['é', 'π', '→', '漢', '𝄞', '\u{00a0}'];
    let (class, lo, hi) = parse_pattern(pattern);
    let n = rng.gen_range(lo..=hi);
    let mut out = String::new();
    for _ in 0..n {
        let c = match &class {
            CharClass::NonControl => {
                if rng.gen_bool(0.9) {
                    rng.gen_range(0x20u32..=0x7e)
                        .try_into()
                        .expect("printable ascii")
                } else {
                    WIDE[rng.gen_range(0..WIDE.len())]
                }
            }
            CharClass::Set(ranges) => {
                let (a, b) = ranges[rng.gen_range(0..ranges.len())];
                char::from_u32(rng.gen_range(a as u32..=b as u32))
                    .expect("character class range is valid")
            }
        };
        out.push(c);
    }
    out
}

// --- Collection strategies --------------------------------------------

/// Collection size specification.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// Strategies for standard collections, mirroring `proptest::collection`.
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generate vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.elem.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Generate maps with *up to* the requested number of entries
    /// (duplicate keys collapse, as in real proptest).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n)
                .map(|_| (self.key.new_value(rng), self.value.new_value(rng)))
                .collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generate sets with *up to* the requested number of elements
    /// (duplicates collapse, as in real proptest).
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

// --- Runner -----------------------------------------------------------

/// Drive one property: draw and check `config.cases` random cases.
///
/// # Panics
/// Panics (failing the surrounding `#[test]`) on the first case whose
/// closure returns `Err`, reporting the case index and message.
pub fn run_proptest<F>(name: &str, config: ProptestConfig, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), String>,
{
    let mut hasher = DefaultHasher::new();
    name.hash(&mut hasher);
    let mut rng = StdRng::seed_from_u64(hasher.finish());
    for i in 0..config.cases {
        if let Err(msg) = case(&mut rng) {
            panic!(
                "property `{name}` failed at case {i}/{}: {msg}",
                config.cases
            );
        }
    }
}

/// Define property tests. Mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_proptest(stringify!($name), $cfg, |__rng| {
                    $(let $arg = $crate::Strategy::new_value(&($strat), __rng);)*
                    let mut __case = || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fail the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &$left;
        let __right = &$right;
        if !(__left == __right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __left,
                __right,
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_name() {
        let mut a = rand::rngs::StdRng::seed_from_u64(9);
        let mut b = rand::rngs::StdRng::seed_from_u64(9);
        use rand::SeedableRng;
        let strat = crate::collection::vec(0u32..100, 1..8);
        assert_eq!(strat.new_value(&mut a), strat.new_value(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..10, f in -1.0f64..1.0, s in "[a-c]{2,4}") {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(s.len() >= 2 && s.len() <= 4, "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn maps_and_tuples_compose(
            (n, m) in (1usize..4, 2usize..5),
            map in crate::collection::btree_map(0u8..16, any::<u8>(), 0..6),
        ) {
            prop_assert!(n < 4 && m < 5);
            prop_assert!(map.len() <= 6);
        }
    }
}
