//! The full deployment story (paper §III): instrument phase sites with
//! AppEKG heartbeats, build a baseline from healthy production runs,
//! then flag a degraded run — "as a history of an application is built
//! up this data can be used to identify when the application is running
//! poorly and when it is running well."
//!
//! ```text
//! cargo run --example production_monitoring
//! ```

use incprof_suite::appekg::{
    compare, AppEkg, CompareConfig, DeviationKind, HeartbeatAnalysis, HeartbeatBaseline,
};
use incprof_suite::runtime::Clock;

/// One "production run" of a two-phase service: fast ingest batches and
/// slow solve steps. `solve_ns` models the per-step cost, which degrades
/// when the system underneath misbehaves.
fn production_run(solve_ns: u64, ingest_batches: u64) -> HeartbeatAnalysis {
    let clock = Clock::virtual_clock();
    let interval = 1_000_000_000;
    let ekg = AppEkg::new(clock.clone(), interval);
    let ingest = ekg.register_heartbeat("ingest_batch");
    let solve = ekg.register_heartbeat("solve_step");

    for _ in 0..20 {
        for _ in 0..ingest_batches {
            ekg.begin(ingest);
            clock.advance(8_000_000); // 8 ms per batch
            ekg.end(ingest);
        }
        ekg.begin(solve);
        clock.advance(solve_ns);
        ekg.end(solve);
    }
    let records = ekg.finish();
    let intervals = (clock.now_ns() / interval + 1) as usize;
    HeartbeatAnalysis::from_records(&records, intervals)
}

fn main() {
    // 1. Baseline from healthy history (normal jitter between runs).
    let history: Vec<HeartbeatAnalysis> = [300, 310, 295, 305, 300]
        .iter()
        .map(|&ms| production_run(ms * 1_000_000, 40))
        .collect();
    let baseline = HeartbeatBaseline::from_runs(&history);
    println!("baseline built from {} healthy runs", history.len());
    for hb in baseline.heartbeats() {
        let e = baseline.entry(hb).unwrap();
        println!(
            "  hb {}: rate {:.1}±{:.1} beats/interval, duration {:.0}±{:.0} ms",
            hb.0,
            e.rate_mean,
            e.rate_std,
            e.duration_mean_ns / 1e6,
            e.duration_std_ns / 1e6
        );
    }

    // 2. A healthy run stays quiet.
    let ok = production_run(305 * 1_000_000, 40);
    let quiet = compare(&baseline, &ok, CompareConfig::default());
    println!("\nhealthy run: {} deviations", quiet.len());
    assert!(quiet.is_empty());

    // 3. A degraded run — solve steps take 3x longer (say, a congested
    //    filesystem) — is flagged on both duration and rate.
    let bad = production_run(900 * 1_000_000, 40);
    let flags = compare(&baseline, &bad, CompareConfig::default());
    println!("degraded run: {} deviations", flags.len());
    for d in &flags {
        let kind = match d.kind {
            DeviationKind::Rate => "rate",
            DeviationKind::Duration => "duration",
            DeviationKind::Missing => "missing",
            DeviationKind::NoBaseline => "new site",
        };
        println!(
            "  hb {} {:>9}: expected {:.2}, observed {:.2} ({:.1}σ)",
            d.hb.0, kind, d.expected, d.observed, d.sigmas
        );
    }
    assert!(
        flags.iter().any(|d| d.kind == DeviationKind::Duration),
        "slowdown must surface as a duration deviation"
    );
}
