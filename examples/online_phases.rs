//! Online phase detection: watch phases appear *while the application
//! runs*, instead of clustering after the fact — the deployment-side
//! shape of IncProf (cf. the paper's §VII discussion of real-time
//! statistical clustering).
//!
//! ```text
//! cargo run --example online_phases
//! ```

use incprof_suite::collect::{CollectorConfig, IncProfCollector};
use incprof_suite::core::online::{OnlineConfig, OnlinePhaseDetector};
use incprof_suite::profile::FlatProfile;
use incprof_suite::runtime::{Clock, ProfilerRuntime};

fn main() {
    let clock = Clock::virtual_clock();
    let rt = ProfilerRuntime::with_clock(clock.clone());
    let stage_names = [
        "load_input",
        "equilibrate",
        "production_run",
        "write_results",
    ];
    let stages: Vec<_> = stage_names
        .iter()
        .map(|n| rt.register_function(*n))
        .collect();
    let collector = IncProfCollector::manual(rt.clone(), CollectorConfig::default());
    let mut online = OnlinePhaseDetector::new(OnlineConfig::default());

    let second = 1_000_000_000;
    let schedule = [(0usize, 5u64), (1, 8), (2, 20), (1, 4), (2, 10), (3, 3)];

    let mut prev = FlatProfile::new();
    for &(stage, secs) in &schedule {
        let _g = rt.enter(stages[stage]);
        for _ in 0..secs {
            clock.advance(second);
            collector.tick();
            // Feed the newest interval to the online detector, exactly
            // as a deployed collector would.
            let snap = rt.snapshot(0);
            let interval = snap.flat.delta(&prev).expect("monotone");
            prev = snap.flat;
            let obs = online.observe(&interval);
            if obs.new_phase {
                println!(
                    "interval {:>3}: NEW phase {} ({})",
                    obs.interval, obs.phase, stage_names[stage]
                );
            } else if obs.transition {
                println!(
                    "interval {:>3}: transition -> phase {} ({})",
                    obs.interval, obs.phase, stage_names[stage]
                );
            }
        }
    }

    println!("\n{} phases discovered online", online.n_phases());
    println!("phase sizes: {:?}", online.phase_sizes());
    println!("transitions at intervals {:?}", online.transitions());
}
