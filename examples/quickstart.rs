//! Quickstart: profile a synthetic two-phase workload with IncProf,
//! detect its phases, and print the discovered instrumentation sites.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use incprof_suite::collect::{CollectorConfig, IncProfCollector};
use incprof_suite::core::report::{render_k_sweep, render_sites_table};
use incprof_suite::core::PhaseDetector;
use incprof_suite::runtime::{Clock, ProfilerRuntime};

fn main() {
    // 1. A profiling runtime over a deterministic virtual clock (swap in
    //    Clock::wall() to profile real time).
    let clock = Clock::virtual_clock();
    let rt = ProfilerRuntime::with_clock(clock.clone());

    // 2. Register the functions the workload will exercise — the moral
    //    equivalent of compiling with -pg.
    let initialize = rt.register_function("initialize");
    let solve = rt.register_function("solve");
    let checkpoint = rt.register_function("checkpoint");

    // 3. The IncProf collector snapshots the cumulative profile once per
    //    interval (the paper samples once per second).
    let interval_ns = 1_000_000_000;
    let collector = IncProfCollector::manual(rt.clone(), CollectorConfig::default());

    // 4. A synthetic application: 10 intervals of initialization, then 30
    //    intervals of a long-running solver punctuated by checkpoints.
    for _ in 0..10 {
        let _g = rt.enter(initialize);
        clock.advance(interval_ns);
        collector.tick();
    }
    {
        let _g = rt.enter(solve);
        for i in 0..30 {
            if i % 10 == 9 {
                let _c = rt.enter(checkpoint);
                clock.advance(interval_ns);
            } else {
                clock.advance(interval_ns);
            }
            collector.tick();
        }
    }
    let series = collector.into_series();
    println!("collected {} cumulative profile samples\n", series.len());

    // 5. Detect phases: delta → interval matrix → k-means (k = 1..8) →
    //    elbow → Algorithm 1.
    let detector = PhaseDetector::new();
    let analysis = detector.detect_series(&series).expect("phase detection");
    let table = rt.function_table();

    println!("{}", render_k_sweep(&analysis));
    println!(
        "{}",
        render_sites_table(
            "Discovered instrumentation sites",
            &analysis,
            |id| table.name(id),
            &[]
        )
    );

    for phase in &analysis.phases {
        println!(
            "phase {}: {} intervals, coverage {:.0}%",
            phase.id,
            phase.intervals.len(),
            100.0 * phase.coverage()
        );
    }
}
