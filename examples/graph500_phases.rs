//! End-to-end Graph500 phase discovery: run the mini benchmark under
//! IncProf, detect phases, print the paper-style Table II, and re-run
//! with the discovered heartbeats to plot Fig. 2 as ASCII sparklines.
//!
//! ```text
//! cargo run --release --example graph500_phases
//! ```

use incprof_suite::appekg::HeartbeatSeries;
use incprof_suite::core::report::render_sites_table;
use incprof_suite::core::PhaseDetector;
use incprof_suite::hpc_apps::graph500::{self, Graph500Config};
use incprof_suite::hpc_apps::{HeartbeatPlan, RunMode};

fn main() {
    // A mid-size configuration: a few dozen 1-second intervals.
    let cfg = Graph500Config {
        scale: 12,
        edge_factor: 16,
        num_roots: 20,
        ..Default::default()
    };

    // Step 1: profile-collection run (no heartbeats).
    println!(
        "running Graph500 (scale {}, {} roots) under IncProf...",
        cfg.scale, cfg.num_roots
    );
    let profiled = graph500::run(&cfg, RunMode::virtual_1s(), &HeartbeatPlan::none());
    assert_eq!(profiled.result_check, 0.0, "BFS validation failed");
    println!(
        "collected {} samples over {:.0} virtual seconds\n",
        profiled.rank0.series.len(),
        profiled.rank0.elapsed_virtual_ns as f64 / 1e9
    );

    // Step 2: phase detection.
    let analysis = PhaseDetector::new()
        .detect_series(&profiled.rank0.series)
        .unwrap();
    let table = &profiled.rank0.table;
    println!(
        "{}",
        render_sites_table(
            "GRAPH500 INSTRUMENTED FUNCTIONS (cf. paper Table II)",
            &analysis,
            |id| table.name(id),
            &graph500::manual_sites(),
        )
    );

    // Step 3: heartbeat run with the discovered sites (paper Fig. 2).
    let plan = HeartbeatPlan::from_analysis(&analysis, table);
    let hb_run = graph500::run(&cfg, RunMode::virtual_1s(), &plan);
    let n_intervals = hb_run.rank0.series.len() as u64;
    let series = HeartbeatSeries::from_records(&hb_run.rank0.hb_records, Some(n_intervals));
    println!("Discovered-site heartbeats over time (count per interval):");
    for (hb, s) in &series {
        let name = &hb_run.rank0.hb_names[hb.0 as usize];
        println!("{name:>32} |{}|", s.sparkline());
    }
}
