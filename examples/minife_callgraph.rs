//! MiniFE phase discovery plus the paper's call-graph future-work
//! extension: the pipeline initially selects the assembly *leaf*
//! (`sum_in_symm_elem_matrix`); call-graph-aware lifting can move the
//! site up toward the human-chosen driver when the caller is
//! behaviorally equivalent (paper §VI-B).
//!
//! The source-context section at the end consumes the *static* call
//! graph produced by `incprof-lint`'s source analysis (the same JSON
//! `incprof callgraph` exports), joining each discovered site back to
//! its static callers, call-path depth, and cycle membership — the
//! source-oriented attribution the paper motivates.
//!
//! ```text
//! cargo run --release --example minife_callgraph
//! ```

use incprof_suite::collect::IntervalMatrix;
use incprof_suite::core::callgraph_select::lift_sites_to_callers;
use incprof_suite::core::merge::merge_phases_with_same_sites;
use incprof_suite::core::report::render_sites_table;
use incprof_suite::core::{source_context_json, PhaseDetector, SourceGraph};
use incprof_suite::hpc_apps::minife::{self, MiniFeConfig};
use incprof_suite::hpc_apps::{HeartbeatPlan, RunMode};

fn main() {
    let cfg = MiniFeConfig {
        n: 14,
        cg_iters: 60,
        procs: 1,
    };
    println!(
        "running MiniFE (n = {}, {} CG iterations) under IncProf...",
        cfg.n, cfg.cg_iters
    );
    let out = minife::run(&cfg, RunMode::virtual_1s(), &HeartbeatPlan::none());
    println!("final CG residual: {:.3e}\n", out.result_check);

    let intervals = out.rank0.series.interval_profiles().unwrap();
    let matrix = IntervalMatrix::from_interval_profiles(&intervals);
    let mut analysis = PhaseDetector::new().detect(&matrix).unwrap();
    let table = &out.rank0.table;

    println!(
        "{}",
        render_sites_table(
            "MINIFE INSTRUMENTED FUNCTIONS (cf. paper Table III)",
            &analysis,
            |id| table.name(id),
            &minife::manual_sites(),
        )
    );

    // Extension 1: call-graph-aware site lifting.
    let callgraph = &out.rank0.series.last().unwrap().callgraph;
    let lifted = lift_sites_to_callers(&mut analysis, &matrix, callgraph);
    println!("call-graph lifting moved {lifted} site(s)\n");
    if lifted > 0 {
        println!(
            "{}",
            render_sites_table(
                "After call-graph lifting",
                &analysis,
                |id| table.name(id),
                &[]
            )
        );
    }

    // Extension 2: merge phases that share instrumentation sites.
    let merged = merge_phases_with_same_sites(&analysis);
    println!(
        "phase merging: {} phases -> {} phases",
        analysis.phases.len(),
        merged.phases.len()
    );

    // Extension 3: source-oriented attribution. Build the apps' static
    // call graph from source (no run needed) and join it against the
    // detected phases: who statically calls each dominant function, how
    // deep it sits under the app driver, whether it is on a recursion
    // cycle.
    let root = incprof_lint::find_workspace_root(&std::env::current_dir().unwrap())
        .expect("run from inside the workspace");
    let sca = incprof_lint::analyze_subtree(&root, "crates/apps/src").unwrap();
    let graph = SourceGraph::new(sca.graph.named_edges(&sca.symbols));
    println!(
        "\nsource context (static callers / depth / cycle per site):\n{}",
        source_context_json(&analysis, |id| table.name(id), &graph)
    );
}
