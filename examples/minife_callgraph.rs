//! MiniFE phase discovery plus the paper's call-graph future-work
//! extension: the pipeline initially selects the assembly *leaf*
//! (`sum_in_symm_elem_matrix`); call-graph-aware lifting can move the
//! site up toward the human-chosen driver when the caller is
//! behaviorally equivalent (paper §VI-B).
//!
//! ```text
//! cargo run --release --example minife_callgraph
//! ```

use incprof_suite::collect::IntervalMatrix;
use incprof_suite::core::callgraph_select::lift_sites_to_callers;
use incprof_suite::core::merge::merge_phases_with_same_sites;
use incprof_suite::core::report::render_sites_table;
use incprof_suite::core::PhaseDetector;
use incprof_suite::hpc_apps::minife::{self, MiniFeConfig};
use incprof_suite::hpc_apps::{HeartbeatPlan, RunMode};

fn main() {
    let cfg = MiniFeConfig {
        n: 14,
        cg_iters: 60,
        procs: 1,
    };
    println!(
        "running MiniFE (n = {}, {} CG iterations) under IncProf...",
        cfg.n, cfg.cg_iters
    );
    let out = minife::run(&cfg, RunMode::virtual_1s(), &HeartbeatPlan::none());
    println!("final CG residual: {:.3e}\n", out.result_check);

    let intervals = out.rank0.series.interval_profiles().unwrap();
    let matrix = IntervalMatrix::from_interval_profiles(&intervals);
    let mut analysis = PhaseDetector::new().detect(&matrix).unwrap();
    let table = &out.rank0.table;

    println!(
        "{}",
        render_sites_table(
            "MINIFE INSTRUMENTED FUNCTIONS (cf. paper Table III)",
            &analysis,
            |id| table.name(id),
            &minife::manual_sites(),
        )
    );

    // Extension 1: call-graph-aware site lifting.
    let callgraph = &out.rank0.series.last().unwrap().callgraph;
    let lifted = lift_sites_to_callers(&mut analysis, &matrix, callgraph);
    println!("call-graph lifting moved {lifted} site(s)\n");
    if lifted > 0 {
        println!(
            "{}",
            render_sites_table(
                "After call-graph lifting",
                &analysis,
                |id| table.name(id),
                &[]
            )
        );
    }

    // Extension 2: merge phases that share instrumentation sites.
    let merged = merge_phases_with_same_sites(&analysis);
    println!(
        "phase merging: {} phases -> {} phases",
        analysis.phases.len(),
        merged.phases.len()
    );
}
