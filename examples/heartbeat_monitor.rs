//! Stand-alone AppEKG demo: instrument a workload with begin/end
//! heartbeats, aggregate per collection interval, and emit CSV — the
//! paper's lightweight production-monitoring story (§III).
//!
//! ```text
//! cargo run --example heartbeat_monitor
//! ```

use incprof_suite::appekg::{AggregateSink, AppEkg, CsvSink, HeartbeatSeries, Sink};
use incprof_suite::runtime::Clock;

fn main() {
    let clock = Clock::virtual_clock();
    // One-second collection intervals, as in the paper's deployments.
    let ekg = AppEkg::new(clock.clone(), 1_000_000_000);
    let ingest = ekg.register_heartbeat("ingest_batch");
    let train = ekg.register_heartbeat("train_epoch");

    // A workload with two alternating behaviors: fast ingest beats, then
    // slow training epochs.
    for epoch in 0..8 {
        for _ in 0..50 {
            ekg.begin(ingest);
            clock.advance(12_000_000); // 12 ms per batch
            ekg.end(ingest);
        }
        ekg.begin(train);
        clock.advance(1_700_000_000 + epoch * 50_000_000); // epochs slow down
        ekg.end(train);
    }

    let records = ekg.finish();

    // CSV output (what the LDMS-integrated deployment would ship).
    let mut csv = CsvSink::new(Vec::new());
    csv.emit_all(&records);
    let csv_text = String::from_utf8(csv.into_inner()).unwrap();
    println!("--- heartbeat CSV ---\n{csv_text}");

    // Aggregate statistics.
    let mut agg = AggregateSink::new();
    agg.emit_all(&records);
    for hb in agg.heartbeats() {
        let t = agg.totals(hb);
        println!(
            "{:>14}: {} beats, mean duration {:.1} ms, active in {} records",
            ekg.heartbeat_name(hb),
            t.count,
            t.mean_duration_ns() / 1e6,
            agg.active_intervals(hb),
        );
    }

    // Sparklines (count per interval).
    let series = HeartbeatSeries::from_records(&records, None);
    println!("\ncount per interval:");
    for (hb, s) in &series {
        println!("{:>14} |{}|", ekg.heartbeat_name(*hb), s.sparkline());
    }
}
