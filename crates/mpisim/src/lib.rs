//! # mpi-sim
//!
//! A lightweight MPI-like rank substrate over OS threads.
//!
//! The paper's evaluation runs every application with MPI across 16 ranks
//! on 2 nodes and analyzes the profile of *one representative rank*,
//! relying on the applications being "symmetrically parallel" so "all
//! processes behave similarly" (§VI). This crate reproduces that substrate
//! shape: ranks are threads, each holding a [`Comm`] handle that provides
//! the collective and point-to-point operations the mini-apps need —
//! barrier, broadcast, reduce/allreduce, gather/allgather, and typed
//! send/recv — so the apps in `hpc-apps` are genuinely parallel and
//! rank-symmetric rather than pretending to be.
//!
//! ```
//! use mpi_sim::World;
//!
//! let results = World::run(4, |comm| {
//!     let sum = comm.allreduce_sum(comm.rank() as f64);
//!     comm.barrier();
//!     sum
//! });
//! assert!(results.iter().all(|&s| s == 6.0)); // 0+1+2+3
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Numerical kernels index several parallel arrays in one loop; the
// iterator rewrite clippy suggests hurts readability there.
#![allow(clippy::needless_range_loop)]

pub mod comm;
pub mod world;

pub use comm::Comm;
pub use world::World;
