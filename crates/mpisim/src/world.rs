//! World construction: spawn ranks and collect their results.

use crate::comm::{Comm, Shared};
use std::sync::Arc;

/// Entry point for launching a rank-parallel region.
pub struct World;

impl World {
    /// Run `f` on `size` ranks (threads), returning each rank's result in
    /// rank order. Blocks until every rank finishes.
    ///
    /// # Panics
    /// Panics if `size == 0`, or re-raises a panic from any rank.
    pub fn run<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Sync,
    {
        assert!(size >= 1, "world must have at least one rank");
        let shared = Arc::new(Shared::new(size));
        // lint: allow(D03, mpi-sim models MPI ranks as OS threads by design; they are simulated processes rather than a compute pool)
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..size)
                .map(|rank| {
                    let comm = Comm::new(rank, Arc::clone(&shared));
                    let f = &f;
                    s.spawn(move || f(comm))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_rank_order() {
        let out = World::run(6, |c| c.rank() * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = World::run(0, |_| ());
    }

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn rank_panic_propagates() {
        let _ = World::run(2, |c| {
            if c.rank() == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn closures_can_capture_environment() {
        let base = 100usize;
        let out = World::run(3, |c| base + c.rank());
        assert_eq!(out, vec![100, 101, 102]);
    }
}
