//! The per-rank communicator handle.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::any::Any;
use std::sync::{Arc, Barrier};

type Packet = Box<dyn Any + Send>;

/// Shared state behind all ranks of one world.
pub(crate) struct Shared {
    pub(crate) size: usize,
    pub(crate) barrier: Barrier,
    /// `mailboxes[dst][src]` receives packets sent from `src` to `dst`.
    pub(crate) senders: Vec<Vec<Sender<Packet>>>,
    pub(crate) receivers: Vec<Vec<Receiver<Packet>>>,
}

impl Shared {
    pub(crate) fn new(size: usize) -> Shared {
        let mut senders: Vec<Vec<Sender<Packet>>> = (0..size).map(|_| Vec::new()).collect();
        let mut receivers: Vec<Vec<Receiver<Packet>>> = (0..size).map(|_| Vec::new()).collect();
        for dst in 0..size {
            for _src in 0..size {
                let (tx, rx) = unbounded();
                senders[dst].push(tx);
                receivers[dst].push(rx);
            }
        }
        Shared {
            size,
            barrier: Barrier::new(size),
            senders,
            receivers,
        }
    }
}

/// A rank's communicator: the MPI-ish API surface used by the mini-apps.
///
/// All collectives must be called by **every** rank of the world in the
/// same order, as in MPI; deviating deadlocks (also as in MPI).
#[derive(Clone)]
pub struct Comm {
    rank: usize,
    shared: Arc<Shared>,
}

impl Comm {
    pub(crate) fn new(rank: usize, shared: Arc<Shared>) -> Comm {
        Comm { rank, shared }
    }

    /// This rank's index in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// Block until every rank reaches the barrier.
    pub fn barrier(&self) {
        self.shared.barrier.wait();
    }

    /// Send a typed message to rank `to` (asynchronous, unbounded buffer).
    ///
    /// # Panics
    /// Panics if `to` is out of range.
    pub fn send<T: Any + Send>(&self, to: usize, value: T) {
        assert!(to < self.size(), "send to rank {to} out of range");
        self.shared.senders[to][self.rank]
            .send(Box::new(value))
            .expect("receiver alive for the lifetime of the world");
    }

    /// Receive the next message sent by rank `from`, blocking.
    ///
    /// # Panics
    /// Panics if `from` is out of range or the received message has a
    /// different type than requested (a protocol error in the app).
    pub fn recv<T: Any + Send>(&self, from: usize) -> T {
        assert!(from < self.size(), "recv from rank {from} out of range");
        let pkt = self.shared.receivers[self.rank][from]
            .recv()
            .expect("sender alive for the lifetime of the world");
        *pkt.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "type mismatch receiving from rank {from} on rank {}",
                self.rank
            )
        })
    }

    /// Combined send-then-receive with a partner rank (deadlock-free for
    /// the pairwise exchanges the apps' halo swaps use).
    pub fn sendrecv<T: Any + Send>(&self, partner: usize, value: T) -> T {
        self.send(partner, value);
        self.recv(partner)
    }

    /// Broadcast `value` from `root` to every rank; every rank returns the
    /// broadcast value. Ranks other than root pass their own (ignored)
    /// `value`... no — ranks other than root pass `None`.
    pub fn broadcast<T: Any + Send + Clone>(&self, root: usize, value: Option<T>) -> T {
        if self.rank == root {
            let v = value.expect("root must supply the broadcast value");
            for r in 0..self.size() {
                if r != root {
                    self.send(r, v.clone());
                }
            }
            v
        } else {
            self.recv(root)
        }
    }

    /// Gather every rank's `value` on `root`; returns `Some(values)` (in
    /// rank order) on root and `None` elsewhere.
    pub fn gather<T: Any + Send>(&self, root: usize, value: T) -> Option<Vec<T>> {
        if self.rank == root {
            let mut out: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            out[root] = Some(value);
            for r in 0..self.size() {
                if r != root {
                    out[r] = Some(self.recv(r));
                }
            }
            Some(out.into_iter().map(Option::unwrap).collect())
        } else {
            self.send(root, value);
            None
        }
    }

    /// Gather every rank's `value` on every rank (in rank order).
    pub fn allgather<T: Any + Send + Clone>(&self, value: T) -> Vec<T> {
        let gathered = self.gather(0, value);
        self.broadcast(0, gathered)
    }

    /// Reduce with a binary operation onto `root`; `Some(result)` on root.
    pub fn reduce<T: Any + Send, F: Fn(T, T) -> T>(
        &self,
        root: usize,
        value: T,
        op: F,
    ) -> Option<T> {
        self.gather(root, value)
            .map(|vals| vals.into_iter().reduce(op).expect("size >= 1"))
    }

    /// Allreduce with a binary operation; every rank returns the result.
    pub fn allreduce<T: Any + Send + Clone, F: Fn(T, T) -> T>(&self, value: T, op: F) -> T {
        let reduced = self.reduce(0, value, op);
        self.broadcast(0, reduced)
    }

    /// Allreduce summing `f64`s (the most common collective in the apps).
    pub fn allreduce_sum(&self, value: f64) -> f64 {
        self.allreduce(value, |a, b| a + b)
    }

    /// Allreduce taking the maximum of `f64`s.
    pub fn allreduce_max(&self, value: f64) -> f64 {
        self.allreduce(value, f64::max)
    }

    /// Allreduce summing `u64`s.
    pub fn allreduce_sum_u64(&self, value: u64) -> u64 {
        self.allreduce(value, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use crate::world::World;

    #[test]
    fn rank_and_size() {
        let out = World::run(3, |c| (c.rank(), c.size()));
        assert_eq!(out, vec![(0, 3), (1, 3), (2, 3)]);
    }

    #[test]
    fn send_recv_ring() {
        let out = World::run(4, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, c.rank() as u64);
            c.recv::<u64>(prev)
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn sendrecv_pairwise_exchange() {
        let out = World::run(2, |c| {
            let partner = 1 - c.rank();
            c.sendrecv(partner, c.rank() * 100)
        });
        assert_eq!(out, vec![100, 0]);
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let out = World::run(4, |c| {
            let v = if c.rank() == 2 {
                Some("hello".to_string())
            } else {
                None
            };
            c.broadcast(2, v)
        });
        assert!(out.iter().all(|s| s == "hello"));
    }

    #[test]
    fn gather_in_rank_order() {
        let out = World::run(4, |c| c.gather(1, c.rank() as u32));
        assert_eq!(out[0], None);
        assert_eq!(out[1], Some(vec![0, 1, 2, 3]));
        assert_eq!(out[2], None);
    }

    #[test]
    fn allgather_everywhere() {
        let out = World::run(3, |c| c.allgather(c.rank() as u8));
        assert!(out.iter().all(|v| v == &vec![0, 1, 2]));
    }

    #[test]
    fn allreduce_sum_and_max() {
        let out = World::run(5, |c| {
            (
                c.allreduce_sum(c.rank() as f64),
                c.allreduce_max(c.rank() as f64),
            )
        });
        assert!(out.iter().all(|&(s, m)| s == 10.0 && m == 4.0));
    }

    #[test]
    fn allreduce_sum_u64() {
        let out = World::run(4, |c| c.allreduce_sum_u64(1 << c.rank()));
        assert!(out.iter().all(|&v| v == 0b1111));
    }

    #[test]
    fn reduce_with_custom_op() {
        let out = World::run(3, |c| c.reduce(0, c.rank() as i64 + 1, |a, b| a * b));
        assert_eq!(out[0], Some(6));
        assert_eq!(out[1], None);
    }

    #[test]
    fn barriers_allow_repeated_phases() {
        let out = World::run(4, |c| {
            let mut acc = 0.0;
            for step in 0..10 {
                c.barrier();
                acc += c.allreduce_sum((c.rank() + step) as f64);
            }
            acc
        });
        let expected: f64 = (0..10).map(|s| (s + 1 + s + 2 + s + 3 + s) as f64).sum();
        assert!(out.iter().all(|&v| v == expected));
    }

    #[test]
    fn consecutive_typed_messages_keep_order() {
        let out = World::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1u32);
                c.send(1, 2u32);
                c.send(1, "three".to_string());
                0
            } else {
                let a = c.recv::<u32>(0);
                let b = c.recv::<u32>(0);
                let s = c.recv::<String>(0);
                assert_eq!((a, b, s.as_str()), (1, 2, "three"));
                1
            }
        });
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn single_rank_world_works() {
        let out = World::run(1, |c| {
            c.barrier();
            c.allreduce_sum(7.0)
        });
        assert_eq!(out, vec![7.0]);
    }
}
