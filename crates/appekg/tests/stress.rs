//! Concurrency stress tests for AppEKG: many threads beating many
//! heartbeats must conserve every count and duration, with the flusher
//! racing against producers.

use appekg::{AppEkg, MemorySink, PeriodicFlusher, Sink};
use incprof_runtime::Clock;
use std::time::Duration;

#[test]
fn many_threads_many_heartbeats_conserve_counts() {
    let clock = Clock::virtual_clock();
    let ekg = AppEkg::new(clock.clone(), 10_000);
    let hbs: Vec<_> = (0..8)
        .map(|i| ekg.register_heartbeat(format!("hb_{i}")))
        .collect();
    let per_thread = 2_000u64;

    std::thread::scope(|s| {
        for t in 0..6 {
            let ekg = ekg.clone();
            let clock = clock.clone();
            let hbs = hbs.clone();
            s.spawn(move || {
                for i in 0..per_thread {
                    let hb = hbs[((t + i) % hbs.len() as u64) as usize];
                    ekg.begin(hb);
                    clock.advance(3);
                    ekg.end(hb);
                }
            });
        }
    });

    let records = ekg.finish();
    let total: u64 = records.iter().map(|r| r.total_count()).sum();
    assert_eq!(total, 6 * per_thread);
    assert_eq!(ekg.unmatched_ends(), 0);
    // Every heartbeat id received a share.
    for hb in &hbs {
        let count: u64 = records.iter().map(|r| r.count(*hb)).sum();
        assert!(count > 0, "{hb} never beat");
    }
}

#[test]
fn flusher_races_producers_without_loss() {
    let clock = Clock::wall();
    let ekg = AppEkg::new(clock, 2_000_000); // 2 ms intervals
    let hb = ekg.register_heartbeat("raced");
    let flusher =
        PeriodicFlusher::start(ekg.clone(), MemorySink::default(), Duration::from_millis(2));

    let beats_per_thread = 500u64;
    std::thread::scope(|s| {
        for _ in 0..4 {
            let ekg = ekg.clone();
            s.spawn(move || {
                for _ in 0..beats_per_thread {
                    ekg.begin(hb);
                    ekg.end(hb);
                }
            });
        }
    });

    std::thread::sleep(Duration::from_millis(10));
    let sink = flusher.stop();
    let leftover = ekg.finish();
    let streamed: u64 = sink.records.iter().map(|r| r.count(hb)).sum();
    let rest: u64 = leftover.iter().map(|r| r.count(hb)).sum();
    assert_eq!(streamed + rest, 4 * beats_per_thread);
    assert_eq!(ekg.unmatched_ends(), 0);
}

#[test]
fn interleaved_sinks_receive_identical_totals() {
    // Emitting the same records into different sinks must agree.
    let clock = Clock::virtual_clock();
    let ekg = AppEkg::new(clock.clone(), 1_000);
    let hb = ekg.register_heartbeat("hb");
    for _ in 0..50 {
        ekg.begin(hb);
        clock.advance(40);
        ekg.end(hb);
        clock.advance(500);
    }
    let records = ekg.finish();

    let mut memory = MemorySink::default();
    memory.emit_all(&records);
    let mut agg = appekg::AggregateSink::new();
    agg.emit_all(&records);
    let mut csv = appekg::CsvSink::new(Vec::new());
    csv.emit_all(&records);

    let mem_total: u64 = memory.records.iter().map(|r| r.count(hb)).sum();
    assert_eq!(mem_total, 50);
    assert_eq!(agg.totals(hb).count, 50);
    let csv_text = String::from_utf8(csv.into_inner()).unwrap();
    assert_eq!(csv_text.lines().count() - 1, memory.records.len());
}
