//! Periodic background flushing of heartbeat records.
//!
//! The paper's AppEKG "is integrated into the LDMS data collection
//! framework … and can be used in a stand-alone fashion as well": at the
//! end of each collection interval the aggregated data "is then written
//! out" (§III-A). [`PeriodicFlusher`] is that write-out loop for wall-
//! clock deployments — a thread that wakes once per interval, drains the
//! completed records, and feeds them to any [`Sink`] (CSV file, in-memory
//! buffer, or an LDMS-like aggregator).

use crate::ekg::AppEkg;
use crate::sink::Sink;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Handle to a running flusher thread.
pub struct PeriodicFlusher<S: Sink + Send + 'static> {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<S>>,
    ekg: AppEkg,
}

impl<S: Sink + Send + 'static> PeriodicFlusher<S> {
    /// Start flushing `ekg`'s completed intervals into `sink` every
    /// `period` of real time (use the collection interval).
    pub fn start(ekg: AppEkg, sink: S, period: Duration) -> PeriodicFlusher<S> {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread_ekg = ekg.clone();
        // lint: allow(D03, the flusher IS appekg's background drain thread; it predates incprof-par and does no analysis work)
        let thread = std::thread::spawn(move || {
            let mut sink = sink;
            while !thread_stop.load(Ordering::Acquire) {
                // Sleep in slices for prompt shutdown.
                let mut remaining = period;
                let slice = Duration::from_millis(5);
                while remaining > Duration::ZERO && !thread_stop.load(Ordering::Acquire) {
                    let d = remaining.min(slice);
                    std::thread::sleep(d);
                    remaining = remaining.saturating_sub(d);
                }
                for record in thread_ekg.drain_completed() {
                    sink.emit(&record);
                }
            }
            // Final drain of completed intervals on shutdown.
            for record in thread_ekg.drain_completed() {
                sink.emit(&record);
            }
            sink
        });
        PeriodicFlusher {
            stop,
            thread: Some(thread),
            ekg,
        }
    }

    /// Stop the flusher, returning the sink. The current (incomplete)
    /// interval stays in the [`AppEkg`]; call [`AppEkg::finish`] to get
    /// it.
    pub fn stop(mut self) -> S {
        self.stop.store(true, Ordering::Release);
        self.thread
            .take()
            .expect("thread present until stop")
            .join()
            .expect("flusher panicked")
    }

    /// The AppEKG instance this flusher drains.
    pub fn ekg(&self) -> &AppEkg {
        &self.ekg
    }
}

impl<S: Sink + Send + 'static> Drop for PeriodicFlusher<S> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;
    use incprof_runtime::Clock;

    #[test]
    fn flusher_streams_completed_intervals() {
        let clock = Clock::wall();
        let interval = Duration::from_millis(20);
        let ekg = AppEkg::new(clock, interval.as_nanos() as u64);
        let hb = ekg.register_heartbeat("hb");
        let flusher = PeriodicFlusher::start(ekg.clone(), MemorySink::default(), interval);

        let deadline = std::time::Instant::now() + Duration::from_millis(120);
        let mut beats = 0u64;
        while std::time::Instant::now() < deadline {
            ekg.begin(hb);
            std::thread::sleep(Duration::from_millis(1));
            ekg.end(hb);
            beats += 1;
        }
        // Give the flusher one more period, then stop.
        std::thread::sleep(interval * 2);
        let sink = flusher.stop();
        let leftover = ekg.finish();

        let streamed: u64 = sink.records.iter().map(|r| r.count(hb)).sum();
        let remaining: u64 = leftover.iter().map(|r| r.count(hb)).sum();
        assert_eq!(
            streamed + remaining,
            beats,
            "no heartbeat lost or duplicated"
        );
        assert!(!sink.records.is_empty(), "flusher streamed nothing");
        // Streamed records arrive in interval order.
        for pair in sink.records.windows(2) {
            assert!(pair[0].interval < pair[1].interval);
        }
    }

    #[test]
    fn stop_is_prompt_and_drains() {
        let clock = Clock::wall();
        let ekg = AppEkg::new(clock, 1_000_000); // 1 ms intervals
        let hb = ekg.register_heartbeat("hb");
        let flusher =
            PeriodicFlusher::start(ekg.clone(), MemorySink::default(), Duration::from_millis(1));
        ekg.begin(hb);
        ekg.end(hb);
        std::thread::sleep(Duration::from_millis(10));
        let started = std::time::Instant::now();
        let sink = flusher.stop();
        assert!(
            started.elapsed() < Duration::from_millis(500),
            "stop too slow"
        );
        let total: u64 = sink.records.iter().map(|r| r.count(hb)).sum();
        let leftover: u64 = ekg.finish().iter().map(|r| r.count(hb)).sum();
        assert_eq!(total + leftover, 1);
    }

    #[test]
    fn drop_terminates_thread() {
        let ekg = AppEkg::new(Clock::wall(), 1_000_000);
        let flusher =
            PeriodicFlusher::start(ekg.clone(), MemorySink::default(), Duration::from_millis(1));
        assert!(flusher.ekg().is_enabled());
        drop(flusher); // must not hang
    }
}
