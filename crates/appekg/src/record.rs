//! Per-interval heartbeat records: the rows AppEKG writes out.

use crate::ekg::HeartbeatId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregated statistics for one heartbeat id within one interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HbStats {
    /// Heartbeats that *completed* in the interval.
    pub count: u64,
    /// Sum of their durations (ns); `mean_duration_ns` = total / count.
    pub total_duration_ns: u64,
}

impl HbStats {
    /// Mean duration in nanoseconds (0 when no heartbeat completed).
    pub fn mean_duration_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_duration_ns as f64 / self.count as f64
        }
    }
}

/// One collection interval's worth of heartbeat data, as written out by
/// the framework at the end of the interval.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IntervalRecord {
    /// Zero-based interval index (interval `i` covers
    /// `[i * interval_ns, (i+1) * interval_ns)`).
    pub interval: u64,
    /// Interval start time in nanoseconds.
    pub start_ns: u64,
    /// Stats per heartbeat id that completed at least once this interval.
    pub heartbeats: BTreeMap<HeartbeatId, HbStats>,
}

impl IntervalRecord {
    /// Stats for `hb`, if it beat in this interval.
    pub fn stats(&self, hb: HeartbeatId) -> Option<&HbStats> {
        self.heartbeats.get(&hb)
    }

    /// Count for `hb`, zero when absent.
    pub fn count(&self, hb: HeartbeatId) -> u64 {
        self.heartbeats.get(&hb).map_or(0, |s| s.count)
    }

    /// Total completed heartbeats across all ids in this interval.
    pub fn total_count(&self) -> u64 {
        self.heartbeats.values().map(|s| s.count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_duration_handles_zero_count() {
        let s = HbStats::default();
        assert_eq!(s.mean_duration_ns(), 0.0);
        let s = HbStats {
            count: 4,
            total_duration_ns: 100,
        };
        assert_eq!(s.mean_duration_ns(), 25.0);
    }

    #[test]
    fn record_accessors() {
        let mut r = IntervalRecord {
            interval: 2,
            start_ns: 2000,
            ..Default::default()
        };
        r.heartbeats.insert(
            HeartbeatId(1),
            HbStats {
                count: 3,
                total_duration_ns: 30,
            },
        );
        r.heartbeats.insert(
            HeartbeatId(2),
            HbStats {
                count: 5,
                total_duration_ns: 10,
            },
        );
        assert_eq!(r.count(HeartbeatId(1)), 3);
        assert_eq!(r.count(HeartbeatId(9)), 0);
        assert_eq!(r.total_count(), 8);
        assert!(r.stats(HeartbeatId(2)).is_some());
    }

    #[test]
    fn record_roundtrips_through_json() {
        let mut r = IntervalRecord {
            interval: 1,
            start_ns: 1000,
            ..Default::default()
        };
        r.heartbeats.insert(
            HeartbeatId(0),
            HbStats {
                count: 1,
                total_duration_ns: 7,
            },
        );
        let json = serde_json::to_string(&r).unwrap();
        let back: IntervalRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
