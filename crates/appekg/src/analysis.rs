//! Heartbeat data analysis.
//!
//! The paper stops at raw heartbeat plots ("we do not present any
//! heartbeat performance analysis, which is outside the scope of this
//! paper") but names the goal: "future analyses developed for heartbeat
//! data can provide portable, consistent, and quantitative evaluation of
//! scientific application performance" (§VIII). This module provides the
//! first layer of such analyses:
//!
//! * [`HeartbeatAnalysis`] — per-heartbeat descriptive statistics over a
//!   run: totals, activity, **rate factor** (Table IV carries a "Rate
//!   Factor" column; we define it as the mean number of completed beats
//!   per *active* interval), duration moments, and the longest silent
//!   gap.
//! * [`co_activity`] — the fraction of intervals in which two heartbeats
//!   beat together, quantifying the paper's MiniAMR observation that its
//!   manual sites were "simultaneously active, not really capturing
//!   different phase behavior".
//! * [`per_phase_stats`] — heartbeat statistics grouped by a phase
//!   assignment, connecting AppEKG data back to detected phases.

use crate::ekg::HeartbeatId;
use crate::record::{HbStats, IntervalRecord};
use std::collections::BTreeMap;

/// Descriptive statistics for one heartbeat over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct HeartbeatStats {
    /// Total completed beats.
    pub total_count: u64,
    /// Intervals in which at least one beat completed.
    pub active_intervals: usize,
    /// Total intervals in the run (denominator for activity).
    pub run_intervals: usize,
    /// Mean beats per active interval — the rate factor.
    pub rate_factor: f64,
    /// Mean beat duration over the whole run (ns).
    pub mean_duration_ns: f64,
    /// Standard deviation of per-interval mean durations (ns), over
    /// active intervals. Low values = stable phase behavior (the paper's
    /// "relatively stable in behavior" observation for MiniFE).
    pub duration_stddev_ns: f64,
    /// Longest run of consecutive intervals with no completed beat
    /// inside `0..run_intervals` (the "gaps" visible in paper Fig. 2).
    pub longest_gap: usize,
}

impl HeartbeatStats {
    /// Fraction of the run's intervals in which this heartbeat was
    /// active.
    pub fn activity(&self) -> f64 {
        if self.run_intervals == 0 {
            0.0
        } else {
            self.active_intervals as f64 / self.run_intervals as f64
        }
    }
}

/// Whole-run heartbeat analysis.
#[derive(Debug, Clone, Default)]
pub struct HeartbeatAnalysis {
    stats: BTreeMap<HeartbeatId, HeartbeatStats>,
    run_intervals: usize,
}

impl HeartbeatAnalysis {
    /// Analyze `records` over a run of `run_intervals` intervals (pass
    /// the collector's interval count; records may be sparse).
    pub fn from_records(records: &[IntervalRecord], run_intervals: usize) -> HeartbeatAnalysis {
        let run_intervals = run_intervals.max(
            records
                .iter()
                .map(|r| r.interval as usize + 1)
                .max()
                .unwrap_or(0),
        );
        // Collect per-hb interval maps.
        let mut per_hb: BTreeMap<HeartbeatId, BTreeMap<u64, HbStats>> = BTreeMap::new();
        for r in records {
            for (&hb, &s) in &r.heartbeats {
                if s.count > 0 {
                    per_hb.entry(hb).or_default().insert(r.interval, s);
                }
            }
        }
        let stats = per_hb
            .into_iter()
            .map(|(hb, by_interval)| {
                let total_count: u64 = by_interval.values().map(|s| s.count).sum();
                let total_duration: u64 = by_interval.values().map(|s| s.total_duration_ns).sum();
                let active = by_interval.len();
                let means: Vec<f64> = by_interval.values().map(|s| s.mean_duration_ns()).collect();
                let mean_of_means = means.iter().sum::<f64>() / active.max(1) as f64;
                let var = means
                    .iter()
                    .map(|m| (m - mean_of_means) * (m - mean_of_means))
                    .sum::<f64>()
                    / active.max(1) as f64;
                let longest_gap = longest_gap(&by_interval, run_intervals);
                (
                    hb,
                    HeartbeatStats {
                        total_count,
                        active_intervals: active,
                        run_intervals,
                        rate_factor: total_count as f64 / active.max(1) as f64,
                        mean_duration_ns: total_duration as f64 / total_count.max(1) as f64,
                        duration_stddev_ns: var.sqrt(),
                        longest_gap,
                    },
                )
            })
            .collect();
        HeartbeatAnalysis {
            stats,
            run_intervals,
        }
    }

    /// Stats for one heartbeat, if it ever beat.
    pub fn stats(&self, hb: HeartbeatId) -> Option<&HeartbeatStats> {
        self.stats.get(&hb)
    }

    /// All analyzed heartbeats in id order.
    pub fn heartbeats(&self) -> Vec<HeartbeatId> {
        self.stats.keys().copied().collect()
    }

    /// The run length used as activity denominator.
    pub fn run_intervals(&self) -> usize {
        self.run_intervals
    }
}

fn longest_gap(by_interval: &BTreeMap<u64, HbStats>, run_intervals: usize) -> usize {
    let mut longest = 0usize;
    let mut prev: i64 = -1;
    for &i in by_interval.keys() {
        let gap = (i as i64 - prev - 1).max(0) as usize;
        longest = longest.max(gap);
        prev = i as i64;
    }
    longest.max(run_intervals.saturating_sub(prev as usize + 1))
}

/// Fraction of intervals (among those where *either* beats) in which
/// both heartbeats complete at least one beat. 1.0 = always together
/// (the paper's overlapping MiniAMR manual sites); 0.0 = never.
pub fn co_activity(records: &[IntervalRecord], a: HeartbeatId, b: HeartbeatId) -> f64 {
    let mut either = 0usize;
    let mut both = 0usize;
    for r in records {
        let has_a = r.count(a) > 0;
        let has_b = r.count(b) > 0;
        if has_a || has_b {
            either += 1;
            if has_a && has_b {
                both += 1;
            }
        }
    }
    if either == 0 {
        0.0
    } else {
        both as f64 / either as f64
    }
}

/// Group heartbeat counts by a per-interval phase assignment
/// (`assignment[i]` = phase of interval `i`). Returns, per phase, per
/// heartbeat, the aggregated stats — connecting AppEKG output back to
/// the phases IncProf detected.
pub fn per_phase_stats(
    records: &[IntervalRecord],
    assignment: &[usize],
) -> BTreeMap<usize, BTreeMap<HeartbeatId, HbStats>> {
    let mut out: BTreeMap<usize, BTreeMap<HeartbeatId, HbStats>> = BTreeMap::new();
    for r in records {
        let Some(&phase) = assignment.get(r.interval as usize) else {
            continue;
        };
        let phase_map = out.entry(phase).or_default();
        for (&hb, &s) in &r.heartbeats {
            let e = phase_map.entry(hb).or_default();
            e.count += s.count;
            e.total_duration_ns += s.total_duration_ns;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(interval: u64, entries: &[(u32, u64, u64)]) -> IntervalRecord {
        let mut r = IntervalRecord {
            interval,
            start_ns: interval * 1000,
            ..Default::default()
        };
        for &(hb, count, dur) in entries {
            r.heartbeats.insert(
                HeartbeatId(hb),
                HbStats {
                    count,
                    total_duration_ns: dur,
                },
            );
        }
        r
    }

    #[test]
    fn rate_factor_is_beats_per_active_interval() {
        let records = vec![rec(0, &[(1, 4, 40)]), rec(2, &[(1, 2, 20)])];
        let a = HeartbeatAnalysis::from_records(&records, 4);
        let s = a.stats(HeartbeatId(1)).unwrap();
        assert_eq!(s.total_count, 6);
        assert_eq!(s.active_intervals, 2);
        assert_eq!(s.rate_factor, 3.0);
        assert_eq!(s.run_intervals, 4);
        assert!((s.activity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duration_moments() {
        // Interval means 10 and 20 → mean-of-means 15, sd 5.
        let records = vec![rec(0, &[(1, 1, 10)]), rec(1, &[(1, 2, 40)])];
        let a = HeartbeatAnalysis::from_records(&records, 2);
        let s = a.stats(HeartbeatId(1)).unwrap();
        assert!((s.mean_duration_ns - 50.0 / 3.0).abs() < 1e-9);
        assert!((s.duration_stddev_ns - 5.0).abs() < 1e-9);
    }

    #[test]
    fn longest_gap_spans_leading_middle_and_trailing() {
        // Active at 3 and 5 in a 10-interval run: gaps 3 (lead), 1, 4 (tail).
        let records = vec![rec(3, &[(1, 1, 1)]), rec(5, &[(1, 1, 1)])];
        let a = HeartbeatAnalysis::from_records(&records, 10);
        assert_eq!(a.stats(HeartbeatId(1)).unwrap().longest_gap, 4);
        // Trailing gap wins when it is longest.
        let records = vec![rec(0, &[(1, 1, 1)])];
        let a = HeartbeatAnalysis::from_records(&records, 10);
        assert_eq!(a.stats(HeartbeatId(1)).unwrap().longest_gap, 9);
    }

    #[test]
    fn run_length_extends_to_cover_records() {
        let records = vec![rec(7, &[(1, 1, 1)])];
        let a = HeartbeatAnalysis::from_records(&records, 0);
        assert_eq!(a.run_intervals(), 8);
    }

    #[test]
    fn zero_count_entries_are_not_activity() {
        let records = vec![rec(0, &[(1, 0, 0), (2, 1, 5)])];
        let a = HeartbeatAnalysis::from_records(&records, 1);
        assert!(a.stats(HeartbeatId(1)).is_none());
        assert!(a.stats(HeartbeatId(2)).is_some());
    }

    #[test]
    fn co_activity_bounds_and_cases() {
        let records = vec![
            rec(0, &[(1, 1, 1), (2, 1, 1)]),
            rec(1, &[(1, 1, 1)]),
            rec(2, &[(2, 1, 1)]),
            rec(3, &[]),
        ];
        let c = co_activity(&records, HeartbeatId(1), HeartbeatId(2));
        assert!((c - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(co_activity(&records, HeartbeatId(8), HeartbeatId(9)), 0.0);
        // Always-together pair.
        let together = vec![
            rec(0, &[(1, 1, 1), (2, 2, 2)]),
            rec(1, &[(1, 3, 3), (2, 1, 1)]),
        ];
        assert_eq!(co_activity(&together, HeartbeatId(1), HeartbeatId(2)), 1.0);
    }

    #[test]
    fn per_phase_stats_group_by_assignment() {
        let records = vec![
            rec(0, &[(1, 2, 20)]),
            rec(1, &[(1, 3, 30)]),
            rec(2, &[(2, 1, 5)]),
        ];
        let assignment = vec![0, 0, 1];
        let by_phase = per_phase_stats(&records, &assignment);
        assert_eq!(by_phase[&0][&HeartbeatId(1)].count, 5);
        assert_eq!(by_phase[&0][&HeartbeatId(1)].total_duration_ns, 50);
        assert_eq!(by_phase[&1][&HeartbeatId(2)].count, 1);
        assert!(!by_phase[&1].contains_key(&HeartbeatId(1)));
    }

    #[test]
    fn intervals_outside_assignment_are_skipped() {
        let records = vec![rec(5, &[(1, 1, 1)])];
        let by_phase = per_phase_stats(&records, &[0, 0]);
        assert!(by_phase.is_empty());
    }
}
