//! The AppEKG runtime: begin/end heartbeats with interval aggregation.

use crate::record::{HbStats, IntervalRecord};
use incprof_runtime::Clock;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier for one heartbeat (one phase of the application).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HeartbeatId(pub u32);

impl fmt::Display for HeartbeatId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hb#{}", self.0)
    }
}

#[derive(Default)]
struct State {
    /// Open heartbeats: per (thread, hb), a stack of begin timestamps
    /// (stacked to tolerate nested begin/end of the same id).
    open: HashMap<(std::thread::ThreadId, HeartbeatId), Vec<u64>>,
    /// Accumulators keyed by interval index.
    intervals: BTreeMap<u64, BTreeMap<HeartbeatId, HbStats>>,
}

struct Inner {
    clock: Clock,
    interval_ns: u64,
    names: RwLock<Vec<String>>,
    state: Mutex<State>,
    enabled: AtomicBool,
    unmatched_ends: AtomicU64,
}

/// The heartbeat framework handle. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct AppEkg {
    inner: Arc<Inner>,
}

impl AppEkg {
    /// Create a framework instance over `clock` with the given collection
    /// interval. The paper's deployments write data once per second; any
    /// interval works, and experiments here use the same interval as the
    /// IncProf profiler so heartbeat plots line up with profile intervals.
    pub fn new(clock: Clock, interval_ns: u64) -> AppEkg {
        assert!(interval_ns > 0, "collection interval must be positive");
        AppEkg {
            inner: Arc::new(Inner {
                clock,
                interval_ns,
                names: RwLock::new(Vec::new()),
                state: Mutex::new(State::default()),
                enabled: AtomicBool::new(true),
                unmatched_ends: AtomicU64::new(0),
            }),
        }
    }

    /// The collection interval in nanoseconds.
    pub fn interval_ns(&self) -> u64 {
        self.inner.interval_ns
    }

    /// Register a heartbeat by name (idempotent) and return its id.
    pub fn register_heartbeat(&self, name: impl Into<String>) -> HeartbeatId {
        let name = name.into();
        let mut names = self.inner.names.write();
        if let Some(pos) = names.iter().position(|n| *n == name) {
            return HeartbeatId(pos as u32);
        }
        names.push(name);
        HeartbeatId((names.len() - 1) as u32)
    }

    /// Name of a registered heartbeat.
    pub fn heartbeat_name(&self, hb: HeartbeatId) -> String {
        self.inner
            .names
            .read()
            .get(hb.0 as usize)
            .cloned()
            .unwrap_or_else(|| format!("{hb}"))
    }

    /// All registered heartbeat names, in id order.
    pub fn heartbeat_names(&self) -> Vec<String> {
        self.inner.names.read().clone()
    }

    /// Disable (or re-enable) the framework. When disabled, begin/end are
    /// a single atomic load — the uninstrumented baseline for overhead
    /// measurements.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Release);
    }

    /// Whether heartbeats are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Acquire)
    }

    /// Begin a heartbeat (paper: `beginHeartbeat(ID)`).
    #[inline]
    pub fn begin(&self, hb: HeartbeatId) {
        if !self.is_enabled() {
            return;
        }
        let now = self.inner.clock.now_ns();
        let key = (std::thread::current().id(), hb);
        self.inner
            .state
            .lock()
            .open
            .entry(key)
            .or_default()
            .push(now);
    }

    /// End a heartbeat (paper: `endHeartbeat(ID)`). The completed beat is
    /// attributed to the interval containing the **end** timestamp.
    #[inline]
    pub fn end(&self, hb: HeartbeatId) {
        if !self.is_enabled() {
            return;
        }
        let now = self.inner.clock.now_ns();
        let key = (std::thread::current().id(), hb);
        let mut state = self.inner.state.lock();
        let begin = state.open.get_mut(&key).and_then(Vec::pop);
        match begin {
            Some(b) => {
                let idx = now / self.inner.interval_ns;
                let stats = state
                    .intervals
                    .entry(idx)
                    .or_default()
                    .entry(hb)
                    .or_default();
                stats.count += 1;
                stats.total_duration_ns += now.saturating_sub(b);
            }
            None => {
                self.inner.unmatched_ends.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// RAII wrapper: begin now, end on drop.
    pub fn scope(&self, hb: HeartbeatId) -> HeartbeatGuard<'_> {
        self.begin(hb);
        HeartbeatGuard { ekg: self, hb }
    }

    /// Number of `end` calls that had no matching `begin` (an application
    /// instrumentation bug; the calls were ignored).
    pub fn unmatched_ends(&self) -> u64 {
        self.inner.unmatched_ends.load(Ordering::Relaxed)
    }

    /// Drain records for every interval that is *complete* (strictly
    /// earlier than the interval containing the current clock reading).
    /// This is the once-per-interval write-out of the paper; call it from
    /// a collection thread or a simulation driver. Intervals with no
    /// completed heartbeats produce no record (as in the paper's sparse
    /// CSV output).
    pub fn drain_completed(&self) -> Vec<IntervalRecord> {
        let current = self.inner.clock.now_ns() / self.inner.interval_ns;
        let mut state = self.inner.state.lock();
        let done: Vec<u64> = state.intervals.range(..current).map(|(&i, _)| i).collect();
        done.into_iter()
            .map(|i| {
                let heartbeats = state.intervals.remove(&i).expect("key from range");
                IntervalRecord {
                    interval: i,
                    start_ns: i * self.inner.interval_ns,
                    heartbeats,
                }
            })
            .collect()
    }

    /// Flush everything, including the current (possibly partial)
    /// interval. Call at application end.
    pub fn finish(&self) -> Vec<IntervalRecord> {
        let mut state = self.inner.state.lock();
        let intervals = std::mem::take(&mut state.intervals);
        intervals
            .into_iter()
            .map(|(i, heartbeats)| IntervalRecord {
                interval: i,
                start_ns: i * self.inner.interval_ns,
                heartbeats,
            })
            .collect()
    }
}

/// RAII guard produced by [`AppEkg::scope`].
pub struct HeartbeatGuard<'a> {
    ekg: &'a AppEkg,
    hb: HeartbeatId,
}

impl Drop for HeartbeatGuard<'_> {
    fn drop(&mut self) {
        self.ekg.end(self.hb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ekg_1us() -> (AppEkg, Clock) {
        let clock = Clock::virtual_clock();
        (AppEkg::new(clock.clone(), 1_000), clock)
    }

    #[test]
    fn register_is_idempotent_and_names_resolve() {
        let (ekg, _) = ekg_1us();
        let a = ekg.register_heartbeat("solve");
        let b = ekg.register_heartbeat("solve");
        let c = ekg.register_heartbeat("assemble");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(ekg.heartbeat_name(a), "solve");
        assert_eq!(ekg.heartbeat_names(), vec!["solve", "assemble"]);
    }

    #[test]
    fn counts_and_mean_duration_aggregate_per_interval() {
        let (ekg, clock) = ekg_1us();
        let hb = ekg.register_heartbeat("hb");
        // Three beats of 100 ns each in interval 0.
        for _ in 0..3 {
            ekg.begin(hb);
            clock.advance(100);
            ekg.end(hb);
        }
        clock.advance(1_000); // move into interval 1
        let recs = ekg.finish();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].interval, 0);
        let s = recs[0].stats(hb).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.mean_duration_ns(), 100.0);
    }

    #[test]
    fn beat_attributed_to_completion_interval() {
        // A heartbeat spanning intervals 0..2 must appear only in the
        // interval its end lands in (paper §VI-A, Graph500 discussion).
        let (ekg, clock) = ekg_1us();
        let hb = ekg.register_heartbeat("long");
        ekg.begin(hb);
        clock.advance(2_500); // ends in interval 2
        ekg.end(hb);
        let recs = ekg.finish();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].interval, 2);
        assert_eq!(recs[0].stats(hb).unwrap().count, 1);
        assert_eq!(recs[0].stats(hb).unwrap().total_duration_ns, 2_500);
    }

    #[test]
    fn drain_completed_leaves_current_interval() {
        let (ekg, clock) = ekg_1us();
        let hb = ekg.register_heartbeat("hb");
        ekg.begin(hb);
        clock.advance(10);
        ekg.end(hb); // interval 0
        clock.advance(1_500); // now in interval 1
        ekg.begin(hb);
        clock.advance(10);
        ekg.end(hb); // interval 1 (current)
        let drained = ekg.drain_completed();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].interval, 0);
        // Current interval still pending.
        let rest = ekg.finish();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].interval, 1);
    }

    #[test]
    fn empty_intervals_produce_no_records() {
        let (ekg, clock) = ekg_1us();
        let hb = ekg.register_heartbeat("hb");
        ekg.begin(hb);
        clock.advance(10);
        ekg.end(hb); // interval 0
        clock.advance(10_000); // intervals 1..9 empty
        ekg.begin(hb);
        clock.advance(10);
        ekg.end(hb); // interval 10
        let recs = ekg.finish();
        let idxs: Vec<u64> = recs.iter().map(|r| r.interval).collect();
        assert_eq!(idxs, vec![0, 10]);
    }

    #[test]
    fn nested_same_id_heartbeats_pair_lifo() {
        let (ekg, clock) = ekg_1us();
        let hb = ekg.register_heartbeat("nested");
        ekg.begin(hb); // outer at t=0
        clock.advance(100);
        ekg.begin(hb); // inner at t=100
        clock.advance(50);
        ekg.end(hb); // inner: 50
        clock.advance(25);
        ekg.end(hb); // outer: 175
        let recs = ekg.finish();
        let s = recs[0].stats(hb).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_duration_ns, 50 + 175);
        assert_eq!(ekg.unmatched_ends(), 0);
    }

    #[test]
    fn unmatched_end_is_counted_and_ignored() {
        let (ekg, _) = ekg_1us();
        let hb = ekg.register_heartbeat("hb");
        ekg.end(hb);
        assert_eq!(ekg.unmatched_ends(), 1);
        assert!(ekg.finish().is_empty());
    }

    #[test]
    fn disabled_ekg_records_nothing() {
        let (ekg, clock) = ekg_1us();
        let hb = ekg.register_heartbeat("hb");
        ekg.set_enabled(false);
        ekg.begin(hb);
        clock.advance(10);
        ekg.end(hb);
        assert!(ekg.finish().is_empty());
        assert_eq!(ekg.unmatched_ends(), 0);
    }

    #[test]
    fn scope_guard_ends_on_drop() {
        let (ekg, clock) = ekg_1us();
        let hb = ekg.register_heartbeat("hb");
        {
            let _g = ekg.scope(hb);
            clock.advance(42);
        }
        let recs = ekg.finish();
        assert_eq!(recs[0].stats(hb).unwrap().total_duration_ns, 42);
    }

    #[test]
    fn threads_do_not_cross_pair_heartbeats() {
        let clock = Clock::virtual_clock();
        let ekg = AppEkg::new(clock.clone(), 1_000_000);
        let hb = ekg.register_heartbeat("worker");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let ekg = ekg.clone();
                let clock = clock.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        ekg.begin(hb);
                        clock.advance(1);
                        ekg.end(hb);
                    }
                });
            }
        });
        let recs = ekg.finish();
        let total: u64 = recs.iter().map(|r| r.count(hb)).sum();
        assert_eq!(total, 400);
        assert_eq!(ekg.unmatched_ends(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_panics() {
        let _ = AppEkg::new(Clock::virtual_clock(), 0);
    }

    #[test]
    fn two_heartbeats_interleaved() {
        let (ekg, clock) = ekg_1us();
        let a = ekg.register_heartbeat("a");
        let b = ekg.register_heartbeat("b");
        ekg.begin(a);
        clock.advance(10);
        ekg.begin(b);
        clock.advance(10);
        ekg.end(a); // a: 20
        clock.advance(10);
        ekg.end(b); // b: 20
        let recs = ekg.finish();
        assert_eq!(recs[0].stats(a).unwrap().total_duration_ns, 20);
        assert_eq!(recs[0].stats(b).unwrap().total_duration_ns, 20);
    }
}
