//! Heartbeat baselines and regression detection.
//!
//! The paper's deployment story (§III): "as a history of an application
//! is built up this data can be used to identify when the application is
//! running poorly and when it is running well. Correlating the
//! application heartbeat data with system data could help identify when
//! system issues caused the poor performance."
//!
//! This module implements that history: a [`HeartbeatBaseline`] is built
//! from the heartbeat analyses of known-good runs; [`compare`] checks a
//! new run against it and flags heartbeats whose rate factor or mean
//! duration deviates by more than a configurable number of standard
//! deviations (with a relative-change floor so near-constant baselines
//! don't flag noise).

use crate::analysis::HeartbeatAnalysis;
use crate::ekg::HeartbeatId;
use std::collections::BTreeMap;

/// Baseline moments for one heartbeat across historical runs.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    /// Runs in which the heartbeat appeared.
    pub runs: usize,
    /// Mean of per-run rate factors.
    pub rate_mean: f64,
    /// Standard deviation of per-run rate factors.
    pub rate_std: f64,
    /// Mean of per-run mean durations (ns).
    pub duration_mean_ns: f64,
    /// Standard deviation of per-run mean durations (ns).
    pub duration_std_ns: f64,
}

/// A heartbeat history built from known-good runs.
#[derive(Debug, Clone, Default)]
pub struct HeartbeatBaseline {
    entries: BTreeMap<HeartbeatId, BaselineEntry>,
}

impl HeartbeatBaseline {
    /// Build from per-run analyses (heartbeat ids must be consistent
    /// across runs, which holds when the same instrumentation plan is
    /// used — the deployment scenario).
    ///
    /// # Panics
    /// Panics if `runs` is empty.
    pub fn from_runs(runs: &[HeartbeatAnalysis]) -> HeartbeatBaseline {
        assert!(!runs.is_empty(), "baseline needs at least one run");
        let mut per_hb: BTreeMap<HeartbeatId, Vec<(f64, f64)>> = BTreeMap::new();
        for run in runs {
            for hb in run.heartbeats() {
                let s = run.stats(hb).expect("listed heartbeat has stats");
                per_hb
                    .entry(hb)
                    .or_default()
                    .push((s.rate_factor, s.mean_duration_ns));
            }
        }
        let entries = per_hb
            .into_iter()
            .map(|(hb, samples)| {
                let n = samples.len() as f64;
                let rate_mean = samples.iter().map(|s| s.0).sum::<f64>() / n;
                let dur_mean = samples.iter().map(|s| s.1).sum::<f64>() / n;
                let rate_var = samples
                    .iter()
                    .map(|s| (s.0 - rate_mean).powi(2))
                    .sum::<f64>()
                    / n;
                let dur_var = samples
                    .iter()
                    .map(|s| (s.1 - dur_mean).powi(2))
                    .sum::<f64>()
                    / n;
                (
                    hb,
                    BaselineEntry {
                        runs: samples.len(),
                        rate_mean,
                        rate_std: rate_var.sqrt(),
                        duration_mean_ns: dur_mean,
                        duration_std_ns: dur_var.sqrt(),
                    },
                )
            })
            .collect();
        HeartbeatBaseline { entries }
    }

    /// Baseline entry for one heartbeat.
    pub fn entry(&self, hb: HeartbeatId) -> Option<&BaselineEntry> {
        self.entries.get(&hb)
    }

    /// Heartbeats with baseline data.
    pub fn heartbeats(&self) -> Vec<HeartbeatId> {
        self.entries.keys().copied().collect()
    }
}

/// What deviated in a flagged heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviationKind {
    /// The heartbeat rate changed (work progressing faster/slower).
    Rate,
    /// The mean beat duration changed (each unit of work costs more/less).
    Duration,
    /// The heartbeat vanished entirely from the new run.
    Missing,
    /// The heartbeat has no baseline (new instrumentation site).
    NoBaseline,
}

/// One flagged deviation.
#[derive(Debug, Clone, PartialEq)]
pub struct Deviation {
    /// The heartbeat concerned.
    pub hb: HeartbeatId,
    /// What deviated.
    pub kind: DeviationKind,
    /// Baseline value (rate or ns; 0 for Missing/NoBaseline).
    pub expected: f64,
    /// Observed value.
    pub observed: f64,
    /// Deviation in baseline standard deviations (∞ when σ = 0 and the
    /// values differ beyond the relative floor).
    pub sigmas: f64,
}

/// Comparison thresholds.
#[derive(Debug, Clone, Copy)]
pub struct CompareConfig {
    /// Flag when |observed − mean| exceeds this many σ.
    pub sigma_threshold: f64,
    /// ... and also exceeds this relative change (guards σ≈0 baselines).
    pub min_relative_change: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            sigma_threshold: 3.0,
            min_relative_change: 0.10,
        }
    }
}

/// Compare a new run against the baseline, returning flagged deviations
/// (most severe first, by σ).
pub fn compare(
    baseline: &HeartbeatBaseline,
    run: &HeartbeatAnalysis,
    config: CompareConfig,
) -> Vec<Deviation> {
    let mut out = Vec::new();
    let run_hbs: std::collections::BTreeSet<HeartbeatId> = run.heartbeats().into_iter().collect();

    for hb in baseline.heartbeats() {
        let entry = baseline.entry(hb).expect("listed entry");
        match run.stats(hb) {
            None => out.push(Deviation {
                hb,
                kind: DeviationKind::Missing,
                expected: entry.rate_mean,
                observed: 0.0,
                sigmas: f64::INFINITY,
            }),
            Some(s) => {
                check(
                    &mut out,
                    hb,
                    DeviationKind::Rate,
                    entry.rate_mean,
                    entry.rate_std,
                    s.rate_factor,
                    config,
                );
                check(
                    &mut out,
                    hb,
                    DeviationKind::Duration,
                    entry.duration_mean_ns,
                    entry.duration_std_ns,
                    s.mean_duration_ns,
                    config,
                );
            }
        }
    }
    for hb in run_hbs {
        if baseline.entry(hb).is_none() {
            out.push(Deviation {
                hb,
                kind: DeviationKind::NoBaseline,
                expected: 0.0,
                observed: run.stats(hb).map(|s| s.rate_factor).unwrap_or(0.0),
                sigmas: f64::INFINITY,
            });
        }
    }
    out.sort_by(|a, b| {
        b.sigmas
            .partial_cmp(&a.sigmas)
            .unwrap()
            .then(a.hb.0.cmp(&b.hb.0))
    });
    out
}

fn check(
    out: &mut Vec<Deviation>,
    hb: HeartbeatId,
    kind: DeviationKind,
    mean: f64,
    std: f64,
    observed: f64,
    config: CompareConfig,
) {
    let abs = (observed - mean).abs();
    let rel = if mean.abs() > 0.0 {
        abs / mean.abs()
    } else if abs > 0.0 {
        f64::INFINITY
    } else {
        0.0
    };
    if rel < config.min_relative_change {
        return;
    }
    let sigmas = if std > 0.0 { abs / std } else { f64::INFINITY };
    if sigmas > config.sigma_threshold {
        out.push(Deviation {
            hb,
            kind,
            expected: mean,
            observed,
            sigmas,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{HbStats, IntervalRecord};

    fn run_with(rate: u64, duration: u64, jitter: u64) -> HeartbeatAnalysis {
        let mut records = Vec::new();
        for i in 0..10u64 {
            let mut r = IntervalRecord {
                interval: i,
                start_ns: i * 1000,
                ..Default::default()
            };
            let count = rate + (i % 2) * jitter;
            r.heartbeats.insert(
                HeartbeatId(1),
                HbStats {
                    count,
                    total_duration_ns: count * duration,
                },
            );
            records.push(r);
        }
        HeartbeatAnalysis::from_records(&records, 10)
    }

    fn baseline() -> HeartbeatBaseline {
        let runs: Vec<HeartbeatAnalysis> = (0..5).map(|i| run_with(100 + i, 1_000, 2)).collect();
        HeartbeatBaseline::from_runs(&runs)
    }

    #[test]
    fn healthy_run_raises_no_flags() {
        let b = baseline();
        let run = run_with(102, 1_000, 2);
        assert!(compare(&b, &run, CompareConfig::default()).is_empty());
    }

    #[test]
    fn slowdown_is_flagged_as_duration_deviation() {
        let b = baseline();
        let run = run_with(102, 2_500, 2); // beats take 2.5x longer
        let devs = compare(&b, &run, CompareConfig::default());
        assert!(!devs.is_empty());
        assert_eq!(devs[0].kind, DeviationKind::Duration);
        assert!(devs[0].observed > devs[0].expected);
    }

    #[test]
    fn stalled_progress_is_flagged_as_rate_deviation() {
        let b = baseline();
        let run = run_with(30, 1_000, 2); // far fewer beats per interval
        let devs = compare(&b, &run, CompareConfig::default());
        assert!(devs.iter().any(|d| d.kind == DeviationKind::Rate));
    }

    #[test]
    fn vanished_heartbeat_is_flagged_missing() {
        let b = baseline();
        let empty = HeartbeatAnalysis::from_records(&[], 10);
        let devs = compare(&b, &empty, CompareConfig::default());
        assert_eq!(devs.len(), 1);
        assert_eq!(devs[0].kind, DeviationKind::Missing);
        assert!(devs[0].sigmas.is_infinite());
    }

    #[test]
    fn unknown_heartbeat_is_flagged_no_baseline() {
        let b = baseline();
        let mut records = Vec::new();
        let mut r = IntervalRecord {
            interval: 0,
            start_ns: 0,
            ..Default::default()
        };
        r.heartbeats.insert(
            HeartbeatId(1),
            HbStats {
                count: 100,
                total_duration_ns: 100_000,
            },
        );
        r.heartbeats.insert(
            HeartbeatId(9),
            HbStats {
                count: 5,
                total_duration_ns: 50,
            },
        );
        records.push(r);
        let run = HeartbeatAnalysis::from_records(&records, 10);
        let devs = compare(&b, &run, CompareConfig::default());
        assert!(devs
            .iter()
            .any(|d| d.kind == DeviationKind::NoBaseline && d.hb == HeartbeatId(9)));
    }

    #[test]
    fn relative_floor_suppresses_tiny_sigma_noise() {
        // A perfectly constant baseline (σ = 0) must not flag a 1% change.
        let runs: Vec<HeartbeatAnalysis> = (0..3).map(|_| run_with(100, 1_000, 0)).collect();
        let b = HeartbeatBaseline::from_runs(&runs);
        let run = run_with(101, 1_000, 0);
        assert!(compare(&b, &run, CompareConfig::default()).is_empty());
        // But a 50% change on the same σ = 0 baseline is flagged (∞ σ).
        let bad = run_with(150, 1_000, 0);
        let devs = compare(&b, &bad, CompareConfig::default());
        assert!(!devs.is_empty());
        assert!(devs[0].sigmas.is_infinite());
    }

    #[test]
    fn deviations_sort_most_severe_first() {
        let b = baseline();
        let run = run_with(30, 5_000, 2); // both rate and duration off
        let devs = compare(&b, &run, CompareConfig::default());
        assert!(devs.len() >= 2);
        for pair in devs.windows(2) {
            assert!(pair[0].sigmas >= pair[1].sigmas);
        }
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn empty_history_panics() {
        let _ = HeartbeatBaseline::from_runs(&[]);
    }
}
