//! # appekg
//!
//! The AppEKG heartbeat instrumentation framework (paper §III).
//!
//! AppEKG is the *consumer* of IncProf's phase analysis: once phase
//! detection has identified representative source locations, those sites
//! are instrumented with heartbeats. The API follows the paper's final
//! two-step design: `beginHeartbeat(ID)` / `endHeartbeat(ID)`, where "each
//! unique heartbeat ID represents a unique phase of the application".
//!
//! Core behaviors reproduced from the paper:
//!
//! * **Interval aggregation, not event logging** — "The framework does not
//!   record every individual heartbeat but rather accumulates the number
//!   of heartbeats and their average duration during a specified
//!   collection interval; at the end of the interval, this data is then
//!   written out."
//! * **Completion-interval attribution** — a heartbeat is attributed to
//!   the interval its `end` lands in. This is why, in the paper's Graph500
//!   discussion, manual heartbeats that run longer than the 1-second
//!   interval "do not show up in all the intervals, only those that they
//!   finish in".
//! * **Near-zero overhead when idle** — begin/end are a clock read plus an
//!   uncontended lock; a disabled AppEKG short-circuits to one atomic
//!   load, which is the baseline for the Table I heartbeat-overhead
//!   column.
//!
//! ```
//! use appekg::AppEkg;
//! use incprof_runtime::Clock;
//!
//! let clock = Clock::virtual_clock();
//! let ekg = AppEkg::new(clock.clone(), 1_000); // 1 µs collection interval
//! let hb = ekg.register_heartbeat("cg_solve");
//! for _ in 0..3 {
//!     ekg.begin(hb);
//!     clock.advance(100);
//!     ekg.end(hb);
//! }
//! let records = ekg.finish();
//! assert_eq!(records[0].stats(hb).unwrap().count, 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod baseline;
pub mod ekg;
pub mod flusher;
pub mod record;
pub mod series;
pub mod sink;

pub use analysis::{co_activity, per_phase_stats, HeartbeatAnalysis, HeartbeatStats};
pub use baseline::{compare, CompareConfig, Deviation, DeviationKind, HeartbeatBaseline};
pub use ekg::{AppEkg, HeartbeatGuard, HeartbeatId};
pub use flusher::PeriodicFlusher;
pub use record::{HbStats, IntervalRecord};
pub use series::HeartbeatSeries;
pub use sink::{AggregateSink, CsvSink, MemorySink, Sink};
