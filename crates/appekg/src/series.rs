//! Dense heartbeat time series, for plotting and analysis.
//!
//! The paper's Figures 2–6 plot, per instrumentation site, the heartbeat
//! count and average duration in each interval over the run. This module
//! converts sparse [`IntervalRecord`]s into dense per-heartbeat series
//! (absent intervals become zeros — a gap in the plot).

use crate::ekg::HeartbeatId;
use crate::record::IntervalRecord;
use std::collections::BTreeMap;

/// Dense per-interval series for one heartbeat id.
#[derive(Debug, Clone, PartialEq)]
pub struct HeartbeatSeries {
    /// The heartbeat this series describes.
    pub hb: HeartbeatId,
    /// First interval index covered (usually 0).
    pub first_interval: u64,
    /// Completed-beat count per interval.
    pub counts: Vec<u64>,
    /// Mean duration (ns) per interval; 0 where no beat completed.
    pub mean_durations_ns: Vec<f64>,
}

impl HeartbeatSeries {
    /// Build dense series for every heartbeat appearing in `records`,
    /// covering intervals `0..=last` where `last` is the maximum interval
    /// present (or the provided `num_intervals` if larger).
    pub fn from_records(
        records: &[IntervalRecord],
        num_intervals: Option<u64>,
    ) -> BTreeMap<HeartbeatId, HeartbeatSeries> {
        let last = records.iter().map(|r| r.interval).max();
        let n = match (last, num_intervals) {
            (None, None) => 0,
            (l, n) => l.map(|l| l + 1).unwrap_or(0).max(n.unwrap_or(0)),
        } as usize;

        let mut out: BTreeMap<HeartbeatId, HeartbeatSeries> = BTreeMap::new();
        for r in records {
            for (&hb, stats) in &r.heartbeats {
                let s = out.entry(hb).or_insert_with(|| HeartbeatSeries {
                    hb,
                    first_interval: 0,
                    counts: vec![0; n],
                    mean_durations_ns: vec![0.0; n],
                });
                let i = r.interval as usize;
                s.counts[i] = stats.count;
                s.mean_durations_ns[i] = stats.mean_duration_ns();
            }
        }
        out
    }

    /// Number of intervals in the series.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when the series covers no intervals.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Fraction of intervals in which this heartbeat completed at least
    /// once (its "activity"); used when characterizing discovered sites.
    pub fn activity(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        self.counts.iter().filter(|&&c| c > 0).count() as f64 / self.counts.len() as f64
    }

    /// Total completed beats over the run.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Render a one-line ASCII sparkline of the count series (for the
    /// textual "figures" in the experiment harness).
    pub fn sparkline(&self) -> String {
        const LEVELS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.counts.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return " ".repeat(self.counts.len());
        }
        self.counts
            .iter()
            .map(|&c| {
                let idx = if c == 0 {
                    0
                } else {
                    1 + (c * 7 / max) as usize
                };
                LEVELS[idx.min(8)]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::HbStats;

    fn rec(interval: u64, entries: &[(u32, u64, u64)]) -> IntervalRecord {
        let mut r = IntervalRecord {
            interval,
            start_ns: interval * 1000,
            ..Default::default()
        };
        for &(hb, count, total) in entries {
            r.heartbeats.insert(
                HeartbeatId(hb),
                HbStats {
                    count,
                    total_duration_ns: total,
                },
            );
        }
        r
    }

    #[test]
    fn densifies_with_gaps() {
        let records = vec![rec(0, &[(1, 2, 20)]), rec(3, &[(1, 4, 80)])];
        let series = HeartbeatSeries::from_records(&records, None);
        let s = &series[&HeartbeatId(1)];
        assert_eq!(s.counts, vec![2, 0, 0, 4]);
        assert_eq!(s.mean_durations_ns, vec![10.0, 0.0, 0.0, 20.0]);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn multiple_heartbeats_split_into_series() {
        let records = vec![rec(0, &[(1, 1, 5), (2, 3, 9)]), rec(1, &[(2, 1, 4)])];
        let series = HeartbeatSeries::from_records(&records, None);
        assert_eq!(series.len(), 2);
        assert_eq!(series[&HeartbeatId(1)].counts, vec![1, 0]);
        assert_eq!(series[&HeartbeatId(2)].counts, vec![3, 1]);
    }

    #[test]
    fn explicit_num_intervals_pads() {
        let records = vec![rec(0, &[(1, 1, 5)])];
        let series = HeartbeatSeries::from_records(&records, Some(5));
        assert_eq!(series[&HeartbeatId(1)].counts.len(), 5);
    }

    #[test]
    fn activity_fraction() {
        let records = vec![
            rec(0, &[(1, 1, 1)]),
            rec(1, &[(1, 1, 1)]),
            rec(3, &[(1, 1, 1)]),
        ];
        let series = HeartbeatSeries::from_records(&records, None);
        assert!((series[&HeartbeatId(1)].activity() - 0.75).abs() < 1e-12);
        assert_eq!(series[&HeartbeatId(1)].total_count(), 3);
    }

    #[test]
    fn empty_records_give_empty_map() {
        let series = HeartbeatSeries::from_records(&[], None);
        assert!(series.is_empty());
    }

    #[test]
    fn sparkline_scales_with_max() {
        let records = vec![rec(0, &[(1, 8, 8)]), rec(1, &[(1, 1, 1)])];
        let series = HeartbeatSeries::from_records(&records, Some(3));
        let sl = series[&HeartbeatId(1)].sparkline();
        let chars: Vec<char> = sl.chars().collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0], '█');
        assert_ne!(chars[1], ' ');
        assert_eq!(chars[2], ' ');
    }
}
