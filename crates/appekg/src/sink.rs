//! Output sinks for heartbeat interval records.
//!
//! The paper's AppEKG integrates with the LDMS data collection framework
//! but "can be used in a stand-alone fashion as well" (§III-A). Our sinks
//! model the stand-alone side: an in-memory sink for tests and analysis, a
//! CSV sink matching the per-interval write-out, and an aggregating sink
//! that plays the role of LDMS's downstream descriptive statistics.

use crate::ekg::HeartbeatId;
use crate::record::{HbStats, IntervalRecord};
use std::collections::BTreeMap;
use std::io::Write;

/// A destination for interval records.
pub trait Sink {
    /// Consume one interval record.
    fn emit(&mut self, record: &IntervalRecord);

    /// Consume many records.
    fn emit_all(&mut self, records: &[IntervalRecord]) {
        for r in records {
            self.emit(r);
        }
    }
}

/// Retains all records in memory (tests, analysis pipelines).
#[derive(Debug, Default)]
pub struct MemorySink {
    /// The records received so far, in emission order.
    pub records: Vec<IntervalRecord>,
}

impl Sink for MemorySink {
    fn emit(&mut self, record: &IntervalRecord) {
        self.records.push(record.clone());
    }
}

/// Writes one CSV row per (interval, heartbeat):
/// `interval,start_ns,hbid,count,mean_duration_ns`.
pub struct CsvSink<W: Write> {
    writer: W,
    wrote_header: bool,
}

impl<W: Write> CsvSink<W> {
    /// Create a CSV sink over any writer.
    pub fn new(writer: W) -> CsvSink<W> {
        CsvSink {
            writer,
            wrote_header: false,
        }
    }

    /// Finish writing and return the underlying writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> Sink for CsvSink<W> {
    fn emit(&mut self, record: &IntervalRecord) {
        if !self.wrote_header {
            let _ = writeln!(self.writer, "interval,start_ns,hbid,count,mean_duration_ns");
            self.wrote_header = true;
        }
        for (hb, stats) in &record.heartbeats {
            let _ = writeln!(
                self.writer,
                "{},{},{},{},{:.1}",
                record.interval,
                record.start_ns,
                hb.0,
                stats.count,
                stats.mean_duration_ns()
            );
        }
    }
}

/// Whole-run aggregate per heartbeat (counts, duration totals, active
/// intervals) — the descriptive statistics layer.
#[derive(Debug, Default)]
pub struct AggregateSink {
    totals: BTreeMap<HeartbeatId, HbStats>,
    active_intervals: BTreeMap<HeartbeatId, u64>,
    intervals_seen: u64,
}

impl AggregateSink {
    /// Create an empty aggregate.
    pub fn new() -> AggregateSink {
        Self::default()
    }

    /// Whole-run stats for `hb`.
    pub fn totals(&self, hb: HeartbeatId) -> HbStats {
        self.totals.get(&hb).copied().unwrap_or_default()
    }

    /// Number of records in which `hb` completed at least one beat.
    pub fn active_intervals(&self, hb: HeartbeatId) -> u64 {
        self.active_intervals.get(&hb).copied().unwrap_or(0)
    }

    /// Number of records consumed.
    pub fn intervals_seen(&self) -> u64 {
        self.intervals_seen
    }

    /// Heartbeats observed, in id order.
    pub fn heartbeats(&self) -> Vec<HeartbeatId> {
        self.totals.keys().copied().collect()
    }
}

impl Sink for AggregateSink {
    fn emit(&mut self, record: &IntervalRecord) {
        self.intervals_seen += 1;
        for (&hb, stats) in &record.heartbeats {
            let t = self.totals.entry(hb).or_default();
            t.count += stats.count;
            t.total_duration_ns += stats.total_duration_ns;
            if stats.count > 0 {
                *self.active_intervals.entry(hb).or_default() += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(interval: u64, hb: u32, count: u64, total: u64) -> IntervalRecord {
        let mut r = IntervalRecord {
            interval,
            start_ns: interval * 10,
            ..Default::default()
        };
        r.heartbeats.insert(
            HeartbeatId(hb),
            HbStats {
                count,
                total_duration_ns: total,
            },
        );
        r
    }

    #[test]
    fn memory_sink_retains_records() {
        let mut sink = MemorySink::default();
        sink.emit_all(&[rec(0, 1, 2, 10), rec(1, 1, 1, 5)]);
        assert_eq!(sink.records.len(), 2);
        assert_eq!(sink.records[1].interval, 1);
    }

    #[test]
    fn csv_sink_formats_rows() {
        let mut sink = CsvSink::new(Vec::new());
        sink.emit(&rec(3, 7, 2, 30));
        let out = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "interval,start_ns,hbid,count,mean_duration_ns");
        assert_eq!(lines[1], "3,30,7,2,15.0");
    }

    #[test]
    fn csv_header_only_once() {
        let mut sink = CsvSink::new(Vec::new());
        sink.emit(&rec(0, 1, 1, 1));
        sink.emit(&rec(1, 1, 1, 1));
        let out = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(out.matches("interval,").count(), 1);
    }

    #[test]
    fn aggregate_sink_totals() {
        let mut sink = AggregateSink::new();
        sink.emit_all(&[rec(0, 1, 2, 10), rec(1, 1, 3, 20), rec(2, 2, 1, 4)]);
        assert_eq!(sink.totals(HeartbeatId(1)).count, 5);
        assert_eq!(sink.totals(HeartbeatId(1)).total_duration_ns, 30);
        assert_eq!(sink.active_intervals(HeartbeatId(1)), 2);
        assert_eq!(sink.intervals_seen(), 3);
        assert_eq!(sink.heartbeats(), vec![HeartbeatId(1), HeartbeatId(2)]);
    }

    #[test]
    fn aggregate_sink_empty() {
        let sink = AggregateSink::new();
        assert_eq!(sink.totals(HeartbeatId(9)).count, 0);
        assert_eq!(sink.active_intervals(HeartbeatId(9)), 0);
    }
}
