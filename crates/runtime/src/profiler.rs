//! The profiler runtime: shadow stacks, guards, and snapshotting.
//!
//! Semantics, chosen to match gprof's observable behavior (paper §IV):
//!
//! * **Call counts at entry** — `mcount` runs in the function prologue, so
//!   a call that spans many collection intervals contributes its `calls`
//!   increment to the interval it *started* in. Algorithm 1's loop/body
//!   decision depends on this.
//! * **Self time accrues continuously** — gprof's PC sampling charges the
//!   running function between any two snapshots. We reproduce this exactly
//!   (not statistically): each thread tracks which frame is running, and
//!   [`ProfilerRuntime::snapshot`] flushes the partial self time of every
//!   thread's running frame before reading the counters.
//! * **Child time and arcs at exit** — a callee's total time is attributed
//!   to its caller's `child_time` and to the caller→callee arc when the
//!   callee returns, as gprof's arc records do.

use crate::clock::Clock;
use incprof_profile::{
    CallGraphProfile, FlatProfile, FunctionId, FunctionInfo, FunctionTable, ProfileSnapshot,
};
use parking_lot::{Mutex, RwLock};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Globally unique runtime ids, used to key the thread-local slot map.
static NEXT_RUNTIME_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread map: runtime id → this thread's slot in that runtime.
    static THREAD_SLOTS: RefCell<HashMap<u64, Arc<ThreadSlot>>> =
        RefCell::new(HashMap::new());
}

/// One stack frame on a thread's shadow stack.
#[derive(Debug, Clone, Copy)]
struct Frame {
    id: FunctionId,
    /// Clock reading when this frame last became the running frame.
    resume_ns: u64,
    /// Clock reading when the frame was entered (for total-time arcs).
    entry_ns: u64,
}

/// Per-thread profiling state.
#[derive(Debug, Default)]
struct ThreadData {
    stack: Vec<Frame>,
    flat: FlatProfile,
    callgraph: CallGraphProfile,
    /// Deepest shadow stack this thread has seen. Kept thread-local (no
    /// shared atomic on the hot `enter` path) and aggregated into the
    /// `runtime.stack.depth_hwm` gauge at snapshot time.
    max_depth: usize,
}

#[derive(Debug, Default)]
struct ThreadSlot {
    data: Mutex<ThreadData>,
}

#[derive(Debug)]
struct RuntimeInner {
    id: u64,
    clock: Clock,
    functions: RwLock<FunctionTable>,
    /// All thread slots ever registered; slots outlive their threads so a
    /// finished thread's counters stay in subsequent snapshots (as they do
    /// in a real cumulative gmon profile).
    threads: Mutex<Vec<Arc<ThreadSlot>>>,
    enabled: AtomicBool,
}

/// The profiling runtime. Cheap to clone; clones share all state.
///
/// See the crate docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct ProfilerRuntime {
    inner: Arc<RuntimeInner>,
}

impl ProfilerRuntime {
    /// Create a runtime over a wall clock (real time).
    pub fn new() -> ProfilerRuntime {
        Self::with_clock(Clock::wall())
    }

    /// Create a runtime over the given clock.
    pub fn with_clock(clock: Clock) -> ProfilerRuntime {
        ProfilerRuntime {
            inner: Arc::new(RuntimeInner {
                id: NEXT_RUNTIME_ID.fetch_add(1, Ordering::Relaxed),
                clock,
                functions: RwLock::new(FunctionTable::new()),
                threads: Mutex::new(Vec::new()),
                enabled: AtomicBool::new(true),
            }),
        }
    }

    /// The clock this runtime reads.
    pub fn clock(&self) -> &Clock {
        &self.inner.clock
    }

    /// Disable profiling: [`ProfilerRuntime::enter`] becomes a near-free
    /// no-op (a single atomic load). This is the "uninstrumented" baseline
    /// used by the Table I overhead experiments.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Release);
    }

    /// Whether profiling is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Acquire)
    }

    /// Register a function by name, returning its id. Idempotent.
    pub fn register_function(&self, name: impl Into<String>) -> FunctionId {
        self.inner.functions.write().register(name)
    }

    /// Register a function with source location metadata. Idempotent.
    pub fn register_function_info(&self, info: FunctionInfo) -> FunctionId {
        self.inner.functions.write().register_info(info)
    }

    /// Look up a registered function id by name.
    pub fn function_id(&self, name: &str) -> Option<FunctionId> {
        self.inner.functions.read().id_of(name)
    }

    /// A clone of the current function table.
    pub fn function_table(&self) -> FunctionTable {
        self.inner.functions.read().clone()
    }

    /// Enter `id` on the calling thread, returning a guard that exits the
    /// function when dropped. Guards must drop in LIFO order (guaranteed by
    /// normal scoping).
    #[inline]
    pub fn enter(&self, id: FunctionId) -> ScopeGuard<'_> {
        if !self.is_enabled() {
            return ScopeGuard {
                rt: self,
                id,
                armed: false,
            };
        }
        let now = self.inner.clock.now_ns();
        self.with_thread_data(|data| {
            // Pause the caller: charge its running span.
            if let Some(top) = data.stack.last() {
                let span = now.saturating_sub(top.resume_ns);
                data.flat.record_self_time(top.id, span);
                let caller = top.id;
                data.callgraph.record_arc(caller, id);
            }
            data.flat.record_calls(id, 1); // counted at entry (mcount)
            data.stack.push(Frame {
                id,
                resume_ns: now,
                entry_ns: now,
            });
            data.max_depth = data.max_depth.max(data.stack.len());
        });
        ScopeGuard {
            rt: self,
            id,
            armed: true,
        }
    }

    /// Run `f` inside an entered scope for `id` (convenience wrapper).
    #[inline]
    pub fn scope<T>(&self, id: FunctionId, f: impl FnOnce() -> T) -> T {
        let _g = self.enter(id);
        f()
    }

    fn exit(&self, id: FunctionId) {
        let now = self.inner.clock.now_ns();
        self.with_thread_data(|data| {
            let frame = match data.stack.pop() {
                Some(f) => f,
                None => return, // unbalanced exit; tolerate
            };
            debug_assert_eq!(frame.id, id, "scope guards must drop in LIFO order");
            let span = now.saturating_sub(frame.resume_ns);
            data.flat.record_self_time(frame.id, span);
            let total = now.saturating_sub(frame.entry_ns);
            if let Some(parent) = data.stack.last_mut() {
                // Resume the caller's running span.
                parent.resume_ns = now;
                let parent_id = parent.id;
                data.flat.record_child_time(parent_id, total);
                data.callgraph.record_arc_time(parent_id, frame.id, total);
            }
        });
    }

    /// Take a cumulative snapshot across all threads.
    ///
    /// Flushes the partial self time of every thread's running frame first
    /// (the PC-sampling equivalence), then merges all per-thread profiles.
    /// `sample_index` is stamped into the snapshot by the caller (the
    /// collector assigns 0, 1, 2, ... per interval).
    pub fn snapshot(&self, sample_index: u64) -> ProfileSnapshot {
        let now = self.inner.clock.now_ns();
        let mut flat = FlatProfile::new();
        let mut callgraph = CallGraphProfile::new();
        let mut max_depth = 0usize;
        let threads = self.inner.threads.lock();
        for slot in threads.iter() {
            let mut data = slot.data.lock();
            // Flush the running frame's partial self time.
            if let Some(top) = data.stack.last_mut() {
                let span = now.saturating_sub(top.resume_ns);
                top.resume_ns = now;
                let id = top.id;
                data.flat.record_self_time(id, span);
            }
            flat.merge(&data.flat);
            callgraph.merge(&data.callgraph);
            max_depth = max_depth.max(data.max_depth);
        }
        drop(threads);
        incprof_obs::counter(incprof_obs::names::RUNTIME_SNAPSHOT_COUNT).inc();
        incprof_obs::gauge(incprof_obs::names::RUNTIME_STACK_DEPTH_HWM)
            .record_max(max_depth as u64);
        ProfileSnapshot {
            sample_index,
            timestamp_ns: now,
            flat,
            callgraph,
        }
    }

    /// The set of functions currently on any thread's shadow stack
    /// (innermost last per thread), for diagnostics.
    pub fn active_functions(&self) -> Vec<FunctionId> {
        let threads = self.inner.threads.lock();
        let mut out = Vec::new();
        for slot in threads.iter() {
            let data = slot.data.lock();
            out.extend(data.stack.iter().map(|f| f.id));
        }
        out
    }

    fn with_thread_data<T>(&self, f: impl FnOnce(&mut ThreadData) -> T) -> T {
        let slot = self.thread_slot();
        let mut data = slot.data.lock();
        f(&mut data)
    }

    fn thread_slot(&self) -> Arc<ThreadSlot> {
        THREAD_SLOTS.with(|slots| {
            let mut slots = slots.borrow_mut();
            if let Some(slot) = slots.get(&self.inner.id) {
                return Arc::clone(slot);
            }
            let slot = Arc::new(ThreadSlot::default());
            self.inner.threads.lock().push(Arc::clone(&slot));
            slots.insert(self.inner.id, Arc::clone(&slot));
            slot
        })
    }
}

impl Default for ProfilerRuntime {
    fn default() -> Self {
        Self::new()
    }
}

/// RAII guard for an entered function scope; exits the function on drop.
#[must_use = "dropping the guard immediately exits the scope"]
#[derive(Debug)]
pub struct ScopeGuard<'rt> {
    rt: &'rt ProfilerRuntime,
    id: FunctionId,
    armed: bool,
}

impl Drop for ScopeGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.rt.exit(self.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vrt() -> ProfilerRuntime {
        ProfilerRuntime::with_clock(Clock::virtual_clock())
    }

    #[test]
    fn single_call_attribution() {
        let rt = vrt();
        let f = rt.register_function("f");
        {
            let _g = rt.enter(f);
            rt.clock().advance(100);
        }
        let snap = rt.snapshot(0);
        assert_eq!(snap.flat.get(f).calls, 1);
        assert_eq!(snap.flat.get(f).self_time, 100);
        assert_eq!(snap.flat.get(f).child_time, 0);
    }

    #[test]
    fn nested_calls_split_self_and_child_time() {
        let rt = vrt();
        let a = rt.register_function("a");
        let b = rt.register_function("b");
        {
            let _ga = rt.enter(a);
            rt.clock().advance(10);
            {
                let _gb = rt.enter(b);
                rt.clock().advance(5);
            }
            rt.clock().advance(3);
        }
        let snap = rt.snapshot(0);
        assert_eq!(snap.flat.get(a).self_time, 13);
        assert_eq!(snap.flat.get(a).child_time, 5);
        assert_eq!(snap.flat.get(b).self_time, 5);
        assert_eq!(snap.callgraph.get(a, b).count, 1);
        assert_eq!(snap.callgraph.get(a, b).child_time, 5);
    }

    #[test]
    fn calls_are_counted_at_entry() {
        let rt = vrt();
        let f = rt.register_function("long_running");
        let _g = rt.enter(f);
        rt.clock().advance(50);
        // Snapshot taken while the function is still running must already
        // show the call (mcount semantics) and the partial self time
        // (PC-sampling semantics).
        let snap = rt.snapshot(0);
        assert_eq!(snap.flat.get(f).calls, 1);
        assert_eq!(snap.flat.get(f).self_time, 50);
    }

    #[test]
    fn self_time_accrues_across_snapshots_for_long_calls() {
        // This is the property Algorithm 1's "loop" designation rests on: a
        // long-running function shows nonzero self time in intervals where
        // its call count delta is zero.
        let rt = vrt();
        let f = rt.register_function("validate_bfs_result");
        let _g = rt.enter(f);
        rt.clock().advance(100);
        let s1 = rt.snapshot(1);
        rt.clock().advance(200);
        let s2 = rt.snapshot(2);
        let delta = s2.flat.delta(&s1.flat).unwrap();
        assert_eq!(delta.get(f).calls, 0, "no new call in second interval");
        assert_eq!(delta.get(f).self_time, 200, "yet self time accrued");
    }

    #[test]
    fn caller_clock_pauses_while_callee_runs() {
        let rt = vrt();
        let a = rt.register_function("a");
        let b = rt.register_function("b");
        let _ga = rt.enter(a);
        rt.clock().advance(7);
        let gb = rt.enter(b);
        rt.clock().advance(100);
        // Mid-callee snapshot: a has 7, b has 100 so far.
        let snap = rt.snapshot(0);
        assert_eq!(snap.flat.get(a).self_time, 7);
        assert_eq!(snap.flat.get(b).self_time, 100);
        drop(gb);
        rt.clock().advance(1);
        let snap2 = rt.snapshot(1);
        assert_eq!(snap2.flat.get(a).self_time, 8);
        assert_eq!(snap2.flat.get(b).self_time, 100);
    }

    #[test]
    fn recursion_is_supported() {
        let rt = vrt();
        let f = rt.register_function("fib");
        fn fib(rt: &ProfilerRuntime, f: FunctionId, n: u32) {
            let _g = rt.enter(f);
            rt.clock().advance(1);
            if n > 0 {
                fib(rt, f, n - 1);
            }
        }
        fib(&rt, f, 4);
        let snap = rt.snapshot(0);
        assert_eq!(snap.flat.get(f).calls, 5);
        assert_eq!(snap.flat.get(f).self_time, 5);
        assert_eq!(snap.callgraph.get(f, f).count, 4);
    }

    #[test]
    fn disabled_runtime_records_nothing() {
        let rt = vrt();
        let f = rt.register_function("f");
        rt.set_enabled(false);
        {
            let _g = rt.enter(f);
            rt.clock().advance(10);
        }
        let snap = rt.snapshot(0);
        assert!(snap.flat.is_empty());
        rt.set_enabled(true);
        {
            let _g = rt.enter(f);
            rt.clock().advance(10);
        }
        assert_eq!(rt.snapshot(1).flat.get(f).calls, 1);
    }

    #[test]
    fn multiple_threads_merge_into_one_snapshot() {
        let rt = vrt();
        let f = rt.register_function("worker");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rt = rt.clone();
                s.spawn(move || {
                    let f = rt.function_id("worker").unwrap();
                    for _ in 0..10 {
                        let _g = rt.enter(f);
                        rt.clock().advance(1);
                    }
                });
            }
        });
        let snap = rt.snapshot(0);
        assert_eq!(snap.flat.get(f).calls, 40);
        // Each of the 40 calls saw at least its own 1ns advance; interleaved
        // advances from other threads can only add observed time.
        assert!(snap.flat.get(f).self_time >= 40);
    }

    #[test]
    fn finished_threads_stay_in_cumulative_snapshots() {
        let rt = vrt();
        rt.register_function("ephemeral");
        {
            let rt2 = rt.clone();
            std::thread::spawn(move || {
                let f = rt2.function_id("ephemeral").unwrap();
                let _g = rt2.enter(f);
                rt2.clock().advance(5);
            })
            .join()
            .unwrap();
        }
        let f = rt.function_id("ephemeral").unwrap();
        let snap = rt.snapshot(0);
        assert_eq!(snap.flat.get(f).calls, 1);
        assert_eq!(snap.flat.get(f).self_time, 5);
    }

    #[test]
    fn two_runtimes_do_not_interfere() {
        let rt1 = vrt();
        let rt2 = vrt();
        let f1 = rt1.register_function("f");
        let f2 = rt2.register_function("f");
        {
            let _g = rt1.enter(f1);
            rt1.clock().advance(9);
        }
        assert_eq!(rt1.snapshot(0).flat.get(f1).self_time, 9);
        assert!(rt2.snapshot(0).flat.get(f2).is_zero());
    }

    #[test]
    fn scope_helper_runs_closure() {
        let rt = vrt();
        let f = rt.register_function("f");
        let val = rt.scope(f, || {
            rt.clock().advance(3);
            42
        });
        assert_eq!(val, 42);
        assert_eq!(rt.snapshot(0).flat.get(f).self_time, 3);
    }

    #[test]
    fn snapshot_is_cumulative_and_monotonic() {
        let rt = vrt();
        let f = rt.register_function("f");
        for _ in 0..3 {
            let _g = rt.enter(f);
            rt.clock().advance(10);
        }
        let s1 = rt.snapshot(0);
        for _ in 0..2 {
            let _g = rt.enter(f);
            rt.clock().advance(10);
        }
        let s2 = rt.snapshot(1);
        let d = s2.flat.delta(&s1.flat).unwrap();
        assert_eq!(d.get(f).calls, 2);
        assert_eq!(d.get(f).self_time, 20);
    }

    #[test]
    fn snapshot_publishes_stack_depth_high_water_mark() {
        let rt = vrt();
        let a = rt.register_function("a");
        let b = rt.register_function("b");
        let c = rt.register_function("c");
        {
            let _ga = rt.enter(a);
            let _gb = rt.enter(b);
            let _gc = rt.enter(c);
        }
        rt.snapshot(0);
        // The gauge is global and record_max; other tests may have pushed
        // it higher, but never lower than this runtime's depth of 3.
        assert!(incprof_obs::gauge(incprof_obs::names::RUNTIME_STACK_DEPTH_HWM).get() >= 3);
        assert!(incprof_obs::counter(incprof_obs::names::RUNTIME_SNAPSHOT_COUNT).get() >= 1);
    }

    #[test]
    fn active_functions_reports_stack() {
        let rt = vrt();
        let a = rt.register_function("a");
        let b = rt.register_function("b");
        let _ga = rt.enter(a);
        let _gb = rt.enter(b);
        let active = rt.active_functions();
        assert_eq!(active, vec![a, b]);
    }
}
