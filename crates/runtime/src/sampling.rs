//! Quantization of exact profiles onto a gprof sampling grid.
//!
//! Our shadow-stack runtime measures self time exactly; real gprof measures
//! it by PC sampling at (typically) 100 Hz, i.e. with 10 ms resolution —
//! "Each sample counts as 0.01 seconds." The paper lists sampling and
//! sampling rate among gprof's known limitations (§IV). This module lets
//! experiments *reintroduce* that quantization, so the sensitivity of phase
//! detection to sampling resolution can be studied (one of our ablations).

use incprof_profile::{FlatProfile, FunctionStats, ProfileSnapshot};

/// gprof's default sampling period: 10 ms (100 Hz).
pub const GPROF_DEFAULT_PERIOD_NS: u64 = 10_000_000;

/// Quantize every self time in `flat` to whole multiples of `period_ns`,
/// rounding to nearest (ties away from zero), which is the expected value
/// of a Bernoulli PC sampler. Call counts are exact in gprof (they come
/// from `mcount`, not sampling) and are left untouched.
pub fn quantize_flat(flat: &FlatProfile, period_ns: u64) -> FlatProfile {
    assert!(period_ns > 0, "sampling period must be positive");
    flat.iter()
        .map(|(id, s)| {
            let buckets = (s.self_time + period_ns / 2) / period_ns;
            let child_buckets = (s.child_time + period_ns / 2) / period_ns;
            (
                id,
                FunctionStats {
                    self_time: buckets * period_ns,
                    calls: s.calls,
                    child_time: child_buckets * period_ns,
                },
            )
        })
        .collect()
}

/// Quantize a whole snapshot (flat profile only; arcs carry exact counts).
pub fn quantize_snapshot(snap: &ProfileSnapshot, period_ns: u64) -> ProfileSnapshot {
    ProfileSnapshot {
        sample_index: snap.sample_index,
        timestamp_ns: snap.timestamp_ns,
        flat: quantize_flat(&snap.flat, period_ns),
        callgraph: snap.callgraph.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incprof_profile::FunctionId;

    fn fid(n: u32) -> FunctionId {
        FunctionId(n)
    }

    #[test]
    fn rounds_to_nearest_bucket() {
        let mut p = FlatProfile::new();
        p.set(
            fid(0),
            FunctionStats {
                self_time: 14_999_999,
                calls: 3,
                child_time: 0,
            },
        );
        p.set(
            fid(1),
            FunctionStats {
                self_time: 15_000_000,
                calls: 0,
                child_time: 0,
            },
        );
        p.set(
            fid(2),
            FunctionStats {
                self_time: 4_999_999,
                calls: 9,
                child_time: 0,
            },
        );
        let q = quantize_flat(&p, GPROF_DEFAULT_PERIOD_NS);
        assert_eq!(q.get(fid(0)).self_time, 10_000_000); // 1.4999 -> 1 bucket
        assert_eq!(q.get(fid(1)).self_time, 20_000_000); // 1.5 -> 2 buckets
        assert_eq!(q.get(fid(2)).self_time, 0); // below half a bucket -> 0
    }

    #[test]
    fn calls_are_preserved_exactly() {
        let mut p = FlatProfile::new();
        p.set(
            fid(0),
            FunctionStats {
                self_time: 123,
                calls: 456,
                child_time: 789,
            },
        );
        let q = quantize_flat(&p, 1_000);
        assert_eq!(q.get(fid(0)).calls, 456);
    }

    #[test]
    fn period_of_one_ns_is_identity() {
        let mut p = FlatProfile::new();
        p.set(
            fid(0),
            FunctionStats {
                self_time: 12345,
                calls: 1,
                child_time: 77,
            },
        );
        let q = quantize_flat(&p, 1);
        assert_eq!(q.get(fid(0)), p.get(fid(0)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_panics() {
        let _ = quantize_flat(&FlatProfile::new(), 0);
    }

    #[test]
    fn snapshot_quantization_preserves_metadata() {
        let mut snap = ProfileSnapshot {
            sample_index: 5,
            timestamp_ns: 999,
            ..Default::default()
        };
        snap.flat.set(
            fid(0),
            FunctionStats {
                self_time: 9_000_000,
                calls: 2,
                child_time: 0,
            },
        );
        snap.callgraph.record_arc(fid(0), fid(0));
        let q = quantize_snapshot(&snap, GPROF_DEFAULT_PERIOD_NS);
        assert_eq!(q.sample_index, 5);
        assert_eq!(q.timestamp_ns, 999);
        assert_eq!(q.flat.get(fid(0)).self_time, 10_000_000);
        assert_eq!(q.callgraph.get(fid(0), fid(0)).count, 1);
    }
}
