//! Wall-clock and virtual-clock time sources.
//!
//! Everything in the profiling stack reads time through [`Clock`]. In wall
//! mode the clock wraps a process-start [`Instant`]; in virtual mode it is
//! an atomic counter advanced explicitly by the workload, which makes
//! entire profiling-and-phase-detection experiments bit-for-bit
//! reproducible (the simulated stand-in for the paper's 5–10 minute
//! production runs).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shareable nanosecond clock.
///
/// Cheap to clone (internally `Arc`ed). All clones observe the same time.
#[derive(Debug, Clone)]
pub struct Clock {
    inner: Arc<ClockImpl>,
}

#[derive(Debug)]
enum ClockImpl {
    Wall(Instant),
    Virtual(AtomicU64),
}

impl Clock {
    /// Real time, measured from the moment this clock was created.
    pub fn wall() -> Clock {
        Clock {
            inner: Arc::new(ClockImpl::Wall(Instant::now())),
        }
    }

    /// Deterministic simulated time starting at zero. Advance with
    /// [`Clock::advance`].
    pub fn virtual_clock() -> Clock {
        Clock {
            inner: Arc::new(ClockImpl::Virtual(AtomicU64::new(0))),
        }
    }

    /// Current reading in nanoseconds.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match &*self.inner {
            ClockImpl::Wall(start) => start.elapsed().as_nanos() as u64,
            ClockImpl::Virtual(t) => t.load(Ordering::Acquire),
        }
    }

    /// Advance a virtual clock by `ns`, returning the new reading.
    ///
    /// On a wall clock this is a no-op (you cannot advance real time) and
    /// returns the current reading; workloads can therefore be written once
    /// and run under either clock.
    #[inline]
    pub fn advance(&self, ns: u64) -> u64 {
        match &*self.inner {
            ClockImpl::Wall(start) => start.elapsed().as_nanos() as u64,
            ClockImpl::Virtual(t) => t.fetch_add(ns, Ordering::AcqRel) + ns,
        }
    }

    /// Whether this is a virtual (deterministic) clock.
    pub fn is_virtual(&self) -> bool {
        matches!(&*self.inner, ClockImpl::Virtual(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_starts_at_zero_and_advances() {
        let c = Clock::virtual_clock();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.advance(100), 100);
        assert_eq!(c.now_ns(), 100);
        assert_eq!(c.advance(50), 150);
        assert_eq!(c.now_ns(), 150);
    }

    #[test]
    fn clones_share_time() {
        let c = Clock::virtual_clock();
        let c2 = c.clone();
        c.advance(42);
        assert_eq!(c2.now_ns(), 42);
    }

    #[test]
    fn wall_clock_is_monotonic_nondecreasing() {
        let c = Clock::wall();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn advance_on_wall_clock_is_noop() {
        let c = Clock::wall();
        let before = c.now_ns();
        let returned = c.advance(1_000_000_000_000); // "advance" 1000 s
                                                     // Reading must reflect real elapsed time, not the fake advance.
        assert!(returned < before + 1_000_000_000_000);
        assert!(!c.is_virtual());
    }

    #[test]
    fn mode_flags() {
        assert!(Clock::virtual_clock().is_virtual());
        assert!(!Clock::wall().is_virtual());
    }

    #[test]
    fn concurrent_advances_all_land() {
        let c = Clock::virtual_clock();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.advance(1);
                    }
                });
            }
        });
        assert_eq!(c.now_ns(), 4000);
    }
}
