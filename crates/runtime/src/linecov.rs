//! Line-level (gcov-style) coverage counters.
//!
//! The paper's data collection is function-level gprof, but footnote 1
//! records "proof-of-concept implementations for both the gcov and
//! JaCoCo tools", and §IV notes gprof's legacy line-level mode "now
//! embodied in further development in the gcov tool". This module is
//! that variant: per-source-line hit counters cheap enough to leave on
//! (one relaxed atomic increment per hit), snapshotted cumulatively per
//! interval exactly like the function profiles, so the same
//! delta-cluster-select pipeline can run at line granularity.
//!
//! Line hits are *counts*, not times; a line-level IncProf clusters
//! per-interval hit vectors. [`LineSnapshot::to_flat_profile`] bridges
//! into the existing pipeline by presenting each line as a pseudo
//! function (`file:line`) whose "self time" is its hit count, letting
//! `incprof-core` run unchanged.

use incprof_profile::{FlatProfile, FunctionId, FunctionStats, FunctionTable};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of a registered source line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineId(pub u32);

#[derive(Debug)]
struct LineInfo {
    file: String,
    line: u32,
}

#[derive(Debug, Default)]
struct Registry {
    lines: Vec<LineInfo>,
}

/// Process-wide line-coverage counters. Cheap to clone; clones share
/// counters.
#[derive(Debug, Clone, Default)]
pub struct LineCoverage {
    registry: Arc<RwLock<Registry>>,
    counters: Arc<RwLock<Vec<Arc<AtomicU64>>>>,
}

impl LineCoverage {
    /// Create an empty coverage map.
    pub fn new() -> LineCoverage {
        Self::default()
    }

    /// Register a `(file, line)` site, returning its id. Idempotent per
    /// distinct pair.
    pub fn register_line(&self, file: impl Into<String>, line: u32) -> LineId {
        let file = file.into();
        {
            let reg = self.registry.read();
            if let Some(pos) = reg
                .lines
                .iter()
                .position(|l| l.file == file && l.line == line)
            {
                return LineId(pos as u32);
            }
        }
        let mut reg = self.registry.write();
        // Double-check under the write lock.
        if let Some(pos) = reg
            .lines
            .iter()
            .position(|l| l.file == file && l.line == line)
        {
            return LineId(pos as u32);
        }
        reg.lines.push(LineInfo { file, line });
        self.counters.write().push(Arc::new(AtomicU64::new(0)));
        LineId((reg.lines.len() - 1) as u32)
    }

    /// A cached handle to one line's counter, for hot loops (avoids the
    /// registry lock per hit).
    pub fn counter(&self, id: LineId) -> LineCounter {
        LineCounter {
            counter: Arc::clone(&self.counters.read()[id.0 as usize]),
        }
    }

    /// Record one execution of `id`.
    #[inline]
    pub fn hit(&self, id: LineId) {
        self.counters.read()[id.0 as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` executions of `id`.
    #[inline]
    pub fn hit_n(&self, id: LineId, n: u64) {
        self.counters.read()[id.0 as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Number of registered lines.
    pub fn len(&self) -> usize {
        self.registry.read().lines.len()
    }

    /// Whether no lines are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `file:line` label of a registered line.
    pub fn label(&self, id: LineId) -> String {
        let reg = self.registry.read();
        let info = &reg.lines[id.0 as usize];
        format!("{}:{}", info.file, info.line)
    }

    /// Take a cumulative snapshot of all counters (the gcov analogue of
    /// the per-interval gmon dump).
    pub fn snapshot(&self) -> LineSnapshot {
        let counters = self.counters.read();
        LineSnapshot {
            hits: counters.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// Cached counter handle for one line.
#[derive(Debug, Clone)]
pub struct LineCounter {
    counter: Arc<AtomicU64>,
}

impl LineCounter {
    /// Record one execution.
    #[inline]
    pub fn hit(&self) {
        self.counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` executions.
    #[inline]
    pub fn hit_n(&self, n: u64) {
        self.counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// A cumulative line-hit snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LineSnapshot {
    /// Cumulative hit count per registered line, indexed by [`LineId`].
    pub hits: Vec<u64>,
}

impl LineSnapshot {
    /// Per-interval delta (`self - earlier`). Later snapshots may know
    /// more lines; missing earlier entries count as zero.
    ///
    /// # Panics
    /// Panics if any counter regressed.
    pub fn delta(&self, earlier: &LineSnapshot) -> LineSnapshot {
        assert!(
            self.hits.len() >= earlier.hits.len(),
            "snapshots out of order"
        );
        LineSnapshot {
            hits: self
                .hits
                .iter()
                .enumerate()
                .map(|(i, &h)| {
                    let prev = earlier.hits.get(i).copied().unwrap_or(0);
                    // lint: allow(P01, hit counters are monotone; a regression is memory corruption and must abort loudly)
                    h.checked_sub(prev).expect("line counter regressed")
                })
                .collect(),
        }
    }

    /// Bridge into the function-level pipeline: each line becomes a
    /// pseudo function named `file:line` whose self time is its hit
    /// count (1 hit = 1 ns) and whose call count equals the hits. Also
    /// registers the pseudo functions into `table`.
    pub fn to_flat_profile(&self, cov: &LineCoverage, table: &mut FunctionTable) -> FlatProfile {
        let mut flat = FlatProfile::new();
        for (i, &h) in self.hits.iter().enumerate() {
            if h == 0 {
                continue;
            }
            let id: FunctionId = table.register(cov.label(LineId(i as u32)));
            flat.set(
                id,
                FunctionStats {
                    self_time: h,
                    calls: h,
                    child_time: 0,
                },
            );
        }
        flat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_per_site() {
        let cov = LineCoverage::new();
        let a = cov.register_line("bfs.c", 10);
        let b = cov.register_line("bfs.c", 10);
        let c = cov.register_line("bfs.c", 11);
        let d = cov.register_line("other.c", 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(c, d);
        assert_eq!(cov.len(), 3);
        assert_eq!(cov.label(a), "bfs.c:10");
    }

    #[test]
    fn hits_accumulate_and_snapshot() {
        let cov = LineCoverage::new();
        let a = cov.register_line("f.c", 1);
        let b = cov.register_line("f.c", 2);
        cov.hit(a);
        cov.hit_n(b, 5);
        cov.hit(a);
        let snap = cov.snapshot();
        assert_eq!(snap.hits, vec![2, 5]);
    }

    #[test]
    fn cached_counter_matches_direct_hits() {
        let cov = LineCoverage::new();
        let a = cov.register_line("f.c", 1);
        let counter = cov.counter(a);
        for _ in 0..100 {
            counter.hit();
        }
        counter.hit_n(11);
        assert_eq!(cov.snapshot().hits, vec![111]);
    }

    #[test]
    fn deltas_subtract_and_handle_new_lines() {
        let cov = LineCoverage::new();
        let a = cov.register_line("f.c", 1);
        cov.hit_n(a, 10);
        let s1 = cov.snapshot();
        let b = cov.register_line("f.c", 2); // appears later
        cov.hit_n(a, 3);
        cov.hit_n(b, 7);
        let s2 = cov.snapshot();
        let d = s2.delta(&s1);
        assert_eq!(d.hits, vec![3, 7]);
    }

    #[test]
    #[should_panic(expected = "regressed")]
    fn regression_panics() {
        let a = LineSnapshot { hits: vec![5] };
        let b = LineSnapshot { hits: vec![3] };
        let _ = b.delta(&a);
    }

    #[test]
    fn concurrent_hits_are_all_counted() {
        let cov = LineCoverage::new();
        let a = cov.register_line("f.c", 1);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let counter = cov.counter(a);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        counter.hit();
                    }
                });
            }
        });
        assert_eq!(cov.snapshot().hits, vec![40_000]);
    }

    #[test]
    fn line_phases_detectable_via_flat_bridge() {
        // Simulate a 2-phase run at line granularity and push it through
        // the standard function-level pipeline.
        use incprof_collect::IntervalMatrix;
        use incprof_core::PhaseDetector;

        let cov = LineCoverage::new();
        let init_line = cov.register_line("app.c", 10);
        let solve_line = cov.register_line("app.c", 50);

        let mut table = FunctionTable::new();
        let mut intervals = Vec::new();
        let mut prev = cov.snapshot();
        for i in 0..20 {
            if i < 8 {
                cov.hit_n(init_line, 1000);
            } else {
                cov.hit_n(solve_line, 1000);
            }
            let snap = cov.snapshot();
            intervals.push(snap.delta(&prev).to_flat_profile(&cov, &mut table));
            prev = snap;
        }
        let matrix = IntervalMatrix::from_interval_profiles(&intervals);
        let analysis = PhaseDetector::new().detect(&matrix).unwrap();
        assert_eq!(analysis.k, 2);
        let names: Vec<&str> = analysis
            .phases
            .iter()
            .flat_map(|p| p.sites.iter().map(|s| table.name(s.function)))
            .collect();
        assert!(names.contains(&"app.c:10"));
        assert!(names.contains(&"app.c:50"));
    }
}
