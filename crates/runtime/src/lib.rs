//! # incprof-runtime
//!
//! The instrumentation runtime under IncProf — the moral equivalent of
//! compiling with `-pg` and linking glibc's gprof support.
//!
//! Real gprof combines two mechanisms (paper §IV): *function entry
//! instrumentation* (`mcount`, giving call counts and call-graph arcs) and
//! *program-counter sampling* (giving self time that accrues continuously,
//! even in the middle of a single long call). Reproducing both faithfully
//! matters for the IncProf analysis: the body/loop instrumentation-type
//! decision of Algorithm 1 rests on a function showing self time in an
//! interval with **zero** calls, which only happens because PC sampling
//! keeps charging a long-running function between snapshots.
//!
//! This crate therefore implements:
//!
//! * [`Clock`] — a nanosecond clock with two modes: [`Clock::wall`] (real
//!   `Instant`-based time, used for overhead measurements) and
//!   [`Clock::virtual_clock`] (deterministic simulated time advanced
//!   explicitly by the workload, used for reproducible experiments).
//! * [`ProfilerRuntime`] — per-thread shadow call stacks with precise
//!   self/child time attribution. Call counts are recorded at **entry**
//!   (like `mcount`); self time is charged to the currently-running frame
//!   and *flushed at snapshot time*, so cumulative snapshots see partial
//!   time of still-executing functions (like PC sampling).
//! * [`ScopeGuard`] — RAII guard produced by [`ProfilerRuntime::enter`];
//!   dropping it exits the function.
//! * [`sampling`] — optional quantization of exact self times onto a gprof
//!   sampling grid (default 10 ms), for ablations on sampling resolution.
//!
//! ```
//! use incprof_runtime::{Clock, ProfilerRuntime};
//!
//! let rt = ProfilerRuntime::with_clock(Clock::virtual_clock());
//! let f = rt.register_function("cg_solve");
//! {
//!     let _g = rt.enter(f);
//!     rt.clock().advance(1_000_000); // simulate 1 ms of work
//! }
//! let snap = rt.snapshot(0);
//! assert_eq!(snap.flat.get(f).calls, 1);
//! assert_eq!(snap.flat.get(f).self_time, 1_000_000);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod linecov;
pub mod profiler;
pub mod sampling;

pub use clock::Clock;
pub use linecov::{LineCounter, LineCoverage, LineId, LineSnapshot};
pub use profiler::{ProfilerRuntime, ScopeGuard};
