//! The store root: one directory per session, recovery scanning, and
//! per-session handles combining log, checkpoint, and retention.
//!
//! Directory layout under the store root:
//!
//! ```text
//! <root>/
//!   <session_id>/            one directory per session (decimal id)
//!     log.iprf               append-only snapshot log (see crate::log)
//!     checkpoint.iprf        latest analysis checkpoint, one Checkpoint
//!                            frame, replaced atomically (tmp + rename)
//! ```
//!
//! The checkpoint file holds exactly one [`FrameType::Checkpoint`]
//! frame whose payload is an opaque `incprof_core::AnalysisCache` state
//! blob (see `AnalysisCache::encode_state`). It is advisory: rehydration
//! validates it against the replayed log and silently falls back to a
//! cold replay when it does not match, so deleting it is always safe.

use crate::frame::{Frame, FrameType, DEFAULT_MAX_PAYLOAD};
use crate::log::{LogReplay, SnapshotLog};
use crate::retention::RetentionPolicy;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// What [`Store::open_session`] recovers for one session: its durable
/// handle, the replayed log (torn-tail rule already applied), and the
/// checkpoint state blob when a valid one exists on disk.
pub type RecoveredSession = (SessionStore, LogReplay, Option<Vec<u8>>);

/// Name of the snapshot log file inside a session directory.
pub const LOG_FILE: &str = "log.iprf";
/// Name of the checkpoint file inside a session directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.iprf";

/// A store root directory plus the policy applied to every session log.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
    retention: RetentionPolicy,
    checkpoint_every: u64,
}

impl Store {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(
        root: &Path,
        retention: RetentionPolicy,
        checkpoint_every: u64,
    ) -> io::Result<Store> {
        std::fs::create_dir_all(root)?;
        Ok(Store {
            root: root.to_path_buf(),
            retention,
            checkpoint_every: checkpoint_every.max(1),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Session ids present on disk, ascending. Non-numeric directory
    /// names are ignored (they are not ours).
    pub fn scan(&self) -> io::Result<Vec<u64>> {
        let mut ids = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            if let Some(id) = entry.file_name().to_str().and_then(|s| s.parse().ok()) {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    /// Whether session `id` has on-disk state.
    pub fn has_session(&self, id: u64) -> bool {
        self.session_dir(id).join(LOG_FILE).exists()
    }

    /// Create a fresh session directory and empty log for `id`.
    pub fn create_session(&self, id: u64) -> io::Result<SessionStore> {
        let dir = self.session_dir(id);
        std::fs::create_dir_all(&dir)?;
        let log = SnapshotLog::create(&dir.join(LOG_FILE), id)?;
        Ok(self.session_store(id, log))
    }

    /// Open session `id`'s on-disk state, replaying its log (with the
    /// torn-tail rule) and loading its checkpoint blob if one exists.
    /// Returns `None` when the session has no state on disk.
    pub fn open_session(&self, id: u64) -> io::Result<Option<RecoveredSession>> {
        let dir = self.session_dir(id);
        if !dir.join(LOG_FILE).exists() {
            return Ok(None);
        }
        let (log, replay) = SnapshotLog::open(&dir.join(LOG_FILE), id)?;
        let checkpoint = read_checkpoint(&dir.join(CHECKPOINT_FILE), id);
        incprof_obs::counter(incprof_obs::names::STORE_REHYDRATIONS).inc();
        Ok(Some((self.session_store(id, log), replay, checkpoint)))
    }

    /// Delete session `id`'s directory (a wire `Close`). Returns whether
    /// anything existed.
    pub fn remove_session(&self, id: u64) -> io::Result<bool> {
        let dir = self.session_dir(id);
        if !dir.exists() {
            return Ok(false);
        }
        std::fs::remove_dir_all(&dir)?;
        Ok(true)
    }

    fn session_dir(&self, id: u64) -> PathBuf {
        self.root.join(id.to_string())
    }

    fn session_store(&self, id: u64, log: SnapshotLog) -> SessionStore {
        SessionStore {
            id,
            dir: self.session_dir(id),
            log,
            retention: self.retention,
            checkpoint_every: self.checkpoint_every,
            appends_since_checkpoint: 0,
        }
    }
}

/// Result of appending a snapshot to a session's durable log.
#[derive(Debug, Default)]
pub struct AppendOutcome {
    /// Encoded record size written, in bytes.
    pub bytes: u64,
    /// Sample indices the retention policy dropped from the log as part
    /// of this append. The caller must drop the same snapshots from its
    /// in-memory series so memory and disk stay in lockstep.
    pub dropped: Vec<u64>,
}

/// One live session's durable state: its log plus checkpoint cadence.
#[derive(Debug)]
pub struct SessionStore {
    id: u64,
    dir: PathBuf,
    log: SnapshotLog,
    retention: RetentionPolicy,
    checkpoint_every: u64,
    appends_since_checkpoint: u64,
}

impl SessionStore {
    /// The session id this store belongs to.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Append one gmon-encoded snapshot and apply the retention policy,
    /// compacting the log when it decides to drop records.
    pub fn append_snapshot(
        &mut self,
        sample_index: u64,
        payload: &[u8],
    ) -> io::Result<AppendOutcome> {
        let bytes = self.log.append(sample_index, payload)?;
        incprof_obs::counter(incprof_obs::names::STORE_APPENDS).inc();
        incprof_obs::counter(incprof_obs::names::STORE_BYTES_APPENDED).add(bytes);
        self.appends_since_checkpoint += 1;
        let drops = self.retention.drops(self.log.records());
        let dropped = self.log.compact(&drops)?;
        Ok(AppendOutcome { bytes, dropped })
    }

    /// Whether enough appends have accumulated since the last checkpoint
    /// for a new one to be worth writing.
    pub fn checkpoint_due(&self) -> bool {
        self.appends_since_checkpoint >= self.checkpoint_every
    }

    /// Atomically replace the session's checkpoint with `state` (an
    /// `incprof_core::AnalysisCache` state blob), wrapped in a single
    /// [`FrameType::Checkpoint`] frame.
    pub fn write_checkpoint(&mut self, state: Vec<u8>) -> io::Result<()> {
        let frame = Frame::with_payload(FrameType::Checkpoint, self.id, state);
        let bytes = frame
            .try_encode(DEFAULT_MAX_PAYLOAD)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let path = self.dir.join(CHECKPOINT_FILE);
        let tmp = self.dir.join("checkpoint.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.flush()?;
        }
        std::fs::rename(&tmp, &path)?;
        self.appends_since_checkpoint = 0;
        incprof_obs::counter(incprof_obs::names::STORE_CHECKPOINTS).inc();
        Ok(())
    }

    /// Total retained log bytes on disk.
    pub fn log_bytes(&self) -> u64 {
        self.log.total_bytes()
    }

    /// Number of retained log records.
    pub fn log_records(&self) -> usize {
        self.log.records().len()
    }
}

/// Read and validate a checkpoint file, returning its state blob. Any
/// problem (missing file, torn write, CRC mismatch, wrong type or
/// session) yields `None`: checkpoints are advisory and rehydration
/// falls back to a cold replay.
fn read_checkpoint(path: &Path, session_id: u64) -> Option<Vec<u8>> {
    let mut bytes = Vec::new();
    File::open(path).ok()?.read_to_end(&mut bytes).ok()?;
    let (frame, consumed) = Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD).ok()?;
    if frame.frame_type != FrameType::Checkpoint
        || frame.session_id != session_id
        || consumed != bytes.len()
    {
        return None;
    }
    Some(frame.payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use incprof_profile::{FlatProfile, FunctionStats, FunctionTable, GmonData};

    fn gmon(idx: u64, self_ns: u64) -> GmonData {
        let mut table = FunctionTable::new();
        let id = table.register("f");
        let mut flat = FlatProfile::new();
        flat.set(
            id,
            FunctionStats {
                self_time: self_ns,
                calls: idx + 1,
                child_time: 0,
            },
        );
        GmonData {
            sample_index: idx,
            timestamp_ns: idx * 1_000_000_000,
            functions: table,
            flat,
            callgraph: Default::default(),
        }
    }

    fn store(name: &str, retention: RetentionPolicy) -> Store {
        let root =
            std::env::temp_dir().join(format!("incprof_store_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        Store::open(&root, retention, 4).unwrap()
    }

    #[test]
    fn scan_finds_created_sessions() {
        let s = store("scan", RetentionPolicy::keep_all());
        assert!(s.scan().unwrap().is_empty());
        s.create_session(2).unwrap();
        s.create_session(7).unwrap();
        assert_eq!(s.scan().unwrap(), vec![2, 7]);
        assert!(s.has_session(2));
        assert!(!s.has_session(3));
    }

    #[test]
    fn create_append_reopen_roundtrip() {
        let s = store("roundtrip", RetentionPolicy::keep_all());
        let mut sess = s.create_session(1).unwrap();
        for i in 0..6 {
            let out = sess
                .append_snapshot(i, &gmon(i, (i + 1) * 50).encode())
                .unwrap();
            assert!(out.dropped.is_empty());
        }
        drop(sess);
        let (sess, replay, checkpoint) = s.open_session(1).unwrap().unwrap();
        assert_eq!(replay.snapshots.len(), 6);
        assert!(checkpoint.is_none(), "no checkpoint written yet");
        assert_eq!(sess.log_records(), 6);
        assert!(s.open_session(99).unwrap().is_none());
    }

    #[test]
    fn checkpoint_roundtrips_and_survives_garbage() {
        let s = store("checkpoint", RetentionPolicy::keep_all());
        let mut sess = s.create_session(5).unwrap();
        sess.append_snapshot(0, &gmon(0, 10).encode()).unwrap();
        sess.write_checkpoint(vec![1, 2, 3, 4]).unwrap();
        let (_, _, checkpoint) = s.open_session(5).unwrap().unwrap();
        assert_eq!(checkpoint, Some(vec![1, 2, 3, 4]));
        // A torn checkpoint is ignored, not fatal.
        let path = s.root().join("5").join(CHECKPOINT_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        let (_, replay, checkpoint) = s.open_session(5).unwrap().unwrap();
        assert!(checkpoint.is_none());
        assert_eq!(replay.snapshots.len(), 1);
    }

    #[test]
    fn checkpoint_cadence() {
        let s = store("cadence", RetentionPolicy::keep_all());
        let mut sess = s.create_session(1).unwrap();
        for i in 0..3 {
            sess.append_snapshot(i, &gmon(i, 10).encode()).unwrap();
        }
        assert!(!sess.checkpoint_due(), "cadence is 4");
        sess.append_snapshot(3, &gmon(3, 10).encode()).unwrap();
        assert!(sess.checkpoint_due());
        sess.write_checkpoint(Vec::new()).unwrap();
        assert!(!sess.checkpoint_due(), "write resets the counter");
    }

    #[test]
    fn retention_trims_on_append_and_reports_drops() {
        let retention = RetentionPolicy {
            hot: 2,
            stride: 4,
            max_bytes: 0,
        };
        let s = store("retention", retention);
        let mut sess = s.create_session(1).unwrap();
        let mut dropped_all = Vec::new();
        for i in 0..8 {
            let out = sess.append_snapshot(i, &gmon(i, 10).encode()).unwrap();
            dropped_all.extend(out.dropped);
        }
        // Kept: stride multiples (0, 4) plus the hot tail (6, 7).
        drop(sess);
        let (_, replay, _) = s.open_session(1).unwrap().unwrap();
        let kept: Vec<u64> = replay.snapshots.iter().map(|g| g.sample_index).collect();
        assert_eq!(kept, vec![0, 4, 6, 7]);
        dropped_all.sort_unstable();
        assert_eq!(dropped_all, vec![1, 2, 3, 5]);
    }

    #[test]
    fn remove_session_deletes_state() {
        let s = store("remove", RetentionPolicy::keep_all());
        s.create_session(1).unwrap();
        assert!(s.remove_session(1).unwrap());
        assert!(!s.remove_session(1).unwrap());
        assert!(!s.has_session(1));
    }
}
