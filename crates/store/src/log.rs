//! The per-session append-only snapshot log.
//!
//! One log file holds one session's cumulative snapshots, oldest first,
//! each encoded as an ordinary [`crate::frame::Frame`] of type
//! [`FrameType::Snapshot`] whose payload is the gmon-encoded snapshot —
//! byte-for-byte the same record the client pushed over the wire, which
//! means every record carries the codec's CRC and version field for
//! free and the corruption-handling test surface is shared with the
//! protocol.
//!
//! **Torn-tail rule.** A crash can leave a partially-written record at
//! the end of the file. On open, the log is scanned front to back; the
//! first record that fails to decode (truncated, bad CRC, wrong type,
//! undecodable payload, or a non-increasing sample index) marks the end
//! of the valid prefix, and the file is truncated there. Everything
//! before the tear survives; nothing after it is trusted.

use crate::frame::{Frame, FrameType, DEFAULT_MAX_PAYLOAD};
use crate::retention::RecordMeta;
use incprof_profile::GmonData;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// An open snapshot log: an append handle plus an in-memory index of
/// the retained records (their sample indices and encoded sizes), which
/// is what the retention policy evaluates.
#[derive(Debug)]
pub struct SnapshotLog {
    path: PathBuf,
    file: File,
    session_id: u64,
    records: Vec<RecordMeta>,
}

/// What [`SnapshotLog::open`] recovered from disk.
#[derive(Debug)]
pub struct LogReplay {
    /// The retained snapshots, oldest first, decoded and verified.
    pub snapshots: Vec<GmonData>,
    /// Bytes cut off the file's tail by the torn-tail rule (0 for a
    /// cleanly closed log).
    pub truncated_bytes: u64,
}

impl SnapshotLog {
    /// Create a fresh, empty log at `path` (truncating any existing
    /// file — callers use [`SnapshotLog::open`] to preserve one).
    pub fn create(path: &Path, session_id: u64) -> io::Result<SnapshotLog> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(SnapshotLog {
            path: path.to_path_buf(),
            file,
            session_id,
            records: Vec::new(),
        })
    }

    /// Open an existing log, replaying its records and applying the
    /// torn-tail rule: the file is truncated at the first undecodable or
    /// out-of-order record, and only the valid prefix is returned.
    pub fn open(path: &Path, session_id: u64) -> io::Result<(SnapshotLog, LogReplay)> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let mut offset = 0usize;
        let mut records = Vec::new();
        let mut snapshots = Vec::new();
        let mut last_index: Option<u64> = None;
        while offset < bytes.len() {
            let (frame, consumed) = match Frame::decode(&bytes[offset..], DEFAULT_MAX_PAYLOAD) {
                Ok(parts) => parts,
                Err(_) => break,
            };
            if frame.frame_type != FrameType::Snapshot || frame.session_id != session_id {
                break;
            }
            let gmon = match GmonData::decode(&frame.payload) {
                Ok(g) => g,
                Err(_) => break,
            };
            if last_index.is_some_and(|prev| gmon.sample_index <= prev) {
                break;
            }
            last_index = Some(gmon.sample_index);
            records.push(RecordMeta {
                sample_index: gmon.sample_index,
                bytes: consumed as u64,
            });
            snapshots.push(gmon);
            offset += consumed;
        }
        let truncated_bytes = (bytes.len() - offset) as u64;
        if truncated_bytes > 0 {
            incprof_obs::counter(incprof_obs::names::STORE_TORN_TAILS).inc();
            incprof_obs::warn!(
                "session {session_id} log {}: truncating {truncated_bytes} torn byte(s) at offset {offset}",
                path.display()
            );
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(offset as u64)?;
        }
        let file = OpenOptions::new().append(true).open(path)?;
        Ok((
            SnapshotLog {
                path: path.to_path_buf(),
                file,
                session_id,
                records,
            },
            LogReplay {
                snapshots,
                truncated_bytes,
            },
        ))
    }

    /// Append one gmon-encoded snapshot payload; `sample_index` must
    /// exceed the last retained record's. Returns the encoded record
    /// size in bytes.
    pub fn append(&mut self, sample_index: u64, payload: &[u8]) -> io::Result<u64> {
        if self
            .records
            .last()
            .is_some_and(|last| sample_index <= last.sample_index)
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "snapshot {sample_index} is not past the log tail ({})",
                    self.records.last().map(|r| r.sample_index).unwrap_or(0)
                ),
            ));
        }
        let frame = Frame::with_payload(FrameType::Snapshot, self.session_id, payload.to_vec());
        let bytes = frame
            .try_encode(DEFAULT_MAX_PAYLOAD)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        self.file.write_all(&bytes)?;
        self.file.flush()?;
        self.records.push(RecordMeta {
            sample_index,
            bytes: bytes.len() as u64,
        });
        Ok(bytes.len() as u64)
    }

    /// Rewrite the log without the records at the given ascending
    /// positions (a retention trim), atomically via tmp-file + rename.
    /// Returns the dropped records' sample indices.
    pub fn compact(&mut self, drop_positions: &[usize]) -> io::Result<Vec<u64>> {
        if drop_positions.is_empty() {
            return Ok(Vec::new());
        }
        let mut bytes = Vec::new();
        File::open(&self.path)?.read_to_end(&mut bytes)?;
        let mut keep_bytes = Vec::with_capacity(bytes.len());
        let mut kept = Vec::with_capacity(self.records.len() - drop_positions.len());
        let mut dropped = Vec::with_capacity(drop_positions.len());
        let mut drops = drop_positions.iter().peekable();
        let mut offset = 0usize;
        for (pos, rec) in self.records.iter().enumerate() {
            let end = offset + rec.bytes as usize;
            if drops.peek() == Some(&&pos) {
                drops.next();
                dropped.push(rec.sample_index);
            } else {
                keep_bytes.extend_from_slice(&bytes[offset..end]);
                kept.push(*rec);
            }
            offset = end;
        }
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&keep_bytes)?;
            f.flush()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.records = kept;
        incprof_obs::counter(incprof_obs::names::STORE_COMPACTIONS).inc();
        incprof_obs::counter(incprof_obs::names::STORE_RECORDS_DROPPED).add(dropped.len() as u64);
        Ok(dropped)
    }

    /// The retained records' metadata, oldest first.
    pub fn records(&self) -> &[RecordMeta] {
        &self.records
    }

    /// Total retained bytes on disk.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incprof_profile::{FlatProfile, FunctionStats, FunctionTable};

    fn gmon(idx: u64, self_ns: u64) -> GmonData {
        let mut table = FunctionTable::new();
        let id = table.register("f");
        let mut flat = FlatProfile::new();
        flat.set(
            id,
            FunctionStats {
                self_time: self_ns,
                calls: idx + 1,
                child_time: 0,
            },
        );
        GmonData {
            sample_index: idx,
            timestamp_ns: idx * 1_000_000_000,
            functions: table,
            flat,
            callgraph: Default::default(),
        }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("incprof_log_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_then_open_replays_everything() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("log.iprf");
        let mut log = SnapshotLog::create(&path, 7).unwrap();
        for i in 0..5 {
            log.append(i, &gmon(i, (i + 1) * 100).encode()).unwrap();
        }
        assert_eq!(log.records().len(), 5);
        drop(log);
        let (log, replay) = SnapshotLog::open(&path, 7).unwrap();
        assert_eq!(replay.truncated_bytes, 0);
        assert_eq!(replay.snapshots.len(), 5);
        for (i, snap) in replay.snapshots.iter().enumerate() {
            assert_eq!(snap.sample_index, i as u64);
        }
        assert_eq!(log.records().len(), 5);
    }

    #[test]
    fn torn_tail_is_truncated_cleanly() {
        let dir = tmpdir("torn");
        let path = dir.join("log.iprf");
        let mut log = SnapshotLog::create(&path, 1).unwrap();
        for i in 0..3 {
            log.append(i, &gmon(i, 100).encode()).unwrap();
        }
        drop(log);
        // Tear the last record in half.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let (log, replay) = SnapshotLog::open(&path, 1).unwrap();
        assert_eq!(replay.snapshots.len(), 2, "torn record dropped");
        assert!(replay.truncated_bytes > 0);
        // The file itself was truncated to the valid prefix.
        let after = std::fs::read(&path).unwrap();
        assert!(after.len() < bytes.len() - 7 || replay.snapshots.len() == 2);
        assert_eq!(log.records().len(), 2);
    }

    #[test]
    fn corrupt_middle_record_cuts_the_rest() {
        let dir = tmpdir("corrupt");
        let path = dir.join("log.iprf");
        let mut log = SnapshotLog::create(&path, 1).unwrap();
        let mut offsets = vec![0u64];
        for i in 0..3 {
            let n = log.append(i, &gmon(i, 100).encode()).unwrap();
            offsets.push(offsets.last().unwrap() + n);
        }
        drop(log);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte inside the second record: its CRC fails,
        // and the valid prefix is just the first record.
        bytes[offsets[1] as usize + 20] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay) = SnapshotLog::open(&path, 1).unwrap();
        assert_eq!(replay.snapshots.len(), 1);
    }

    #[test]
    fn append_after_reopen_continues_the_log() {
        let dir = tmpdir("reopen");
        let path = dir.join("log.iprf");
        let mut log = SnapshotLog::create(&path, 3).unwrap();
        log.append(0, &gmon(0, 10).encode()).unwrap();
        drop(log);
        let (mut log, _) = SnapshotLog::open(&path, 3).unwrap();
        log.append(1, &gmon(1, 20).encode()).unwrap();
        drop(log);
        let (_, replay) = SnapshotLog::open(&path, 3).unwrap();
        assert_eq!(replay.snapshots.len(), 2);
    }

    #[test]
    fn out_of_order_append_is_rejected() {
        let dir = tmpdir("order");
        let path = dir.join("log.iprf");
        let mut log = SnapshotLog::create(&path, 1).unwrap();
        log.append(4, &gmon(4, 10).encode()).unwrap();
        assert!(log.append(4, &gmon(4, 10).encode()).is_err());
        assert!(log.append(2, &gmon(2, 10).encode()).is_err());
        assert!(log.append(5, &gmon(5, 10).encode()).is_ok());
    }

    #[test]
    fn compact_drops_positions_and_survives_reopen() {
        let dir = tmpdir("compact");
        let path = dir.join("log.iprf");
        let mut log = SnapshotLog::create(&path, 9).unwrap();
        for i in 0..6 {
            log.append(i, &gmon(i, 100).encode()).unwrap();
        }
        let dropped = log.compact(&[1, 3]).unwrap();
        assert_eq!(dropped, vec![1, 3]);
        let kept: Vec<u64> = log.records().iter().map(|r| r.sample_index).collect();
        assert_eq!(kept, vec![0, 2, 4, 5]);
        // Appends keep working after the rewrite.
        log.append(6, &gmon(6, 100).encode()).unwrap();
        drop(log);
        let (_, replay) = SnapshotLog::open(&path, 9).unwrap();
        let indices: Vec<u64> = replay.snapshots.iter().map(|s| s.sample_index).collect();
        assert_eq!(indices, vec![0, 2, 4, 5, 6]);
    }

    #[test]
    fn wrong_session_id_records_stop_the_replay() {
        let dir = tmpdir("session");
        let path = dir.join("log.iprf");
        let mut log = SnapshotLog::create(&path, 1).unwrap();
        log.append(0, &gmon(0, 10).encode()).unwrap();
        drop(log);
        let (_, replay) = SnapshotLog::open(&path, 2).unwrap();
        assert!(replay.snapshots.is_empty(), "records belong to session 1");
    }
}
