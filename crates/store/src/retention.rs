//! Tiered retention policy for snapshot logs.
//!
//! A session's cumulative snapshot series grows without bound; the
//! retention policy decides which records a log keeps. Snapshots are
//! *cumulative* (each one contains the whole run so far), so dropping an
//! old record never loses totals — consecutive retained snapshots simply
//! delta into coarser merged intervals. The tiers:
//!
//! 1. **Hot tail** — the newest [`RetentionPolicy::hot`] records are
//!    always kept at full resolution.
//! 2. **Strided history** — older records are kept only when their
//!    `sample_index` is a multiple of [`RetentionPolicy::stride`].
//!    Keying on the original sample index (never on position) makes the
//!    retained set stable as the log grows and under re-evaluation
//!    after a restart.
//! 3. **Byte budget** — while the log still exceeds
//!    [`RetentionPolicy::max_bytes`], the oldest non-hot records are
//!    dropped even if the stride would keep them. The hot tail is never
//!    dropped, so the budget can be exceeded transiently when the hot
//!    tail alone is larger than it.
//!
//! The policy is a pure function of the record list, so a live session
//! and a session rehydrated from its log converge on the same retained
//! set — which is what keeps rehydrated reports byte-identical to the
//! never-restarted session's reports even while downsampling.

/// What the policy needs to know about one log record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordMeta {
    /// The snapshot's original sample index (never re-indexed).
    pub sample_index: u64,
    /// Encoded size of the record on disk, in bytes.
    pub bytes: u64,
}

/// Tiered retention configuration. The default keeps everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Newest records always kept at full resolution.
    pub hot: usize,
    /// Beyond the hot tail, keep records whose `sample_index` is a
    /// multiple of this; `0` or `1` keeps every record.
    pub stride: u64,
    /// Total log byte budget; `0` means unbounded.
    pub max_bytes: u64,
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        RetentionPolicy::keep_all()
    }
}

impl RetentionPolicy {
    /// A policy that never drops anything (the daemon default).
    pub fn keep_all() -> RetentionPolicy {
        RetentionPolicy {
            hot: usize::MAX,
            stride: 1,
            max_bytes: 0,
        }
    }

    /// Whether this policy can ever drop a record.
    pub fn is_keep_all(&self) -> bool {
        self.hot == usize::MAX || (self.stride <= 1 && self.max_bytes == 0)
    }

    /// Parse a `--retention` spec: comma-separated `key=value` pairs of
    /// `hot`, `stride`, and `max_bytes`, e.g. `hot=64,stride=8` or
    /// `hot=128,stride=16,max_bytes=1048576`. Omitted keys keep their
    /// keep-all defaults (`hot` defaults to 0 once any key is given, so
    /// `stride=8` alone strides the entire log).
    pub fn parse(spec: &str) -> Result<RetentionPolicy, String> {
        let mut policy = RetentionPolicy {
            hot: 0,
            stride: 1,
            max_bytes: 0,
        };
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("retention field {part:?} is not key=value"))?;
            let n: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("retention {key}={value:?} is not a number"))?;
            match key.trim() {
                "hot" => policy.hot = n as usize,
                "stride" => policy.stride = n,
                "max_bytes" => policy.max_bytes = n,
                other => return Err(format!("unknown retention field {other:?}")),
            }
        }
        Ok(policy)
    }

    /// Positions (ascending) of the records the policy drops from
    /// `records` (which is ordered oldest first). Pure and deterministic:
    /// the same record list always yields the same drop set.
    pub fn drops(&self, records: &[RecordMeta]) -> Vec<usize> {
        if self.is_keep_all() {
            return Vec::new();
        }
        let hot_start = records.len().saturating_sub(self.hot);
        let mut keep: Vec<bool> = records
            .iter()
            .enumerate()
            .map(|(i, r)| i >= hot_start || self.stride <= 1 || r.sample_index % self.stride == 0)
            .collect();
        if self.max_bytes > 0 {
            let mut total: u64 = records
                .iter()
                .zip(&keep)
                .filter(|(_, &k)| k)
                .map(|(r, _)| r.bytes)
                .sum();
            for i in 0..hot_start {
                if total <= self.max_bytes {
                    break;
                }
                if keep[i] {
                    keep[i] = false;
                    total -= records[i].bytes;
                }
            }
        }
        keep.iter()
            .enumerate()
            .filter(|(_, &k)| !k)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs(indices: &[u64], bytes: u64) -> Vec<RecordMeta> {
        indices
            .iter()
            .map(|&sample_index| RecordMeta {
                sample_index,
                bytes,
            })
            .collect()
    }

    #[test]
    fn keep_all_drops_nothing() {
        let r = recs(&[0, 1, 2, 3, 4], 100);
        assert!(RetentionPolicy::default().drops(&r).is_empty());
        assert!(RetentionPolicy::keep_all().is_keep_all());
    }

    #[test]
    fn parse_full_spec() {
        let p = RetentionPolicy::parse("hot=64,stride=8,max_bytes=1048576").unwrap();
        assert_eq!(
            p,
            RetentionPolicy {
                hot: 64,
                stride: 8,
                max_bytes: 1_048_576
            }
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(RetentionPolicy::parse("hot").is_err());
        assert!(RetentionPolicy::parse("hot=x").is_err());
        assert!(RetentionPolicy::parse("warm=3").is_err());
    }

    #[test]
    fn hot_tail_is_always_kept() {
        let p = RetentionPolicy {
            hot: 3,
            stride: 1000,
            max_bytes: 0,
        };
        // Only indices 0 (stride multiple) and the hot tail 7,8,9 survive.
        let r = recs(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9], 10);
        assert_eq!(p.drops(&r), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn stride_keys_on_sample_index_not_position() {
        let p = RetentionPolicy {
            hot: 1,
            stride: 4,
            max_bytes: 0,
        };
        // A previously-trimmed log: positions shift but indices do not,
        // so re-evaluating the policy is a no-op on already-kept records.
        let r = recs(&[0, 4, 8, 12, 13], 10);
        assert!(p.drops(&r).is_empty());
    }

    #[test]
    fn byte_budget_drops_oldest_cold_records() {
        let p = RetentionPolicy {
            hot: 2,
            stride: 1,
            max_bytes: 35,
        };
        let r = recs(&[0, 1, 2, 3, 4], 10);
        // 50 bytes kept by stride; budget 35 forces dropping oldest cold
        // records (0 then 1) until ≤ 35.
        assert_eq!(p.drops(&r), vec![0, 1]);
    }

    #[test]
    fn byte_budget_never_drops_hot_tail() {
        let p = RetentionPolicy {
            hot: 4,
            stride: 1,
            max_bytes: 10,
        };
        let r = recs(&[0, 1, 2, 3], 100);
        // Everything is hot; the budget is exceeded but nothing drops.
        assert!(p.drops(&r).is_empty());
    }

    #[test]
    fn drops_are_deterministic() {
        let p = RetentionPolicy {
            hot: 2,
            stride: 3,
            max_bytes: 100,
        };
        let r = recs(&[0, 1, 2, 3, 4, 5, 6, 7], 20);
        assert_eq!(p.drops(&r), p.drops(&r));
    }
}
