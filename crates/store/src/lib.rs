//! # incprof-store — durable session storage
//!
//! A std-only storage layer giving `incprof-serve` sessions a life
//! beyond the daemon process: every ingested snapshot is appended to a
//! per-session on-disk log, analysis state is periodically compacted
//! into checkpoints, and a tiered retention policy bounds how much
//! history a session keeps. A restarted daemon rehydrates sessions from
//! disk transparently, and the determinism discipline carries over: a
//! rehydrated session's report is byte-identical to the never-restarted
//! session's, or the checkpoint is abandoned and the session replays
//! from the log (see `docs/PERSISTENCE.md`).
//!
//! ## Record types
//!
//! Both on-disk record types reuse the IPRF wire codec ([`frame`]), so
//! every record carries a magic, a version byte, and a CRC-32 without
//! any storage-specific framing:
//!
//! * **Snapshot records** ([`frame::FrameType::Snapshot`]) — one per
//!   ingested cumulative snapshot, payload the gmon-encoded profile
//!   exactly as pushed over the wire. They live in the append-only
//!   `log.iprf` (see [`log`]) and are the source of truth: replaying
//!   them rebuilds the session bit-for-bit.
//! * **Checkpoint records** ([`frame::FrameType::Checkpoint`]) — a
//!   single frame in `checkpoint.iprf` whose payload is an
//!   `incprof_core::AnalysisCache` state blob. Checkpoints are an
//!   optimization, never authority: rehydration validates one against
//!   the replayed log and discards it on any mismatch.
//!
//! ## Modules
//!
//! * [`frame`] — the shared wire/log codec (moved here from
//!   `incprof-serve`, which re-exports it).
//! * [`log`] — the append-only snapshot log and its torn-tail recovery
//!   rule.
//! * [`retention`] — the tiered retention policy (hot tail, strided
//!   history, byte budget).
//! * [`store`] — the store root: directory layout, recovery scan, and
//!   per-session handles.

#![deny(missing_docs)]

pub mod frame;
pub mod log;
pub mod retention;
pub mod store;

pub use log::{LogReplay, SnapshotLog};
pub use retention::{RecordMeta, RetentionPolicy};
pub use store::{AppendOutcome, SessionStore, Store};
