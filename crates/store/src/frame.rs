//! The length-prefixed binary frame codec shared by the wire protocol
//! and the on-disk snapshot log.
//!
//! Every message on an `incprof-serve` connection — and every record in
//! a session's append-only log file (see [`crate::log`]) — is one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"IPRF"
//! 4       1     protocol version (1 = plain, 2 = trace extension)
//! 5       1     frame type (see [`FrameType`])
//! 6       8     session id, little-endian u64 (0 when not applicable)
//! 14      4     payload length, little-endian u32
//! [18     12    trace extension, only when version = 2:
//!               u64 trace id + u32 parent span id, little-endian]
//! ..      len   payload bytes
//! ..+len  4     CRC-32 (IEEE), little-endian, over everything before it
//! ```
//!
//! Untraced frames are encoded exactly as version 1 — byte-identical
//! to the original protocol — so tracing costs nothing on the wire
//! unless a frame actually carries a [`TraceWire`].
//!
//! The codec is pure and clock-free: encoding and decoding are plain
//! functions over byte slices, reused verbatim by the server, the
//! client library, the load generator, the corruption test-suite, and
//! the durable session store (which appends the same frames to disk,
//! getting a CRC and a version field on every record for free).
//! Blocking-I/O helpers ([`read_frame`] / [`write_frame`]) sit on top
//! and keep I/O failures distinct from framing violations so the server
//! can answer a malformed frame with a typed [`ErrorCode`] instead of
//! tearing the connection down silently.

use std::fmt;
use std::io::{self, Read, Write};

/// Magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"IPRF";
/// Protocol version of a traceless frame (the original wire format,
/// still emitted whenever a frame carries no trace context).
pub const VERSION: u8 = 1;
/// Protocol version of a frame carrying a [`TraceWire`] extension
/// between the fixed header and the payload.
pub const VERSION_TRACED: u8 = 2;
/// Fixed byte length of the frame header (magic through payload length).
pub const HEADER_LEN: usize = 18;
/// Byte length of the optional trace extension (u64 trace id + u32
/// parent span id), present exactly when the version byte is
/// [`VERSION_TRACED`].
pub const TRACE_EXT_LEN: usize = 12;
/// Byte length of the trailing CRC.
pub const CRC_LEN: usize = 4;
/// Default cap on payload length; frames claiming more are rejected
/// before any allocation happens.
pub const DEFAULT_MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Frame types. Requests (client → server) sit below `0x40`; replies
/// (server → client) mirror them at `0x80 | request`; `0x7E`/`0x7F` are
/// the out-of-band backpressure and error replies. The `0x20`–`0x3F`
/// band is reserved for on-disk-only record types (currently just
/// [`FrameType::Checkpoint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Open a new session (session id in the header is ignored; the
    /// server assigns one and returns it in [`FrameType::OpenAck`]).
    Open = 0x01,
    /// One cumulative profile snapshot; payload is a gmon-encoded
    /// `GmonData` record.
    Snapshot = 0x02,
    /// Ask for the session's phase report. Payload: empty or one mode
    /// byte — `0x00` full JSON report, `0x01` analysis JSON only.
    Query = 0x03,
    /// Close the session and drop it from the registry.
    Close = 0x04,
    /// Liveness probe.
    Ping = 0x05,
    /// Ask the daemon to drain every session and exit.
    Shutdown = 0x06,
    /// Admin: Prometheus-style text scrape of the metrics registry and
    /// per-session gauges. Only answered on the admin socket.
    Scrape = 0x10,
    /// Admin: resolve a trace id to its span tree. Payload: u64 trace
    /// id, little-endian.
    TraceGet = 0x11,
    /// Admin: dump the flight recorder's retained events.
    RecorderDump = 0x12,
    /// Admin: liveness + daemon vitals.
    Health = 0x13,
    /// On-disk only: a compacted analysis checkpoint in a session's
    /// snapshot log; payload is an `incprof_core::AnalysisCache` state
    /// blob. Never valid on the wire — the server rejects it with
    /// [`ErrorCode::BadType`].
    Checkpoint = 0x20,
    /// Reply to [`FrameType::Open`]; the header carries the new id.
    OpenAck = 0x81,
    /// Reply to [`FrameType::Snapshot`]; payload is a [`SnapshotAck`].
    SnapshotAck = 0x82,
    /// Reply to [`FrameType::Query`]; payload is UTF-8 JSON.
    Report = 0x83,
    /// Reply to [`FrameType::Close`].
    CloseAck = 0x84,
    /// Reply to [`FrameType::Ping`].
    Pong = 0x85,
    /// Reply to [`FrameType::Shutdown`].
    ShutdownAck = 0x86,
    /// Reply to [`FrameType::Scrape`]; payload is UTF-8 exposition text.
    ScrapeReply = 0x90,
    /// Reply to [`FrameType::TraceGet`]; payload is UTF-8 JSON (an
    /// `incprof_obs::TraceTree`).
    TraceReply = 0x91,
    /// Reply to [`FrameType::RecorderDump`]; payload is UTF-8 JSON (an
    /// array of `incprof_obs::EventRecord`s).
    RecorderReply = 0x92,
    /// Reply to [`FrameType::Health`]; payload is UTF-8 JSON.
    HealthReply = 0x93,
    /// Backpressure: the ingest queue is full, retry later.
    Busy = 0x7E,
    /// Typed failure; payload is an [`ErrorInfo`].
    Error = 0x7F,
}

impl FrameType {
    /// Decode a wire byte.
    pub fn from_u8(b: u8) -> Option<FrameType> {
        Some(match b {
            0x01 => FrameType::Open,
            0x02 => FrameType::Snapshot,
            0x03 => FrameType::Query,
            0x04 => FrameType::Close,
            0x05 => FrameType::Ping,
            0x06 => FrameType::Shutdown,
            0x10 => FrameType::Scrape,
            0x11 => FrameType::TraceGet,
            0x12 => FrameType::RecorderDump,
            0x13 => FrameType::Health,
            0x20 => FrameType::Checkpoint,
            0x81 => FrameType::OpenAck,
            0x82 => FrameType::SnapshotAck,
            0x83 => FrameType::Report,
            0x84 => FrameType::CloseAck,
            0x85 => FrameType::Pong,
            0x86 => FrameType::ShutdownAck,
            0x90 => FrameType::ScrapeReply,
            0x91 => FrameType::TraceReply,
            0x92 => FrameType::RecorderReply,
            0x93 => FrameType::HealthReply,
            0x7E => FrameType::Busy,
            0x7F => FrameType::Error,
            _ => return None,
        })
    }
}

/// Ways a byte sequence can fail to be a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than a complete frame requires.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// The first four bytes were not [`MAGIC`].
    BadMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// Unknown protocol version.
    BadVersion {
        /// The version byte found.
        found: u8,
    },
    /// Unknown frame-type byte.
    UnknownType {
        /// The type byte found.
        found: u8,
    },
    /// The payload length exceeds the negotiated cap. On decode, the
    /// claimed length came off the wire; on [`Frame::try_encode`], it is
    /// the actual payload size (which is why `len` is `u64` — a 64-bit
    /// process can hold a payload bigger than the u32 wire field can
    /// describe, and that must be reported, not truncated).
    Oversize {
        /// Claimed (decode) or actual (encode) payload length.
        len: u64,
        /// Configured maximum.
        max: u32,
    },
    /// The trailing CRC does not match the frame bytes.
    CrcMismatch {
        /// CRC computed over the received bytes.
        computed: u32,
        /// CRC carried by the frame.
        carried: u32,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { context } => write!(f, "frame truncated reading {context}"),
            FrameError::BadMagic { found } => write!(f, "bad magic {found:02x?}"),
            FrameError::BadVersion { found } => write!(f, "unsupported protocol version {found}"),
            FrameError::UnknownType { found } => write!(f, "unknown frame type 0x{found:02x}"),
            FrameError::Oversize { len, max } => {
                write!(f, "payload length {len} exceeds maximum {max}")
            }
            FrameError::CrcMismatch { computed, carried } => {
                write!(
                    f,
                    "CRC mismatch: computed {computed:08x}, frame carried {carried:08x}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// The optional trace extension a frame can carry: which trace the
/// request belongs to and the sender-side parent span's wire id.
///
/// Encoded as 12 bytes — u64 trace id then u32 parent span id, both
/// little-endian — between the fixed header and the payload, signalled
/// by the version byte being [`VERSION_TRACED`]. A receiver that only
/// speaks version 1 rejects the frame as `BadVersion`; version-2 peers
/// still emit version-1 bytes for untraced frames, so tracing is pay-
/// for-what-you-use on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceWire {
    /// Trace id (never 0 for a live trace).
    pub trace_id: u64,
    /// Wire id of the sender-side parent span (0 = trace root).
    pub parent_span: u32,
}

impl TraceWire {
    /// Serialize to the 12-byte wire extension.
    pub fn encode(&self) -> [u8; TRACE_EXT_LEN] {
        let mut buf = [0u8; TRACE_EXT_LEN];
        buf[0..8].copy_from_slice(&self.trace_id.to_le_bytes());
        buf[8..12].copy_from_slice(&self.parent_span.to_le_bytes());
        buf
    }

    /// Deserialize the 12-byte wire extension.
    pub fn decode(bytes: &[u8; TRACE_EXT_LEN]) -> TraceWire {
        let mut tid = [0u8; 8];
        tid.copy_from_slice(&bytes[0..8]);
        let mut span = [0u8; 4];
        span.copy_from_slice(&bytes[8..12]);
        TraceWire {
            trace_id: u64::from_le_bytes(tid),
            parent_span: u32::from_le_bytes(span),
        }
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame type.
    pub frame_type: FrameType,
    /// Session the frame belongs to (0 when not applicable).
    pub session_id: u64,
    /// Trace context the frame carries (None ⇒ version-1 wire bytes).
    pub trace: Option<TraceWire>,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A payload-free frame.
    pub fn empty(frame_type: FrameType, session_id: u64) -> Frame {
        Frame {
            frame_type,
            session_id,
            trace: None,
            payload: Vec::new(),
        }
    }

    /// A frame carrying `payload`.
    pub fn with_payload(frame_type: FrameType, session_id: u64, payload: Vec<u8>) -> Frame {
        Frame {
            frame_type,
            session_id,
            trace: None,
            payload,
        }
    }

    /// The same frame stamped with a trace context (builder-style).
    pub fn traced(mut self, trace: Option<TraceWire>) -> Frame {
        self.trace = trace;
        self
    }

    /// Total encoded length in bytes.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN
            + if self.trace.is_some() {
                TRACE_EXT_LEN
            } else {
                0
            }
            + self.payload.len()
            + CRC_LEN
    }

    /// Serialize to wire bytes, refusing payloads over `max_payload`.
    ///
    /// The header's length field is a u32; a payload larger than the cap
    /// (or than `u32::MAX` outright) cannot be represented and would
    /// silently truncate the length under a bare cast, producing a
    /// corrupt-but-CRC-valid frame the peer misparses. Production write
    /// paths ([`write_frame`] / [`write_frame_capped`]) all route
    /// through here.
    pub fn try_encode(&self, max_payload: u32) -> Result<Vec<u8>, FrameError> {
        if self.payload.len() as u64 > u64::from(max_payload) {
            return Err(FrameError::Oversize {
                len: self.payload.len() as u64,
                max: max_payload,
            });
        }
        Ok(self.encode())
    }

    /// Serialize to wire bytes without a payload-size check — only valid
    /// for payloads that fit the u32 length field. Tests and tools craft
    /// frames with this; I/O paths use [`Frame::try_encode`] via
    /// [`write_frame`].
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        buf.extend_from_slice(&MAGIC);
        buf.push(if self.trace.is_some() {
            VERSION_TRACED
        } else {
            VERSION
        });
        buf.push(self.frame_type as u8);
        buf.extend_from_slice(&self.session_id.to_le_bytes());
        buf.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        if let Some(trace) = &self.trace {
            buf.extend_from_slice(&trace.encode());
        }
        buf.extend_from_slice(&self.payload);
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decode one frame from the front of `buf`, returning it together
    /// with the number of bytes consumed.
    pub fn decode(buf: &[u8], max_payload: u32) -> Result<(Frame, usize), FrameError> {
        if buf.len() < HEADER_LEN {
            return Err(FrameError::Truncated { context: "header" });
        }
        let header: [u8; HEADER_LEN] = buf[..HEADER_LEN]
            .try_into()
            .map_err(|_| FrameError::Truncated { context: "header" })?;
        let (frame_type, session_id, len, has_trace) = parse_header(&header, max_payload)?;
        let ext = if has_trace { TRACE_EXT_LEN } else { 0 };
        let total = HEADER_LEN + ext + len as usize + CRC_LEN;
        if buf.len() < total {
            return Err(FrameError::Truncated { context: "payload" });
        }
        let trace = if has_trace {
            let ext_bytes: [u8; TRACE_EXT_LEN] = buf[HEADER_LEN..HEADER_LEN + TRACE_EXT_LEN]
                .try_into()
                .map_err(|_| FrameError::Truncated { context: "trace" })?;
            Some(TraceWire::decode(&ext_bytes))
        } else {
            None
        };
        let payload_at = HEADER_LEN + ext;
        let payload = buf[payload_at..payload_at + len as usize].to_vec();
        let carried = u32::from_le_bytes(
            buf[total - CRC_LEN..total]
                .try_into()
                .map_err(|_| FrameError::Truncated { context: "crc" })?,
        );
        let computed = crc32(&buf[..total - CRC_LEN]);
        if computed != carried {
            return Err(FrameError::CrcMismatch { computed, carried });
        }
        Ok((
            Frame {
                frame_type,
                session_id,
                trace,
                payload,
            },
            total,
        ))
    }
}

/// Validate a fixed-size header, returning (type, session id, payload
/// length, trace extension follows). Shared by the slice decoder and
/// the streaming reader. Both protocol versions are accepted; the
/// returned flag says whether [`TRACE_EXT_LEN`] extension bytes sit
/// between this header and the payload.
pub fn parse_header(
    header: &[u8; HEADER_LEN],
    max_payload: u32,
) -> Result<(FrameType, u64, u32, bool), FrameError> {
    if header[0..4] != MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(&header[0..4]);
        return Err(FrameError::BadMagic { found });
    }
    if header[4] != VERSION && header[4] != VERSION_TRACED {
        return Err(FrameError::BadVersion { found: header[4] });
    }
    let frame_type =
        FrameType::from_u8(header[5]).ok_or(FrameError::UnknownType { found: header[5] })?;
    let mut id_bytes = [0u8; 8];
    id_bytes.copy_from_slice(&header[6..14]);
    let session_id = u64::from_le_bytes(id_bytes);
    let mut len_bytes = [0u8; 4];
    len_bytes.copy_from_slice(&header[14..18]);
    let len = u32::from_le_bytes(len_bytes);
    if len > max_payload {
        return Err(FrameError::Oversize {
            len: u64::from(len),
            max: max_payload,
        });
    }
    Ok((frame_type, session_id, len, header[4] == VERSION_TRACED))
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320)
// ---------------------------------------------------------------------

/// Slice-by-16 lookup tables: `tables[0]` is the classic byte-at-a-time
/// table; `tables[k][b]` is the CRC of byte `b` followed by `k` zero
/// bytes. Sixteen tables let the hot loop fold sixteen input bytes per
/// iteration, which matters once multi-megabyte analysis checkpoints
/// started flowing through this codec (a bytewise CRC was the single
/// largest cost of a warm session rehydration).
fn crc32_tables() -> &'static [[u32; 256]; 16] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 16]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut tables = [[0u32; 256]; 16];
        for (i, slot) in tables[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        for i in 0..256usize {
            let mut c = tables[0][i];
            for k in 1..16 {
                c = tables[0][(c & 0xFF) as usize] ^ (c >> 8);
                tables[k][i] = c;
            }
        }
        tables
    })
}

/// IEEE CRC-32 of `data` (the checksum gzip and Ethernet use).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_finish(crc32_begin(data))
}

// ---------------------------------------------------------------------
// Typed error payloads
// ---------------------------------------------------------------------

/// Error codes carried by [`FrameType::Error`] payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The frame's magic bytes were wrong.
    BadMagic = 1,
    /// Unsupported protocol version.
    BadVersion = 2,
    /// CRC check failed.
    BadCrc = 3,
    /// Payload length over the negotiated cap.
    Oversize = 4,
    /// Frame-type byte not understood, or a reply type sent as a request.
    BadType = 5,
    /// The session id is not (or no longer) registered.
    UnknownSession = 6,
    /// Snapshot arrived with a non-consecutive sample index.
    OutOfOrder = 7,
    /// The server's session table is full.
    SessionLimit = 8,
    /// The payload failed to decode (bad gmon bytes, regressing
    /// counters, bad UTF-8, ...).
    BadPayload = 9,
    /// The daemon is draining and no longer accepts work.
    ShuttingDown = 10,
    /// Anything else; see the message.
    Internal = 11,
}

impl ErrorCode {
    /// Decode a wire code.
    pub fn from_u16(v: u16) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::BadMagic,
            2 => ErrorCode::BadVersion,
            3 => ErrorCode::BadCrc,
            4 => ErrorCode::Oversize,
            5 => ErrorCode::BadType,
            6 => ErrorCode::UnknownSession,
            7 => ErrorCode::OutOfOrder,
            8 => ErrorCode::SessionLimit,
            9 => ErrorCode::BadPayload,
            10 => ErrorCode::ShuttingDown,
            11 => ErrorCode::Internal,
            _ => return None,
        })
    }

    /// The code a framing violation maps to.
    pub fn of_frame_error(e: &FrameError) -> ErrorCode {
        match e {
            FrameError::Truncated { .. } => ErrorCode::BadPayload,
            FrameError::BadMagic { .. } => ErrorCode::BadMagic,
            FrameError::BadVersion { .. } => ErrorCode::BadVersion,
            FrameError::UnknownType { .. } => ErrorCode::BadType,
            FrameError::Oversize { .. } => ErrorCode::Oversize,
            FrameError::CrcMismatch { .. } => ErrorCode::BadCrc,
        }
    }
}

/// Decoded payload of an [`FrameType::Error`] frame: a code plus a
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorInfo {
    /// Machine-readable failure class.
    pub code: ErrorCode,
    /// Diagnostic text.
    pub message: String,
}

impl ErrorInfo {
    /// Build an error payload.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ErrorInfo {
        ErrorInfo {
            code,
            message: message.into(),
        }
    }

    /// Serialize: u16 code, then the UTF-8 message.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(2 + self.message.len());
        buf.extend_from_slice(&(self.code as u16).to_le_bytes());
        buf.extend_from_slice(self.message.as_bytes());
        buf
    }

    /// Deserialize an error payload.
    pub fn decode(payload: &[u8]) -> Result<ErrorInfo, FrameError> {
        if payload.len() < 2 {
            return Err(FrameError::Truncated {
                context: "error code",
            });
        }
        let code = u16::from_le_bytes([payload[0], payload[1]]);
        let code = ErrorCode::from_u16(code).unwrap_or(ErrorCode::Internal);
        let message = String::from_utf8_lossy(&payload[2..]).into_owned();
        Ok(ErrorInfo { code, message })
    }
}

impl fmt::Display for ErrorInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

/// Decoded payload of a [`FrameType::SnapshotAck`]: the online
/// detector's verdict on the interval the snapshot completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotAck {
    /// Interval index the snapshot completed (0-based).
    pub interval: u64,
    /// Phase the interval was assigned to by the online detector.
    pub phase: u32,
    /// The interval opened a new phase.
    pub new_phase: bool,
    /// The phase differs from the previous interval's (a transition).
    pub transition: bool,
    /// The interval was beyond the distance threshold of every phase but
    /// was absorbed anyway because the online detector is saturated at
    /// its phase cap (see `OnlineObservation::capped` in `incprof-core`).
    pub capped: bool,
}

impl SnapshotAck {
    const FLAG_NEW_PHASE: u8 = 1;
    const FLAG_TRANSITION: u8 = 2;
    const FLAG_CAPPED: u8 = 4;

    /// Serialize: u64 interval, u32 phase, u8 flags.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(13);
        buf.extend_from_slice(&self.interval.to_le_bytes());
        buf.extend_from_slice(&self.phase.to_le_bytes());
        let mut flags = 0u8;
        if self.new_phase {
            flags |= Self::FLAG_NEW_PHASE;
        }
        if self.transition {
            flags |= Self::FLAG_TRANSITION;
        }
        if self.capped {
            flags |= Self::FLAG_CAPPED;
        }
        buf.push(flags);
        buf
    }

    /// Deserialize a snapshot-ack payload.
    pub fn decode(payload: &[u8]) -> Result<SnapshotAck, FrameError> {
        if payload.len() < 13 {
            return Err(FrameError::Truncated {
                context: "snapshot ack",
            });
        }
        let mut interval = [0u8; 8];
        interval.copy_from_slice(&payload[0..8]);
        let mut phase = [0u8; 4];
        phase.copy_from_slice(&payload[8..12]);
        let flags = payload[12];
        Ok(SnapshotAck {
            interval: u64::from_le_bytes(interval),
            phase: u32::from_le_bytes(phase),
            new_phase: flags & Self::FLAG_NEW_PHASE != 0,
            transition: flags & Self::FLAG_TRANSITION != 0,
            capped: flags & Self::FLAG_CAPPED != 0,
        })
    }
}

// ---------------------------------------------------------------------
// Blocking I/O helpers
// ---------------------------------------------------------------------

/// What [`read_frame`] can yield besides a frame.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete, CRC-verified frame.
    Frame(Frame),
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// The read blocked past the socket timeout with no bytes consumed
    /// (the caller can poll a shutdown flag and retry).
    TimedOut,
    /// The bytes on the wire were not a valid frame.
    Malformed(FrameError),
}

/// Read one frame from `r`. Distinguishes a clean close (EOF at a frame
/// boundary) from a mid-frame disconnect, and a full-idle timeout from
/// one that struck mid-frame (mid-frame stalls and disconnects both
/// surface as `Err(io)` — the stream is no longer frame-aligned, so the
/// connection must be dropped).
pub fn read_frame(r: &mut impl Read, max_payload: u32) -> io::Result<ReadOutcome> {
    let mut header = [0u8; HEADER_LEN];
    let mut got = 0usize;
    while got < HEADER_LEN {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(ReadOutcome::Closed),
            Ok(0) => {
                return Ok(ReadOutcome::Malformed(FrameError::Truncated {
                    context: "header",
                }))
            }
            Ok(n) => got += n,
            Err(e) if is_timeout(&e) && got == 0 => return Ok(ReadOutcome::TimedOut),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let (frame_type, session_id, len, has_trace) = match parse_header(&header, max_payload) {
        Ok(parts) => parts,
        Err(e) => return Ok(ReadOutcome::Malformed(e)),
    };
    let trace = if has_trace {
        let mut ext = [0u8; TRACE_EXT_LEN];
        if let Err(e) = read_fully(r, &mut ext) {
            return if e.kind() == io::ErrorKind::UnexpectedEof {
                Ok(ReadOutcome::Malformed(FrameError::Truncated {
                    context: "trace",
                }))
            } else {
                Err(e)
            };
        }
        Some(ext)
    } else {
        None
    };
    let mut rest = vec![0u8; len as usize + CRC_LEN];
    if let Err(e) = read_fully(r, &mut rest) {
        return if e.kind() == io::ErrorKind::UnexpectedEof {
            Ok(ReadOutcome::Malformed(FrameError::Truncated {
                context: "payload",
            }))
        } else {
            Err(e)
        };
    }
    let payload_len = len as usize;
    let mut crc_bytes = [0u8; 4];
    crc_bytes.copy_from_slice(&rest[payload_len..]);
    let carried = u32::from_le_bytes(crc_bytes);
    let mut crc = crc32_begin(&header);
    if let Some(ext) = &trace {
        crc = crc32_update(crc, ext);
    }
    crc = crc32_update(crc, &rest[..payload_len]);
    let computed = crc32_finish(crc);
    if computed != carried {
        return Ok(ReadOutcome::Malformed(FrameError::CrcMismatch {
            computed,
            carried,
        }));
    }
    rest.truncate(payload_len);
    Ok(ReadOutcome::Frame(Frame {
        frame_type,
        session_id,
        trace: trace.map(|ext| TraceWire::decode(&ext)),
        payload: rest,
    }))
}

/// Write one frame to `w` and flush it, enforcing the default protocol
/// payload cap ([`DEFAULT_MAX_PAYLOAD`]). Both the server reply path and
/// the client request path go through here, so an oversize payload is
/// rejected as [`io::ErrorKind::InvalidInput`] before any bytes hit the
/// wire instead of being emitted with a truncated length field.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<usize> {
    write_frame_capped(w, frame, DEFAULT_MAX_PAYLOAD)
}

/// [`write_frame`] with an explicit payload cap.
pub fn write_frame_capped(
    w: &mut impl Write,
    frame: &Frame,
    max_payload: u32,
) -> io::Result<usize> {
    let bytes = frame
        .try_encode(max_payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(bytes.len())
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn read_fully(r: &mut impl Read, buf: &mut [u8]) -> io::Result<()> {
    let mut got = 0usize;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn crc32_begin(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data)
}

fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    let tables = crc32_tables();
    let mut chunks = data.chunks_exact(16);
    for chunk in &mut chunks {
        // lint: allow(P01, chunks_exact(16) yields exactly sixteen bytes; the array conversions cannot fail)
        let a = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ state;
        // lint: allow(P01, chunks_exact(16) yields exactly sixteen bytes; the array conversions cannot fail)
        let b = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        // lint: allow(P01, chunks_exact(16) yields exactly sixteen bytes; the array conversions cannot fail)
        let c = u32::from_le_bytes(chunk[8..12].try_into().unwrap());
        // lint: allow(P01, chunks_exact(16) yields exactly sixteen bytes; the array conversions cannot fail)
        let d = u32::from_le_bytes(chunk[12..16].try_into().unwrap());
        state = tables[15][(a & 0xFF) as usize]
            ^ tables[14][((a >> 8) & 0xFF) as usize]
            ^ tables[13][((a >> 16) & 0xFF) as usize]
            ^ tables[12][(a >> 24) as usize]
            ^ tables[11][(b & 0xFF) as usize]
            ^ tables[10][((b >> 8) & 0xFF) as usize]
            ^ tables[9][((b >> 16) & 0xFF) as usize]
            ^ tables[8][(b >> 24) as usize]
            ^ tables[7][(c & 0xFF) as usize]
            ^ tables[6][((c >> 8) & 0xFF) as usize]
            ^ tables[5][((c >> 16) & 0xFF) as usize]
            ^ tables[4][(c >> 24) as usize]
            ^ tables[3][(d & 0xFF) as usize]
            ^ tables[2][((d >> 8) & 0xFF) as usize]
            ^ tables[1][((d >> 16) & 0xFF) as usize]
            ^ tables[0][(d >> 24) as usize];
    }
    for &b in chunks.remainder() {
        state = tables[0][((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

fn crc32_finish(state: u32) -> u32 {
    state ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Streaming form agrees with the one-shot form.
        let mut s = crc32_begin(b"1234");
        s = crc32_update(s, b"56789");
        assert_eq!(crc32_finish(s), 0xCBF4_3926);
    }

    #[test]
    fn frame_roundtrip() {
        let f = Frame::with_payload(FrameType::Snapshot, 7, vec![1, 2, 3, 250]);
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.encoded_len());
        let (back, used) = Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back, f);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let f = Frame::empty(FrameType::Ping, 0);
        let (back, _) = Frame::decode(&f.encode(), DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn traced_frame_roundtrip() {
        let tw = TraceWire {
            trace_id: 0xDEAD_BEEF_CAFE_0001,
            parent_span: 42,
        };
        let f = Frame::with_payload(FrameType::Snapshot, 9, vec![5; 40]).traced(Some(tw));
        let bytes = f.encode();
        assert_eq!(bytes[4], VERSION_TRACED);
        assert_eq!(bytes.len(), f.encoded_len());
        assert_eq!(bytes.len(), HEADER_LEN + TRACE_EXT_LEN + 40 + CRC_LEN);
        let (back, used) = Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back, f);
        assert_eq!(back.trace, Some(tw));
        // Streaming reader agrees with the slice decoder.
        let mut cursor = io::Cursor::new(bytes.clone());
        match read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD).unwrap() {
            ReadOutcome::Frame(got) => assert_eq!(got, f),
            other => panic!("expected frame, got {other:?}"),
        }
        // A flipped bit inside the extension is caught by the CRC.
        let mut corrupt = bytes;
        corrupt[HEADER_LEN + 3] ^= 0x10;
        assert!(matches!(
            Frame::decode(&corrupt, DEFAULT_MAX_PAYLOAD),
            Err(FrameError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn untraced_frames_keep_version1_bytes() {
        // The v2 codec must emit byte-identical frames to the original
        // protocol whenever no trace context is attached.
        let f = Frame::with_payload(FrameType::Snapshot, 7, vec![1, 2, 3]);
        let bytes = f.encode();
        assert_eq!(bytes[4], VERSION);
        assert_eq!(bytes.len(), HEADER_LEN + 3 + CRC_LEN);
        assert_eq!(f.traced(None).encode(), bytes);
    }

    #[test]
    fn truncated_trace_extension_is_malformed() {
        let tw = TraceWire {
            trace_id: 1,
            parent_span: 0,
        };
        let bytes = Frame::empty(FrameType::Ping, 0).traced(Some(tw)).encode();
        // Slice decoder: not enough bytes for the extension.
        assert!(matches!(
            Frame::decode(&bytes[..HEADER_LEN + 4], DEFAULT_MAX_PAYLOAD),
            Err(FrameError::Truncated { .. })
        ));
        // Streaming reader: EOF inside the extension.
        let mut c = io::Cursor::new(bytes[..HEADER_LEN + 4].to_vec());
        assert!(matches!(
            read_frame(&mut c, DEFAULT_MAX_PAYLOAD).unwrap(),
            ReadOutcome::Malformed(FrameError::Truncated { context: "trace" })
        ));
    }

    #[test]
    fn decode_rejects_corruption() {
        let good = Frame::with_payload(FrameType::Query, 1, vec![9; 32]).encode();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Frame::decode(&bad_magic, DEFAULT_MAX_PAYLOAD),
            Err(FrameError::BadMagic { .. })
        ));

        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert!(matches!(
            Frame::decode(&bad_version, DEFAULT_MAX_PAYLOAD),
            Err(FrameError::BadVersion { found: 99 })
        ));

        let mut bad_type = good.clone();
        bad_type[5] = 0x55;
        assert!(matches!(
            Frame::decode(&bad_type, DEFAULT_MAX_PAYLOAD),
            Err(FrameError::UnknownType { found: 0x55 })
        ));

        let mut bad_crc = good.clone();
        let last = bad_crc.len() - 1;
        bad_crc[last] ^= 0xFF;
        assert!(matches!(
            Frame::decode(&bad_crc, DEFAULT_MAX_PAYLOAD),
            Err(FrameError::CrcMismatch { .. })
        ));

        assert!(matches!(
            Frame::decode(&good[..10], DEFAULT_MAX_PAYLOAD),
            Err(FrameError::Truncated { context: "header" })
        ));
        assert!(matches!(
            Frame::decode(&good[..good.len() - 1], DEFAULT_MAX_PAYLOAD),
            Err(FrameError::Truncated { context: "payload" })
        ));

        // A frame claiming more payload than the cap is refused from the
        // header alone.
        assert!(matches!(
            Frame::decode(&good, 8),
            Err(FrameError::Oversize { len: 32, max: 8 })
        ));
    }

    #[test]
    fn corrupted_payload_byte_fails_crc() {
        let mut bytes = Frame::with_payload(FrameType::Report, 3, vec![7; 100]).encode();
        bytes[HEADER_LEN + 50] ^= 0x01;
        assert!(matches!(
            Frame::decode(&bytes, DEFAULT_MAX_PAYLOAD),
            Err(FrameError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn error_info_roundtrip() {
        let e = ErrorInfo::new(ErrorCode::OutOfOrder, "expected sample 4, got 9");
        let back = ErrorInfo::decode(&e.encode()).unwrap();
        assert_eq!(back, e);
        assert!(ErrorInfo::decode(&[1]).is_err());
        // Unknown codes degrade to Internal rather than failing.
        let mut weird = e.encode();
        weird[0] = 0xFF;
        weird[1] = 0xFF;
        assert_eq!(ErrorInfo::decode(&weird).unwrap().code, ErrorCode::Internal);
    }

    #[test]
    fn snapshot_ack_roundtrip() {
        for flags in 0u8..8 {
            let ack = SnapshotAck {
                interval: 41,
                phase: 3,
                new_phase: flags & 1 != 0,
                transition: flags & 2 != 0,
                capped: flags & 4 != 0,
            };
            assert_eq!(SnapshotAck::decode(&ack.encode()).unwrap(), ack);
        }
        assert!(SnapshotAck::decode(&[0; 12]).is_err());
    }

    #[test]
    fn try_encode_enforces_cap_exactly() {
        // At the cap: succeeds and round-trips.
        let at = Frame::with_payload(FrameType::Report, 1, vec![0xAB; 64]);
        let bytes = at.try_encode(64).unwrap();
        let (back, _) = Frame::decode(&bytes, 64).unwrap();
        assert_eq!(back, at);
        // One over: refused with the real length, nothing truncated.
        let over = Frame::with_payload(FrameType::Report, 1, vec![0xAB; 65]);
        assert_eq!(
            over.try_encode(64),
            Err(FrameError::Oversize { len: 65, max: 64 })
        );
    }

    #[test]
    fn try_encode_at_default_cap_boundary() {
        let at = Frame::with_payload(FrameType::Report, 9, vec![7; DEFAULT_MAX_PAYLOAD as usize]);
        let bytes = at.try_encode(DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(bytes.len(), at.encoded_len());
        let over = Frame::with_payload(
            FrameType::Report,
            9,
            vec![7; DEFAULT_MAX_PAYLOAD as usize + 1],
        );
        assert_eq!(
            over.try_encode(DEFAULT_MAX_PAYLOAD),
            Err(FrameError::Oversize {
                len: u64::from(DEFAULT_MAX_PAYLOAD) + 1,
                max: DEFAULT_MAX_PAYLOAD,
            })
        );
    }

    #[test]
    fn write_frame_capped_rejects_oversize_before_writing() {
        let frame = Frame::with_payload(FrameType::Report, 2, vec![1; 100]);
        let mut sink = Vec::new();
        let err = write_frame_capped(&mut sink, &frame, 99).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(sink.is_empty(), "no bytes may reach the wire");
        assert_eq!(
            write_frame_capped(&mut sink, &frame, 100).unwrap(),
            sink.len()
        );
    }

    #[test]
    fn streaming_reader_matches_slice_decoder() {
        let frames = vec![
            Frame::empty(FrameType::Open, 0),
            Frame::with_payload(FrameType::Snapshot, 5, vec![1; 300]),
            Frame::empty(FrameType::Close, 5),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&f.encode());
        }
        let mut cursor = io::Cursor::new(wire);
        for f in &frames {
            match read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD).unwrap() {
                ReadOutcome::Frame(got) => assert_eq!(&got, f),
                other => panic!("expected frame, got {other:?}"),
            }
        }
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD).unwrap(),
            ReadOutcome::Closed
        ));
    }

    #[test]
    fn streaming_reader_reports_midframe_eof() {
        let bytes = Frame::with_payload(FrameType::Snapshot, 1, vec![4; 64]).encode();
        // EOF inside the header (after the first byte).
        let mut c = io::Cursor::new(bytes[..5].to_vec());
        assert!(matches!(
            read_frame(&mut c, DEFAULT_MAX_PAYLOAD).unwrap(),
            ReadOutcome::Malformed(FrameError::Truncated { context: "header" })
        ));
        // EOF inside the payload.
        let mut c = io::Cursor::new(bytes[..HEADER_LEN + 10].to_vec());
        assert!(matches!(
            read_frame(&mut c, DEFAULT_MAX_PAYLOAD).unwrap(),
            ReadOutcome::Malformed(FrameError::Truncated { context: "payload" })
        ));
    }

    #[test]
    fn frame_error_code_mapping_is_total() {
        let cases = [
            (
                FrameError::Truncated { context: "x" },
                ErrorCode::BadPayload,
            ),
            (FrameError::BadMagic { found: [0; 4] }, ErrorCode::BadMagic),
            (FrameError::BadVersion { found: 9 }, ErrorCode::BadVersion),
            (FrameError::UnknownType { found: 9 }, ErrorCode::BadType),
            (FrameError::Oversize { len: 9, max: 1 }, ErrorCode::Oversize),
            (
                FrameError::CrcMismatch {
                    computed: 1,
                    carried: 2,
                },
                ErrorCode::BadCrc,
            ),
        ];
        for (e, code) in cases {
            assert_eq!(ErrorCode::of_frame_error(&e), code);
        }
    }
}
