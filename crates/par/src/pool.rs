//! The scoped worker pool and its deterministic chunked primitives.
//!
//! The core primitive is [`Pool::map_chunks`]: the index range `0..n` is
//! cut into fixed chunks (boundaries depend only on `n` and the chunk
//! size, never on the worker count), workers claim chunks through one
//! shared atomic cursor (self-scheduling, so a slow chunk — e.g. the
//! k = 8 entry of a k-means sweep — does not stall the others), and the
//! per-chunk results are assembled **in chunk order** on the calling
//! thread. Everything else ([`Pool::map_index`], [`Pool::for_chunks`],
//! [`Pool::reduce_chunks`]) is built on it, which is what makes the
//! determinism guarantee a single proof obligation rather than four.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide worker-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while the current thread is a pool worker, so nested parallel
    /// calls degrade to sequential execution instead of spawning a second
    /// tier of threads.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Override the worker count for every subsequent parallel call in this
/// process (the `incprof --threads N` backing). `0` clears the override,
/// restoring `INCPROF_THREADS` / hardware sizing.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker count a parallel call issued now would use: the
/// [`set_threads`] override if set, else a positive integer
/// `INCPROF_THREADS` (invalid values are ignored), else
/// [`std::thread::available_parallelism`], else 1.
pub fn threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    if let Ok(v) = std::env::var("INCPROF_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Default chunk size for an `n`-element map: large enough to amortize
/// scheduling, small enough to load-balance, and a function of `n` only
/// (so chunk boundaries — hence any per-chunk float partials — are the
/// same for every worker count).
pub fn default_chunk(n: usize) -> usize {
    (n / 32).clamp(1, 1024)
}

/// Whether the current thread is already inside a pool worker.
fn in_pool() -> bool {
    IN_POOL.with(|f| f.get())
}

/// Per-call scheduling statistics, merged from the workers after the
/// scope joins and recorded into `incprof-obs` off the hot path.
#[derive(Debug, Default, Clone, Copy)]
struct CallStats {
    tasks: u64,
    steals: u64,
    queue_waits: u64,
}

impl CallStats {
    fn merge(&mut self, other: CallStats) {
        self.tasks += other.tasks;
        self.steals += other.steals;
        self.queue_waits += other.queue_waits;
    }
}

/// A handle on the worker pool: just a resolved worker count. Parallel
/// calls spawn scoped threads on demand (`std::thread::scope`), so there
/// is no persistent pool state to poison and borrowed data needs no
/// `'static` bound.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool sized by the current [`threads`] resolution.
    pub fn current() -> Pool {
        Pool::with_workers(threads())
    }

    /// A pool with an explicit worker count (clamped to at least 1).
    pub fn with_workers(workers: usize) -> Pool {
        Pool {
            workers: workers.max(1),
        }
    }

    /// The worker count this pool would use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether a call over `n` items in `nchunks` chunks should run
    /// inline: single worker, nothing to split, or already on a worker.
    fn sequential(&self, nchunks: usize) -> bool {
        self.workers <= 1 || nchunks <= 1 || in_pool()
    }

    /// The core primitive: apply `f` to each fixed chunk of `0..n` and
    /// return the per-chunk results **in chunk order**. Chunk boundaries
    /// depend only on `n` and `chunk`, so the result — including any
    /// floating-point partials formed inside `f` — is identical for every
    /// worker count.
    pub fn map_chunks<A, F>(&self, n: usize, chunk: usize, f: F) -> Vec<A>
    where
        A: Send,
        F: Fn(Range<usize>) -> A + Sync,
    {
        let chunk = chunk.max(1);
        let nchunks = n.div_ceil(chunk);
        let bounds = |c: usize| c * chunk..n.min((c + 1) * chunk);
        if self.sequential(nchunks) {
            return (0..nchunks).map(|c| f(bounds(c))).collect();
        }

        let workers = self.workers.min(nchunks);
        let cursor = AtomicUsize::new(0);
        let parts: Mutex<Vec<(usize, A)>> = Mutex::new(Vec::with_capacity(nchunks));
        let stats: Mutex<CallStats> = Mutex::new(CallStats::default());
        std::thread::scope(|s| {
            for w in 0..workers {
                let (cursor, parts, stats, f, bounds) = (&cursor, &parts, &stats, &f, &bounds);
                s.spawn(move || {
                    let _worker = WorkerGuard::enter();
                    let mut local = CallStats::default();
                    loop {
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= nchunks {
                            break;
                        }
                        local.tasks += 1;
                        if static_owner(c, nchunks, workers) != w {
                            local.steals += 1;
                        }
                        let out = f(bounds(c));
                        // lint: allow(D05, push under an uncontended mutex, held for one Vec push per completed chunk)
                        unpoisoned(parts.lock()).push((c, out));
                    }
                    if local.tasks == 0 {
                        // Arrived after the queue drained: pure spawn
                        // overhead, worth surfacing as a sizing signal.
                        local.queue_waits = 1;
                    }
                    // lint: allow(D05, one stats merge per worker exit, never inside the chunk loop)
                    unpoisoned(stats.lock()).merge(local);
                });
            }
        });

        record_call(unpoisoned(stats.into_inner()), workers);
        let mut parts = unpoisoned(parts.into_inner());
        parts.sort_unstable_by_key(|&(c, _)| c);
        debug_assert_eq!(parts.len(), nchunks, "every chunk produced a result");
        parts.into_iter().map(|(_, a)| a).collect()
    }

    /// Ordered parallel map over indices `0..n`: `out[i] = f(i)`.
    pub fn map_index<U, F>(&self, n: usize, chunk: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        let parts = self.map_chunks(n, chunk, |r| r.map(&f).collect::<Vec<U>>());
        let mut out = Vec::with_capacity(n);
        for p in parts {
            out.extend(p);
        }
        out
    }

    /// Run `f` over each fixed chunk of `0..n` for its side effects
    /// (e.g. filling disjoint output regions handed out by the caller).
    pub fn for_chunks<F>(&self, n: usize, chunk: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        self.map_chunks(n, chunk, f);
    }

    /// Chunked reduction: `map` turns each fixed chunk into a partial,
    /// and the partials are folded **in chunk order** on the calling
    /// thread. Because the sequential path forms the same per-chunk
    /// partials over the same boundaries, float reductions are
    /// bit-identical for every worker count. Returns `None` for `n == 0`.
    pub fn reduce_chunks<A, M, F>(&self, n: usize, chunk: usize, map: M, fold: F) -> Option<A>
    where
        A: Send,
        M: Fn(Range<usize>) -> A + Sync,
        F: Fn(A, A) -> A,
    {
        self.map_chunks(n, chunk, map).into_iter().reduce(fold)
    }
}

/// The worker that would own chunk `c` under a static block partition —
/// executing someone else's chunk counts as a steal.
fn static_owner(c: usize, nchunks: usize, workers: usize) -> usize {
    (c * workers / nchunks).min(workers - 1)
}

/// Unwrap a mutex `lock()`/`into_inner()` result. A poisoned pool mutex
/// means a sibling worker panicked mid-chunk; re-raising keeps that
/// original panic the loud failure instead of silently losing results.
fn unpoisoned<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    match r {
        Ok(v) => v,
        // lint: allow(P02, poison only follows a sibling worker's panic; re-panicking propagates that failure, it cannot fire on healthy runs)
        Err(_) => panic!("pool mutex poisoned: a sibling worker panicked"),
    }
}

/// RAII flag marking the current thread as a pool worker.
struct WorkerGuard;

impl WorkerGuard {
    fn enter() -> WorkerGuard {
        IN_POOL.with(|f| f.set(true));
        WorkerGuard
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        IN_POOL.with(|f| f.set(false));
    }
}

/// Record one parallel call's scheduling stats into `incprof-obs`.
fn record_call(stats: CallStats, workers: usize) {
    incprof_obs::counter(incprof_obs::names::PAR_POOL_CALLS).inc();
    incprof_obs::counter(incprof_obs::names::PAR_POOL_TASKS).add(stats.tasks);
    incprof_obs::counter(incprof_obs::names::PAR_POOL_STEALS).add(stats.steals);
    incprof_obs::counter(incprof_obs::names::PAR_POOL_QUEUE_WAITS).add(stats.queue_waits);
    incprof_obs::gauge(incprof_obs::names::PAR_POOL_WORKERS).record_max(workers as u64);
}

/// Ordered map over `0..n` on the [`Pool::current`] pool with the
/// [`default_chunk`] granularity.
pub fn par_map_index<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    Pool::current().map_index(n, default_chunk(n), f)
}

/// Ordered map over a slice on the [`Pool::current`] pool.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    Pool::current().map_index(items.len(), default_chunk(items.len()), |i| f(&items[i]))
}

/// Side-effect iteration over fixed chunks of `0..n` on the
/// [`Pool::current`] pool.
pub fn par_for_chunks<F>(n: usize, chunk: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    Pool::current().for_chunks(n, chunk, f)
}

/// Chunked, order-folded reduction over `0..n` on the [`Pool::current`]
/// pool (see [`Pool::reduce_chunks`]).
pub fn par_reduce_chunks<A, M, F>(n: usize, chunk: usize, map: M, fold: F) -> Option<A>
where
    A: Send,
    M: Fn(Range<usize>) -> A + Sync,
    F: Fn(A, A) -> A,
{
    Pool::current().reduce_chunks(n, chunk, map, fold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_index_is_ordered_for_every_worker_count() {
        let expect: Vec<usize> = (0..1000).map(|i| i * 3).collect();
        for workers in [1, 2, 3, 8, 17] {
            let pool = Pool::with_workers(workers);
            assert_eq!(pool.map_index(1000, 7, |i| i * 3), expect, "w={workers}");
        }
    }

    #[test]
    fn map_chunks_boundaries_are_fixed() {
        // Chunk boundaries must depend on (n, chunk) only: record them.
        let pool = Pool::with_workers(4);
        let ranges = pool.map_chunks(10, 4, |r| r);
        assert_eq!(ranges, vec![0..4, 4..8, 8..10]);
        let seq = Pool::with_workers(1).map_chunks(10, 4, |r| r);
        assert_eq!(ranges, seq);
    }

    #[test]
    fn float_reduction_is_bit_identical_across_worker_counts() {
        // Sums whose value depends on association order: 1/(i+1) partials.
        let reduce = |workers: usize| {
            Pool::with_workers(workers)
                .reduce_chunks(
                    10_000,
                    64,
                    |r| r.map(|i| 1.0f64 / (i + 1) as f64).sum::<f64>(),
                    |a, b| a + b,
                )
                .unwrap()
        };
        let one = reduce(1);
        for workers in [2, 3, 8] {
            assert_eq!(one.to_bits(), reduce(workers).to_bits(), "w={workers}");
        }
    }

    #[test]
    fn reduce_of_empty_range_is_none() {
        assert_eq!(
            Pool::with_workers(4).reduce_chunks(0, 8, |r| r.len(), |a, b| a + b),
            None
        );
    }

    #[test]
    fn nested_calls_run_sequentially_not_exponentially() {
        // A 4-worker outer map whose tasks each issue another parallel
        // call: the inner calls must degrade to inline execution (the
        // result is the same; this also must not deadlock or explode).
        let pool = Pool::with_workers(4);
        let out = pool.map_index(16, 1, |i| {
            let inner = Pool::with_workers(4).map_index(8, 2, move |j| i * 8 + j);
            inner.iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..16).map(|i| (0..8).map(|j| i * 8 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn for_chunks_covers_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        Pool::with_workers(3).for_chunks(100, 9, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn set_threads_overrides_and_clears() {
        set_threads(3);
        assert_eq!(threads(), 3);
        assert_eq!(Pool::current().workers(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }

    #[test]
    fn pool_records_scheduling_metrics() {
        let calls = incprof_obs::counter(incprof_obs::names::PAR_POOL_CALLS).get();
        let tasks = incprof_obs::counter(incprof_obs::names::PAR_POOL_TASKS).get();
        Pool::with_workers(4).map_index(64, 2, |i| i);
        assert_eq!(
            incprof_obs::counter(incprof_obs::names::PAR_POOL_CALLS).get(),
            calls + 1
        );
        assert_eq!(
            incprof_obs::counter(incprof_obs::names::PAR_POOL_TASKS).get(),
            tasks + 32
        );
        assert!(incprof_obs::gauge(incprof_obs::names::PAR_POOL_WORKERS).get() >= 1);
    }

    #[test]
    fn static_owner_partitions_evenly() {
        let owners: Vec<usize> = (0..8).map(|c| static_owner(c, 8, 4)).collect();
        assert_eq!(owners, vec![0, 0, 1, 1, 2, 2, 3, 3]);
        assert_eq!(static_owner(5, 6, 4), 3);
    }

    #[test]
    fn zero_and_tiny_inputs_work() {
        assert_eq!(Pool::with_workers(4).map_index(0, 8, |i| i), Vec::new());
        assert_eq!(par_map_index(1, |i| i + 1), vec![1]);
        assert_eq!(par_map(&[10, 20], |x| x + 1), vec![11, 21]);
    }
}
