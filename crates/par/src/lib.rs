//! # incprof-par
//!
//! The single parallelism surface of the IncProf stack: a dependency-free,
//! `std::thread::scope`-based worker pool with **deterministic** chunked
//! map / reduce primitives.
//!
//! The paper's analysis side — the k = 1..8 k-means sweep with elbow
//! selection (§V-A), Lloyd's assignment step, and the silhouette /
//! pairwise-distance work — is embarrassingly parallel, but a profiling
//! framework's analysis must stay *reproducible*: the phases reported for
//! a run cannot depend on how many cores happened to be available. Every
//! primitive here therefore guarantees **bit-identical results for any
//! worker count**, including one:
//!
//! * chunk boundaries are fixed by the input length alone (never by the
//!   worker count), so floating-point partials are formed over the same
//!   index ranges everywhere;
//! * partial results are merged **in chunk-index order** on the calling
//!   thread — there are no atomics-ordered float accumulations;
//! * nested calls from inside a pool worker run sequentially (same
//!   values, no thread explosion), so parallel stages compose freely.
//!
//! ## Sizing
//!
//! The worker count is resolved per call ([`threads`]): a process-wide
//! programmatic override ([`set_threads`], used by `incprof --threads N`)
//! wins, then the `INCPROF_THREADS` environment variable, then
//! [`std::thread::available_parallelism`].
//!
//! ## Observability
//!
//! Each parallel call records into [`incprof_obs`]: `par.pool.calls`,
//! `par.pool.tasks` (chunks executed), `par.pool.steals` (chunks executed
//! by a worker other than their static owner — load imbalance absorbed by
//! self-scheduling), `par.pool.queue_waits` (workers that arrived after
//! the queue had drained), and the `par.pool.workers` gauge.
//!
//! ## Entry points
//!
//! ```
//! // Ordered map over indices (chunked automatically):
//! let squares = incprof_par::par_map_index(100, |i| i * i);
//! assert_eq!(squares[7], 49);
//!
//! // Ordered map over a slice:
//! let data = vec![1.0f64, 2.0, 3.0];
//! let doubled = incprof_par::par_map(&data, |x| x * 2.0);
//! assert_eq!(doubled, vec![2.0, 4.0, 6.0]);
//!
//! // Chunked reduction with a deterministic (ordered) fold:
//! let total = incprof_par::par_reduce_chunks(1000, 64, |r| r.sum::<usize>(), |a, b| a + b);
//! assert_eq!(total, Some(999 * 1000 / 2));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod pool;

pub use pool::{
    default_chunk, par_for_chunks, par_map, par_map_index, par_reduce_chunks, set_threads, threads,
    Pool,
};
