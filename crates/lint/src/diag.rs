//! Diagnostics: rule identifiers, severities, and rendering.

use std::fmt;

/// The named project rules. See `docs/LINTS.md` for the full catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Wall-clock hygiene: `Instant::now` / `SystemTime` only in the
    /// clock abstraction, the wall collector, obs wall spans, and
    /// bench/harness code.
    D01,
    /// Deterministic iteration: no `HashMap`/`HashSet` in the analysis
    /// crates whose iteration order can reach serialized output.
    D02,
    /// Thread hygiene: `std::thread::{spawn,scope}` only in
    /// `incprof-par` and the collector.
    D03,
    /// Chunked float reductions: no raw `.sum()` in parallel-adjacent
    /// analysis code that bypasses `incprof_par::reduce_chunks`.
    D04,
    /// Metric-name registry: obs metric/span names must come from
    /// `incprof_obs::names`, never string literals at the call site.
    O01,
    /// Panic hygiene: no `.unwrap()` / `.expect()` in library crates
    /// outside tests without a justified allow marker.
    P01,
    /// Panic reachability: no `panic!`-family macro in library code
    /// that is public API or confidently reachable from one.
    P02,
    /// Blocking in workers: no lock/IO/sleep confidently reachable
    /// from the configured hot-path roots (`D05_ROOTS`).
    D05,
    /// Allocation in hot paths: no Vec/Box/String constructors
    /// confidently reachable from the per-snapshot ingest roots
    /// (`A01_ROOTS`), outside the setup allowlist.
    A01,
    /// Meta: malformed suppression marker (unknown rule, missing
    /// reason). Not suppressible.
    L00,
    /// Meta: a suppression marker that matched no diagnostic (stale
    /// after a refactor). Not suppressible.
    L01,
}

impl RuleId {
    /// All rules, in catalog order.
    pub const ALL: &'static [RuleId] = &[
        RuleId::D01,
        RuleId::D02,
        RuleId::D03,
        RuleId::D04,
        RuleId::O01,
        RuleId::P01,
        RuleId::P02,
        RuleId::D05,
        RuleId::A01,
        RuleId::L00,
        RuleId::L01,
    ];

    /// The rule's catalog identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::D01 => "D01",
            RuleId::D02 => "D02",
            RuleId::D03 => "D03",
            RuleId::D04 => "D04",
            RuleId::O01 => "O01",
            RuleId::P01 => "P01",
            RuleId::P02 => "P02",
            RuleId::D05 => "D05",
            RuleId::A01 => "A01",
            RuleId::L00 => "L00",
            RuleId::L01 => "L01",
        }
    }

    /// Parse a catalog identifier (case-sensitive, as documented).
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.as_str() == s)
    }

    /// One-line summary, used in `--list-rules` output.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::D01 => {
                "wall-clock hygiene: Instant::now/SystemTime outside the clock allowlist"
            }
            RuleId::D02 => "deterministic iteration: HashMap/HashSet banned in analysis crates",
            RuleId::D03 => "thread hygiene: threads spawned outside incprof-par/the collector",
            RuleId::D04 => {
                "chunked float reductions: raw .sum() in parallel-adjacent analysis code"
            }
            RuleId::O01 => "metric-name registry: literal obs names instead of incprof_obs::names",
            RuleId::P01 => {
                "panic hygiene: unwrap/expect in library code without a justified marker"
            }
            RuleId::P02 => "panic reachability: panic! macro reachable from a public library API",
            RuleId::D05 => "blocking in workers: lock/IO/sleep reachable from a hot-path root",
            RuleId::A01 => "alloc in hot path: allocation constructor reachable from ingest roots",
            RuleId::L00 => "malformed lint suppression marker",
            RuleId::L01 => "stale lint suppression (matched no diagnostic)",
        }
    }

    /// Whether a `// lint: allow(...)` marker may silence this rule.
    pub fn suppressible(self) -> bool {
        !matches!(self, RuleId::L00 | RuleId::L01)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How seriously a finding is treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Rule disabled; no diagnostics produced.
    Allow,
    /// Reported; fails the run only under `--deny-warnings`.
    Warn,
    /// Reported; always fails the run.
    Error,
}

impl Severity {
    /// Lowercase label used in human and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Warn => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding: a rule violated at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// Severity it was configured at when it fired.
    pub severity: Severity,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// What went wrong and what to do instead.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl Diagnostic {
    /// Render as `file:line: severity[RULE] message` plus the excerpt.
    pub fn render_human(&self) -> String {
        format!(
            "{}:{}: {}[{}] {}\n    | {}",
            self.file,
            self.line,
            self.severity.as_str(),
            self.rule,
            self.message,
            self.excerpt
        )
    }

    /// Render as one JSON object (hand-formatted; the lint crate is
    /// dependency-free by design).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\",\"excerpt\":\"{}\"}}",
            self.rule,
            self.severity.as_str(),
            json_escape(&self.file),
            self.line,
            json_escape(&self.message),
            json_escape(&self.excerpt)
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip() {
        for &r in RuleId::ALL {
            assert_eq!(RuleId::parse(r.as_str()), Some(r));
        }
        assert_eq!(RuleId::parse("D99"), None);
        assert_eq!(RuleId::parse("p01"), None, "identifiers are case-sensitive");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn meta_rules_are_not_suppressible() {
        assert!(!RuleId::L00.suppressible());
        assert!(!RuleId::L01.suppressible());
        assert!(RuleId::P01.suppressible());
    }
}
