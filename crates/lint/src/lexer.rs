//! A small, dependency-free Rust-source lexer.
//!
//! The rule engine needs just enough token structure to match patterns
//! like `Instant :: now` or `. unwrap (` without being fooled by the
//! same spelling inside strings, comments, or doc examples — a `grep`
//! cannot make that distinction, and a full parser is far more machine
//! than the rules require. The lexer therefore classifies the source
//! into identifiers, literals, and punctuation, tracks the 1-based line
//! of every token, and returns `//` comments separately so the engine
//! can parse `// lint: allow(...)` suppression markers out of them.
//!
//! Known approximations (acceptable for linting, documented in
//! `docs/LINTS.md`): numeric literals are scanned greedily rather than
//! validated, and lifetimes are separated from char literals by the
//! standard one-token lookahead heuristic.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `fn`, `HashMap`).
    Ident,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Numeric literal (`42`, `0x1f`, `1.5e3`, `7u64`).
    Number,
    /// A single punctuation character (`.`, `:`, `{`, …).
    Punct,
}

/// One lexed token: kind, text, and the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token classification.
    pub kind: TokenKind,
    /// The token text. For strings this is the *inner* text, without
    /// quotes or raw-string hashes, so rules can match names directly.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A `//` comment (line or doc), with the text after the slashes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based source line the comment starts on.
    pub line: u32,
    /// Comment body after the leading `//`, `///`, or `//!`.
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens, in source order.
    pub tokens: Vec<Token>,
    /// All `//`-style comments, in source order.
    pub comments: Vec<Comment>,
}

/// Lex `src` into tokens and comments. Never fails: unrecognized bytes
/// are skipped (a lint pass must keep going on source the compiler
/// would reject anyway).
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(ch) = c {
            self.pos += 1;
            if ch == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(line),
                'r' | 'b' | 'c' => {
                    if !self.raw_or_byte_literal(line) {
                        self.ident(line);
                    }
                }
                '\'' => self.lifetime_or_char(line),
                c if c.is_alphabetic() || c == '_' => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    self.bump();
                    if let Some(esc) = self.bump() {
                        text.push('\\');
                        text.push(esc);
                    }
                }
                '"' => {
                    self.bump();
                    break;
                }
                _ => {
                    text.push(c);
                    self.bump();
                }
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    /// Try to lex `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`, `c"…"`,
    /// or `cr#"…"#`. Returns false if the `r`/`b`/`c` starts a plain
    /// identifier instead.
    fn raw_or_byte_literal(&mut self, line: u32) -> bool {
        let mut ahead = 1; // past the r/b/c
        if matches!(self.peek(0), Some('b') | Some('c')) && self.peek(1) == Some('r') {
            ahead = 2;
        }
        if self.peek(0) == Some('b') && self.peek(1) == Some('\'') {
            self.bump(); // b
            self.lifetime_or_char(line);
            return true;
        }
        let mut hashes = 0usize;
        while self.peek(ahead) == Some('#') {
            ahead += 1;
            hashes += 1;
        }
        if self.peek(ahead) != Some('"') {
            // Anything that isn't a quote here means the r/b starts a
            // plain identifier like `radius` or `buf`.
            return false;
        }
        for _ in 0..=ahead {
            self.bump(); // prefix chars + opening quote
        }
        let mut text = String::new();
        loop {
            match self.peek(0) {
                None => break,
                Some('"') => {
                    // Need `hashes` following '#' to close a raw string.
                    let mut ok = true;
                    for i in 0..hashes {
                        if self.peek(1 + i) != Some('#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..=hashes {
                            self.bump();
                        }
                        break;
                    }
                    text.push('"');
                    self.bump();
                }
                Some('\\') if hashes == 0 => {
                    // Escapes only exist outside raw strings; `r"…"`
                    // (hashes==0 with r prefix) technically has none,
                    // but treating \" as literal there is harmless for
                    // pattern matching.
                    self.bump();
                    if let Some(esc) = self.bump() {
                        text.push('\\');
                        text.push(esc);
                    }
                }
                Some(c) => {
                    text.push(c);
                    self.bump();
                }
            }
        }
        self.push(TokenKind::Str, text, line);
        true
    }

    fn lifetime_or_char(&mut self, line: u32) {
        self.bump(); // opening '
                     // Lifetime: ' followed by an identifier NOT closed by another '.
        let first = self.peek(0);
        if let Some(c) = first {
            if (c.is_alphabetic() || c == '_') && self.peek(1) != Some('\'') {
                let mut text = String::new();
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokenKind::Lifetime, text, line);
                return;
            }
        }
        // Char literal.
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    self.bump();
                    if let Some(esc) = self.bump() {
                        text.push('\\');
                        text.push(esc);
                    }
                }
                '\'' => {
                    self.bump();
                    break;
                }
                _ => {
                    text.push(c);
                    self.bump();
                }
            }
        }
        self.push(TokenKind::Char, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        // Integer / prefix part (also swallows hex/octal/binary bodies
        // and type suffixes like `u64`).
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fraction: only when the dot is followed by a digit, so range
        // expressions like `0..n` keep their dots as punctuation.
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            text.push('.');
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.push(TokenKind::Number, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("foo.bar()");
        assert_eq!(
            t,
            vec![
                (TokenKind::Ident, "foo".into()),
                (TokenKind::Punct, ".".into()),
                (TokenKind::Ident, "bar".into()),
                (TokenKind::Punct, "(".into()),
                (TokenKind::Punct, ")".into()),
            ]
        );
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        let t = kinds(r#"let s = "Instant::now() .unwrap()";"#);
        assert!(t
            .iter()
            .all(|(k, x)| *k != TokenKind::Ident || x != "unwrap"));
        assert!(t
            .iter()
            .any(|(k, x)| *k == TokenKind::Str && x.contains("unwrap")));
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let l = lex("let x = 1; // lint: allow(P01, fine)\n/* Instant::now */ let y = 2;");
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("lint: allow(P01"));
        assert!(!l.tokens.iter().any(|t| t.is_ident("Instant")));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert!(l.tokens.iter().any(|t| t.is_ident("fn")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("inner")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let u = '_'; let l: &'_ str = x; }");
        let lifetimes: Vec<_> = t
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = t.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 3, "{t:?}");
        assert_eq!(chars.len(), 2, "{t:?}");
    }

    #[test]
    fn escaped_char_and_string() {
        let t = kinds(r#"let a = '\''; let b = "q\"q";"#);
        assert!(t.iter().any(|(k, x)| *k == TokenKind::Char && x == "\\'"));
        assert!(t.iter().any(|(k, x)| *k == TokenKind::Str && x == "q\\\"q"));
    }

    #[test]
    fn raw_strings() {
        let t = kinds(r###"let s = r#"Instant "quoted" body"#;"###);
        assert!(t
            .iter()
            .any(|(k, x)| *k == TokenKind::Str && x.contains("quoted")));
        assert!(!t
            .iter()
            .any(|(k, x)| *k == TokenKind::Ident && x == "Instant"));
    }

    #[test]
    fn byte_strings_lex_as_one_string_token() {
        let t = kinds(r#"let a = b"unwrap bytes"; done"#);
        assert!(t
            .iter()
            .any(|(k, x)| *k == TokenKind::Str && x == "unwrap bytes"));
        assert!(!t.iter().any(|(k, x)| *k == TokenKind::Ident && x == "b"));
        assert!(!t
            .iter()
            .any(|(k, x)| *k == TokenKind::Ident && x == "unwrap"));
    }

    #[test]
    fn raw_byte_strings_lex_as_one_string_token() {
        let t = kinds(r###"let a = br#"Instant "raw" bytes"#; done"###);
        assert!(t
            .iter()
            .any(|(k, x)| *k == TokenKind::Str && x.contains("raw")));
        assert!(!t.iter().any(|(k, x)| *k == TokenKind::Ident && x == "br"));
        assert!(!t
            .iter()
            .any(|(k, x)| *k == TokenKind::Ident && x == "Instant"));
    }

    #[test]
    fn c_strings_lex_as_one_string_token() {
        let t = kinds(r#"let a = c"unwrap cstr"; done"#);
        assert!(t
            .iter()
            .any(|(k, x)| *k == TokenKind::Str && x == "unwrap cstr"));
        assert!(!t.iter().any(|(k, x)| *k == TokenKind::Ident && x == "c"));
        assert!(!t
            .iter()
            .any(|(k, x)| *k == TokenKind::Ident && x == "unwrap"));
        let raw = kinds(r###"let a = cr#"HashMap "inner""#; done"###);
        assert!(raw
            .iter()
            .any(|(k, x)| *k == TokenKind::Str && x.contains("inner")));
        assert!(!raw
            .iter()
            .any(|(k, x)| *k == TokenKind::Ident && x == "HashMap"));
    }

    #[test]
    fn byte_prefixed_identifiers_stay_identifiers() {
        let t = kinds("let buf = bread + crate_name + radius;");
        for want in ["buf", "bread", "crate_name", "radius"] {
            assert!(
                t.iter().any(|(k, x)| *k == TokenKind::Ident && x == want),
                "{want} should lex as an identifier: {t:?}"
            );
        }
        assert!(!t.iter().any(|(k, _)| *k == TokenKind::Str));
    }

    #[test]
    fn numbers_and_ranges() {
        let t = kinds("for i in 0..n { let x = 1.5e3f64 + 0x1f; }");
        let nums: Vec<_> = t
            .iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|(_, x)| x.clone())
            .collect();
        assert_eq!(nums, vec!["0", "1.5e3f64", "0x1f"]);
        // The range dots survive as punctuation.
        assert_eq!(
            t.iter()
                .filter(|(k, x)| *k == TokenKind::Punct && x == ".")
                .count(),
            2
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn multiline_string_advances_lines() {
        let l = lex("let s = \"one\ntwo\";\nnext");
        let next = l.tokens.iter().find(|t| t.is_ident("next"));
        assert_eq!(next.map(|t| t.line), Some(3));
    }
}
