//! The `incprof-lint` binary: lint the workspace and exit nonzero on
//! violations. Exit codes: 0 clean, 1 violations found, 2 usage error.

use incprof_lint::{find_workspace_root, lint_workspace, Config, RuleId, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
incprof-lint: enforce IncProf's determinism, clock, and panic invariants

USAGE:
    incprof-lint [ROOT] [OPTIONS]

ARGS:
    ROOT                workspace root to lint (default: discovered from cwd)

OPTIONS:
    --format text|json  output format (default: text)
    --json PATH         additionally write the JSON report to PATH
    --allow RULE        disable a rule (e.g. --allow D04)
    --warn RULE         demote a rule to warning
    --deny RULE         promote a rule to error
    -D, --deny-warnings treat warnings as errors for exit-code purposes
    --list-rules        print the rule catalog and exit
    -h, --help          print this help and exit
";

struct Args {
    root: Option<PathBuf>,
    format_json: bool,
    json_path: Option<PathBuf>,
    config: Config,
    list_rules: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        root: None,
        format_json: false,
        json_path: None,
        config: Config::default(),
        list_rules: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "--list-rules" => args.list_rules = true,
            "-D" | "--deny-warnings" => args.config.deny_warnings = true,
            "--format" => match it.next().map(String::as_str) {
                Some("text") => args.format_json = false,
                Some("json") => args.format_json = true,
                other => {
                    return Err(format!(
                        "--format expects `text` or `json`, got {:?}",
                        other.unwrap_or("<missing>")
                    ))
                }
            },
            "--json" => match it.next() {
                Some(p) => args.json_path = Some(PathBuf::from(p)),
                None => return Err("--json expects a path".to_owned()),
            },
            "--allow" | "--warn" | "--deny" => {
                let Some(rule_text) = it.next() else {
                    return Err(format!("{arg} expects a rule ID"));
                };
                let Some(rule) = RuleId::parse(rule_text) else {
                    return Err(format!("unknown rule `{rule_text}`"));
                };
                let sev = match arg.as_str() {
                    "--allow" => Severity::Allow,
                    "--warn" => Severity::Warn,
                    _ => Severity::Error,
                };
                args.config.set_severity(rule, sev);
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown option `{flag}`"));
            }
            path => {
                if args.root.is_some() {
                    return Err(format!("unexpected extra argument `{path}`"));
                }
                args.root = Some(PathBuf::from(path));
            }
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for &rule in RuleId::ALL {
            println!("{rule}  {}", rule.summary());
        }
        return ExitCode::SUCCESS;
    }

    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match lint_workspace(&root, &args.config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: failed to lint {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.json_path {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(path, report.render_json()) {
            eprintln!("error: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if args.format_json {
        println!("{}", report.render_json());
    } else {
        println!("{}", report.render_human());
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
