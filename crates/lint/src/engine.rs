//! The lint engine: walk the workspace, run the rules, apply
//! suppressions, and render the results.

use crate::callgraph::StaticCallGraph;
use crate::config::{self, Config};
use crate::dataflow::Reachability;
use crate::diag::{Diagnostic, RuleId, Severity};
use crate::lexer::Token;
use crate::parse::{self, ParsedFile};
use crate::rules;
use crate::source::SourceFile;
use crate::symbols::SymbolTable;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// The product of the multi-pass static analysis: the symbol table,
/// the call graph, and reachability over its confident edges. Built
/// once per run, shared by the graph rules (P02/D05/A01) and the
/// `incprof sca` / `incprof callgraph` exports.
pub struct WorkspaceAnalysis {
    /// Function definitions and name indexes.
    pub symbols: SymbolTable,
    /// Call edges with confidence labels, plus per-body hazard facts.
    pub graph: StaticCallGraph,
    /// Forward/reverse reachability over confident edges.
    pub reach: Reachability,
}

impl WorkspaceAnalysis {
    /// Parse items, resolve symbols, and link the call graph for the
    /// given file set.
    pub fn build(files: &[SourceFile]) -> WorkspaceAnalysis {
        let mut parsed: BTreeMap<String, ParsedFile> = BTreeMap::new();
        let mut tokens: BTreeMap<String, Vec<Token>> = BTreeMap::new();
        for f in files {
            parsed.insert(f.rel_path.clone(), parse::parse_items(&f.tokens));
            tokens.insert(f.rel_path.clone(), f.tokens.clone());
        }
        let symbols = SymbolTable::build(&parsed);
        let graph = StaticCallGraph::build(&symbols, &tokens, &parsed);
        let reach = Reachability::build(&graph);
        WorkspaceAnalysis {
            symbols,
            graph,
            reach,
        }
    }
}

/// The outcome of a lint run.
#[derive(Debug)]
pub struct LintReport {
    /// Source files scanned.
    pub files_scanned: usize,
    /// Surviving diagnostics, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Suppression markers that silenced a diagnostic.
    pub suppressions_used: usize,
    /// Whether warnings fail the run (from the config).
    pub deny_warnings: bool,
}

impl LintReport {
    /// Count of error-severity diagnostics.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Count of warning-severity diagnostics.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// Whether the run passes under its configuration. (`deny_warnings`
    /// was already applied when severities were resolved, so only
    /// errors can fail a run.)
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }

    /// Per-rule diagnostic counts.
    pub fn counts(&self) -> BTreeMap<RuleId, usize> {
        let mut m = BTreeMap::new();
        for d in &self.diagnostics {
            *m.entry(d.rule).or_insert(0) += 1;
        }
        m
    }

    /// Human-readable rendering: every diagnostic plus a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render_human());
            out.push('\n');
        }
        out.push_str(&format!(
            "lint: {} files scanned, {} errors, {} warnings, {} suppressions honored",
            self.files_scanned,
            self.errors(),
            self.warnings(),
            self.suppressions_used
        ));
        out
    }

    /// JSON rendering: a single stable object with per-rule counts and
    /// the diagnostic list, for CI artifacts.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"errors\": {},\n", self.errors()));
        out.push_str(&format!("  \"warnings\": {},\n", self.warnings()));
        out.push_str(&format!(
            "  \"suppressions_used\": {},\n",
            self.suppressions_used
        ));
        out.push_str("  \"counts\": {");
        let counts = self.counts();
        let mut first = true;
        for (rule, n) in &counts {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("\"{rule}\": {n}"));
        }
        out.push_str("},\n");
        out.push_str("  \"diagnostics\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&d.render_json());
            if i + 1 < self.diagnostics.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}");
        out
    }
}

/// Lint a single in-memory file: run the rules, then apply this file's
/// suppression markers. Returns surviving diagnostics (including L00
/// for malformed markers and L01 for stale ones). This is the unit the
/// fixture tests drive.
pub fn lint_source(rel_path: &str, text: &str, cfg: &Config) -> Vec<Diagnostic> {
    let (diags, _used) = lint_source_counted(rel_path, text, cfg);
    diags
}

/// As [`lint_source`], also returning how many suppressions fired.
pub fn lint_source_counted(rel_path: &str, text: &str, cfg: &Config) -> (Vec<Diagnostic>, usize) {
    let (report, _analysis) = lint_files(&[(rel_path.to_owned(), text.to_owned())], cfg);
    (report.diagnostics, report.suppressions_used)
}

/// The multi-pass core: lint a set of in-memory files as one unit.
/// Per-file rules run on each file, the workspace analysis links them
/// into a call graph, the graph rules (P02/D05/A01) run over the
/// whole, and every file's suppressions apply uniformly at the end.
pub fn lint_files(inputs: &[(String, String)], cfg: &Config) -> (LintReport, WorkspaceAnalysis) {
    let files: Vec<SourceFile> = inputs
        .iter()
        .map(|(p, t)| SourceFile::parse(p, t))
        .collect();
    let analysis = WorkspaceAnalysis::build(&files);

    let mut per_file_raw: Vec<Vec<Diagnostic>> =
        files.iter().map(|f| rules::run_rules(f, cfg)).collect();
    let by_path: BTreeMap<&str, usize> = files
        .iter()
        .enumerate()
        .map(|(i, f)| (f.rel_path.as_str(), i))
        .collect();
    for d in rules::run_graph_rules(&files, &analysis, cfg) {
        if let Some(&i) = by_path.get(d.file.as_str()) {
            per_file_raw[i].push(d);
        }
    }

    let mut diagnostics = Vec::new();
    let mut suppressions_used = 0usize;
    for (file, raw) in files.iter().zip(per_file_raw) {
        let (mut diags, used) = apply_suppressions(file, raw, cfg);
        diagnostics.append(&mut diags);
        suppressions_used += used;
    }
    diagnostics
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    (
        LintReport {
            files_scanned: files.len(),
            diagnostics,
            suppressions_used,
            deny_warnings: cfg.deny_warnings,
        },
        analysis,
    )
}

/// Apply one file's suppression markers to its raw diagnostics, then
/// append the meta-diagnostics (L00 malformed, L01 stale).
fn apply_suppressions(
    file: &SourceFile,
    raw: Vec<Diagnostic>,
    cfg: &Config,
) -> (Vec<Diagnostic>, usize) {
    // A marker suppresses every diagnostic of its rule on its target
    // line (one line can hold two calls the same marker vouches for).
    let mut used = vec![false; file.suppressions.len()];
    let mut diags: Vec<Diagnostic> = Vec::new();
    for d in raw {
        let mut suppressed = false;
        for (si, s) in file.suppressions.iter().enumerate() {
            if s.rule == d.rule && s.target_line == d.line {
                used[si] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            diags.push(d);
        }
    }
    let used_count = used.iter().filter(|&&u| u).count();

    // Meta-diagnostics. Both are skipped inside test code: lint
    // fixtures legitimately hold malformed or dangling markers.
    for bad in &file.bad_markers {
        let severity = cfg.effective_severity(RuleId::L00);
        if severity == Severity::Allow || file.is_test_line(bad.line) {
            continue;
        }
        diags.push(Diagnostic {
            rule: RuleId::L00,
            severity,
            file: file.rel_path.clone(),
            line: bad.line,
            message: bad.problem.clone(),
            excerpt: file.excerpt(bad.line),
        });
    }
    for (si, s) in file.suppressions.iter().enumerate() {
        if used[si] || file.is_test_line(s.marker_line) {
            continue;
        }
        let severity = cfg.effective_severity(RuleId::L01);
        if severity == Severity::Allow {
            continue;
        }
        diags.push(Diagnostic {
            rule: RuleId::L01,
            severity,
            file: file.rel_path.clone(),
            line: s.marker_line,
            message: format!(
                "suppression `allow({}, ...)` matched no diagnostic; delete the \
                 stale marker",
                s.rule
            ),
            excerpt: file.excerpt(s.marker_line),
        });
    }

    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    (diags, used_count)
}

/// Lint every project source file under `root` (a workspace checkout).
///
/// The walk is fully deterministic: directory entries are sorted, shims
/// and build output are skipped, and diagnostics come back ordered by
/// (file, line, rule). Progress is surfaced through `incprof-obs`.
pub fn lint_workspace(root: &Path, cfg: &Config) -> io::Result<LintReport> {
    lint_workspace_analyzed(root, cfg).map(|(report, _)| report)
}

/// As [`lint_workspace`], also returning the workspace analysis so
/// callers (`incprof sca`, `incprof callgraph`) can export the call
/// graph without a second pass.
pub fn lint_workspace_analyzed(
    root: &Path,
    cfg: &Config,
) -> io::Result<(LintReport, WorkspaceAnalysis)> {
    let _span = incprof_obs::span(incprof_obs::names::LINT_RUN);
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut inputs: Vec<(String, String)> = Vec::with_capacity(files.len());
    for path in &files {
        inputs.push((rel_path(root, path), std::fs::read_to_string(path)?));
    }
    let (report, analysis) = lint_files(&inputs, cfg);

    let (confident, ambiguous) = analysis.graph.edge_counts();
    incprof_obs::counter(incprof_obs::names::LINT_FILES_SCANNED).add(files.len() as u64);
    incprof_obs::counter(incprof_obs::names::LINT_DIAGNOSTICS_TOTAL)
        .add(report.diagnostics.len() as u64);
    incprof_obs::counter(incprof_obs::names::LINT_SUPPRESSIONS_USED)
        .add(report.suppressions_used as u64);
    incprof_obs::counter(incprof_obs::names::SCA_FUNCTIONS).add(analysis.symbols.defs.len() as u64);
    incprof_obs::counter(incprof_obs::names::SCA_EDGES_CONFIDENT).add(confident as u64);
    incprof_obs::counter(incprof_obs::names::SCA_EDGES_AMBIGUOUS).add(ambiguous as u64);

    Ok((report, analysis))
}

/// Build a [`WorkspaceAnalysis`] over only the `.rs` files under
/// `root/subdir`, with paths still workspace-relative so crate scoping
/// matches a full run. Used by `incprof callgraph` and the serve daemon
/// to build the apps' static graph without analyzing the whole
/// workspace.
pub fn analyze_subtree(root: &Path, subdir: &str) -> io::Result<WorkspaceAnalysis> {
    let mut paths = Vec::new();
    collect_rs_files(root, &root.join(subdir), &mut paths)?;
    paths.sort();
    let files: Vec<SourceFile> = paths
        .iter()
        .map(|p| {
            std::fs::read_to_string(p).map(|text| SourceFile::parse(&rel_path(root, p), &text))
        })
        .collect::<io::Result<_>>()?;
    Ok(WorkspaceAnalysis::build(&files))
}

/// Walk upward from `start` to the directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    // Forward slashes keep the scope tables platform-independent.
    rel.to_string_lossy().replace('\\', "/")
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let rel = rel_path(root, &path);
        if config::SKIP_PREFIXES
            .iter()
            .any(|p| rel.starts_with(p) || rel == p.trim_end_matches('/'))
        {
            continue;
        }
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if name.starts_with('.') {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_silences_and_counts() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // lint: allow(P01, invariant)\n    x.unwrap()\n}\n";
        let (diags, used) = lint_source_counted("crates/core/src/x.rs", src, &Config::default());
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(used, 1);
    }

    #[test]
    fn stale_suppression_is_reported_as_l01() {
        let src = "// lint: allow(P01, nothing here anymore)\nfn f() {}\n";
        let diags = lint_source("crates/core/src/x.rs", src, &Config::default());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::L01);
        assert_eq!(diags[0].severity, Severity::Warn);
    }

    #[test]
    fn malformed_marker_is_reported_as_l00() {
        let src = "// lint: allow(P01)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let diags = lint_source("crates/core/src/x.rs", src, &Config::default());
        let rules: Vec<RuleId> = diags.iter().map(|d| d.rule).collect();
        // The marker is malformed, so the unwrap still fires too.
        assert_eq!(rules, vec![RuleId::L00, RuleId::P01]);
    }

    #[test]
    fn one_marker_covers_two_same_rule_hits_on_a_line() {
        let src = "fn f(x: Option<u32>, y: Option<u32>) -> u32 {\n    // lint: allow(P01, both checked above)\n    x.unwrap() + y.unwrap()\n}\n";
        let (diags, used) = lint_source_counted("crates/core/src/x.rs", src, &Config::default());
        assert!(diags.is_empty());
        assert_eq!(used, 1);
    }

    #[test]
    fn wrong_rule_marker_does_not_suppress() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // lint: allow(D01, wrong rule)\n    x.unwrap()\n}\n";
        let diags = lint_source("crates/core/src/x.rs", src, &Config::default());
        let rules: Vec<RuleId> = diags.iter().map(|d| d.rule).collect();
        // The unwrap fires AND the marker is stale.
        assert_eq!(rules, vec![RuleId::L01, RuleId::P01]);
    }

    #[test]
    fn report_renders_summary_and_json() {
        let diags = lint_source(
            "crates/core/src/x.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
            &Config::default(),
        );
        let report = LintReport {
            files_scanned: 1,
            diagnostics: diags,
            suppressions_used: 0,
            deny_warnings: false,
        };
        assert!(!report.is_clean());
        let human = report.render_human();
        assert!(human.contains("error[P01]"));
        assert!(human.contains("crates/core/src/x.rs:1"));
        let json = report.render_json();
        assert!(json.contains("\"rule\":\"P01\""));
        assert!(json.contains("\"files_scanned\": 1"));
    }

    #[test]
    fn allow_severity_disables_a_rule() {
        let mut cfg = Config::default();
        cfg.set_severity(RuleId::P01, Severity::Allow);
        let diags = lint_source(
            "crates/core/src/x.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
            &cfg,
        );
        assert!(diags.is_empty());
    }

    #[test]
    fn p02_fires_transitively_from_public_api() {
        let inputs = vec![
            (
                "crates/core/src/api.rs".to_owned(),
                "pub fn api() { crate::inner::helper(); }\n".to_owned(),
            ),
            (
                "crates/core/src/inner.rs".to_owned(),
                "pub fn helper() { deep(); }\nfn deep() { panic!(\"boom\"); }\n".to_owned(),
            ),
        ];
        let (report, _) = lint_files(&inputs, &Config::default());
        let p02: Vec<&Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == RuleId::P02)
            .collect();
        assert_eq!(p02.len(), 1, "{:?}", report.diagnostics);
        assert_eq!(p02[0].file, "crates/core/src/inner.rs");
        assert_eq!(p02[0].line, 2);
        assert!(
            p02[0].message.contains("helper -> deep"),
            "{}",
            p02[0].message
        );
    }

    #[test]
    fn p02_ignores_private_dead_code_and_non_library_crates() {
        // Private, never called from a pub fn → not flagged.
        let (report, _) = lint_files(
            &[(
                "crates/core/src/x.rs".to_owned(),
                "fn orphan() { panic!(\"never\"); }\n".to_owned(),
            )],
            &Config::default(),
        );
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        // Same shape in a binary crate → out of P02 scope.
        let (report, _) = lint_files(
            &[(
                "crates/cli/src/x.rs".to_owned(),
                "pub fn main_ish() { panic!(\"usage\"); }\n".to_owned(),
            )],
            &Config::default(),
        );
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn p02_suppressed_by_line_marker() {
        let src = "pub fn api() {\n    // lint: allow(P02, input validated by construction)\n    unreachable!(\"checked\");\n}\n";
        let (report, _) = lint_files(
            &[("crates/core/src/x.rs".to_owned(), src.to_owned())],
            &Config::default(),
        );
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        assert_eq!(report.suppressions_used, 1);
    }

    #[test]
    fn d05_flags_blocking_reachable_from_configured_root() {
        let src = "struct Session;\nimpl Session {\n    pub fn drain_traced(&mut self) { self.persist(); }\n    fn persist(&self) { std::fs::read_to_string(\"x\"); }\n}\n";
        let (report, _) = lint_files(
            &[("crates/serve/src/x.rs".to_owned(), src.to_owned())],
            &Config::default(),
        );
        let d05: Vec<&Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == RuleId::D05)
            .collect();
        assert_eq!(d05.len(), 1, "{:?}", report.diagnostics);
        assert_eq!(d05[0].line, 4);
        assert!(d05[0].message.contains("Session::drain_traced"));
    }

    #[test]
    fn d05_silent_when_blocking_is_unreachable_from_roots() {
        let src = "pub fn cold_setup() { std::fs::read_to_string(\"cfg\"); }\n";
        let (report, _) = lint_files(
            &[("crates/serve/src/x.rs".to_owned(), src.to_owned())],
            &Config::default(),
        );
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn a01_flags_alloc_in_ingest_and_respects_allowlist() {
        let src = "struct Session;\nimpl Session {\n    pub fn enqueue(&mut self) { let buf: Vec<u8> = Vec::with_capacity(64); }\n}\n";
        let (report, _) = lint_files(
            &[("crates/serve/src/x.rs".to_owned(), src.to_owned())],
            &Config::default(),
        );
        let a01: Vec<&Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == RuleId::A01)
            .collect();
        assert_eq!(a01.len(), 1, "{:?}", report.diagnostics);
        assert_eq!(a01[0].severity, Severity::Warn);
        // The same file on the allowlist is exempt.
        let mut cfg = Config::default();
        cfg.a01_allow.push("crates/serve/src/x.rs".to_owned());
        let (report, _) = lint_files(
            &[("crates/serve/src/x.rs".to_owned(), src.to_owned())],
            &cfg,
        );
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn ambiguous_edges_never_fire_graph_rules() {
        // Two candidate callees; one panics. The edge is ambiguous, so
        // P02 must not fire through it (misses are recoverable, false
        // positives are not).
        let inputs = vec![
            (
                "crates/core/src/a.rs".to_owned(),
                "pub fn shared() { panic!(\"a\"); }\n".to_owned(),
            ),
            (
                "crates/par/src/lib.rs".to_owned(),
                "pub fn shared() {}\n".to_owned(),
            ),
            (
                "crates/obs/src/lib.rs".to_owned(),
                "pub fn run() { shared(); }\n".to_owned(),
            ),
        ];
        let (report, _) = lint_files(&inputs, &Config::default());
        // Only the direct P02 on core's own pub `shared` fires.
        let p02: Vec<&Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == RuleId::P02)
            .collect();
        assert_eq!(p02.len(), 1);
        assert_eq!(p02[0].file, "crates/core/src/a.rs");
    }

    #[test]
    fn multi_rule_marker_suppresses_both_and_counts_separately() {
        let src = "pub fn api() {\n    // lint: allow(P01, P02, the slot is filled two lines up)\n    x.get(0).unwrap(); panic!(\"never\");\n}\n";
        let (report, _) = lint_files(
            &[("crates/core/src/x.rs".to_owned(), src.to_owned())],
            &Config::default(),
        );
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        assert_eq!(report.suppressions_used, 2);
    }

    #[test]
    fn find_root_walks_upward() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here);
        assert!(root.is_some());
        let root = root.map(|r| r.join("Cargo.toml"));
        assert!(root.is_some_and(|r| r.exists()));
    }
}
