//! Reachability analysis over the static call graph.
//!
//! This is the "dataflow" layer the graph rules stand on: given the
//! call graph, compute which hazard facts are transitively reachable
//! from which functions, and produce a witness call path for each
//! (root → … → hazard site) so diagnostics can explain *why* a line is
//! flagged rather than just *that* it is.
//!
//! Propagation uses **confident edges only**. Ambiguous edges (multiple
//! candidates, untyped receivers) are deliberately excluded: a wrong
//! guess there would manufacture false positives, and the whole point
//! of the confidence labels is that a miss is recoverable (human
//! review of the ambiguous-edge list) while a false alarm erodes trust
//! in the gate. Closures are invisible to the item parser, so hazards
//! inside them attach to the enclosing function — an over-approximation
//! in the safe direction.

use crate::callgraph::{Confidence, FactKind, StaticCallGraph};
use crate::symbols::SymbolTable;

/// Reachability over the confident-edge subgraph.
#[derive(Debug, Clone)]
pub struct Reachability {
    /// Adjacency (confident edges only): `succ[n]` = nodes n calls.
    succ: Vec<Vec<usize>>,
    /// Reverse adjacency: `pred[n]` = nodes that call n.
    pred: Vec<Vec<usize>>,
}

impl Reachability {
    /// Build from the graph's confident edges.
    pub fn build(graph: &StaticCallGraph) -> Reachability {
        let n = graph.nodes;
        let mut succ = vec![Vec::new(); n];
        let mut pred = vec![Vec::new(); n];
        for e in &graph.edges {
            if e.confidence == Confidence::Confident {
                succ[e.caller].push(e.callee);
                pred[e.callee].push(e.caller);
            }
        }
        for v in succ.iter_mut().chain(pred.iter_mut()) {
            v.sort_unstable();
            v.dedup();
        }
        Reachability { succ, pred }
    }

    /// All nodes reachable from `roots` (inclusive), via BFS in
    /// deterministic node order.
    pub fn reachable_from(&self, roots: &[usize]) -> Vec<bool> {
        self.walk(roots, &self.succ)
    }

    /// All nodes that can reach `targets` (inclusive) — reverse
    /// reachability.
    pub fn can_reach(&self, targets: &[usize]) -> Vec<bool> {
        self.walk(targets, &self.pred)
    }

    fn walk(&self, starts: &[usize], adj: &[Vec<usize>]) -> Vec<bool> {
        let mut seen = vec![false; adj.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &s in starts {
            if s < seen.len() && !seen[s] {
                seen[s] = true;
                queue.push(s);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    queue.push(v);
                }
            }
        }
        seen
    }

    /// A shortest call path `from → … → to` over confident edges, as
    /// node indices. `None` when unreachable. BFS visits neighbors in
    /// sorted order, so the witness is deterministic.
    pub fn witness_path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        if from >= self.succ.len() || to >= self.succ.len() {
            return None;
        }
        if from == to {
            return Some(vec![from]);
        }
        let mut prev = vec![usize::MAX; self.succ.len()];
        let mut queue = vec![from];
        prev[from] = from;
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &v in &self.succ[u] {
                if prev[v] == usize::MAX {
                    prev[v] = u;
                    if v == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while cur != from {
                            cur = prev[cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push(v);
                }
            }
        }
        None
    }

    /// Render a witness path as `a -> b -> c` using qualified names.
    pub fn render_path(symbols: &SymbolTable, path: &[usize]) -> String {
        path.iter()
            .map(|&i| symbols.defs[i].qualified.as_str())
            .collect::<Vec<_>>()
            .join(" -> ")
    }

    /// Call-depth of every node measured from the given roots (0 for a
    /// root, `None` when unreachable).
    pub fn depths_from(&self, roots: &[usize]) -> Vec<Option<usize>> {
        let mut depth = vec![None; self.succ.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &r in roots {
            if r < depth.len() && depth[r].is_none() {
                depth[r] = Some(0);
                queue.push(r);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            let d = depth[u].unwrap_or(0);
            for &v in &self.succ[u] {
                if depth[v].is_none() {
                    depth[v] = Some(d + 1);
                    queue.push(v);
                }
            }
        }
        depth
    }
}

/// For each node, whether a fact of `kind` is reachable from it over
/// confident edges (facts in the node's own body count).
pub fn nodes_reaching_fact(
    graph: &StaticCallGraph,
    reach: &Reachability,
    kind: FactKind,
) -> Vec<bool> {
    let carriers: Vec<usize> = graph
        .facts
        .iter()
        .filter(|f| f.kind == kind)
        .map(|f| f.node)
        .collect();
    reach.can_reach(&carriers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_items;
    use crate::symbols::SymbolTable;
    use std::collections::BTreeMap;

    fn build(files: &[(&str, &str)]) -> (SymbolTable, StaticCallGraph, Reachability) {
        let mut tokens = BTreeMap::new();
        let mut parsed = BTreeMap::new();
        for (p, src) in files {
            let toks = lex(src).tokens;
            parsed.insert(p.to_string(), parse_items(&toks));
            tokens.insert(p.to_string(), toks);
        }
        let symbols = SymbolTable::build(&parsed);
        let graph = StaticCallGraph::build(&symbols, &tokens, &parsed);
        let reach = Reachability::build(&graph);
        (symbols, graph, reach)
    }

    fn idx(s: &SymbolTable, q: &str) -> usize {
        s.defs.iter().position(|d| d.qualified == q).unwrap()
    }

    #[test]
    fn transitive_reachability_and_witness() {
        let (s, _g, r) = build(&[(
            "crates/core/src/a.rs",
            "pub fn top() { mid(); }\nfn mid() { bottom(); }\nfn bottom() {}\nfn isolated() {}\n",
        )]);
        let top = idx(&s, "top");
        let bottom = idx(&s, "bottom");
        let isolated = idx(&s, "isolated");
        let fwd = r.reachable_from(&[top]);
        assert!(fwd[bottom]);
        assert!(!fwd[isolated]);
        let path = r.witness_path(top, bottom).unwrap();
        assert_eq!(Reachability::render_path(&s, &path), "top -> mid -> bottom");
        assert_eq!(r.witness_path(bottom, top), None);
    }

    #[test]
    fn panic_facts_propagate_to_callers() {
        let (s, g, r) = build(&[(
            "crates/core/src/a.rs",
            "pub fn api() { inner(); }\nfn inner() { panic!(\"boom\"); }\npub fn clean() {}\n",
        )]);
        let reaches = nodes_reaching_fact(&g, &r, FactKind::Panic);
        assert!(reaches[idx(&s, "api")]);
        assert!(reaches[idx(&s, "inner")]);
        assert!(!reaches[idx(&s, "clean")]);
    }

    #[test]
    fn ambiguous_edges_do_not_propagate() {
        let (s, g, r) = build(&[
            // Two `shared` defs in different crates → ambiguous from cli.
            (
                "crates/core/src/a.rs",
                "pub fn shared() { panic!(\"a\"); }\n",
            ),
            ("crates/par/src/lib.rs", "pub fn shared() {}\n"),
            ("crates/cli/src/lib.rs", "pub fn run() { shared(); }\n"),
        ]);
        let reaches = nodes_reaching_fact(&g, &r, FactKind::Panic);
        assert!(reaches[idx(&s, "shared")]); // core's own def carries it
        assert!(
            !reaches[idx(&s, "run")],
            "ambiguous edge must not carry hazards"
        );
    }

    #[test]
    fn depths_from_roots() {
        let (s, _g, r) = build(&[(
            "crates/core/src/a.rs",
            "pub fn root() { a(); }\nfn a() { b(); }\nfn b() {}\n",
        )]);
        let depths = r.depths_from(&[idx(&s, "root")]);
        assert_eq!(depths[idx(&s, "root")], Some(0));
        assert_eq!(depths[idx(&s, "a")], Some(1));
        assert_eq!(depths[idx(&s, "b")], Some(2));
    }

    #[test]
    fn cycles_terminate() {
        let (s, _g, r) = build(&[(
            "crates/core/src/a.rs",
            "pub fn ping() { pong(); }\npub fn pong() { ping(); }\n",
        )]);
        let fwd = r.reachable_from(&[idx(&s, "ping")]);
        assert!(fwd[idx(&s, "pong")]);
        let path = r.witness_path(idx(&s, "ping"), idx(&s, "pong")).unwrap();
        assert_eq!(path.len(), 2);
    }
}
