//! The project rules, as token-pattern matchers over a [`SourceFile`].
//!
//! Every rule is conservative on purpose: it matches the *spelling* of
//! a hazard (`HashMap` in an analysis crate, `.sum(` next to the pool)
//! rather than proving a data flow, and relies on the mandatory-reason
//! suppression mechanism for the sites where a human has judged the
//! spelling harmless. That trade — a few justified markers in exchange
//! for zero type-system machinery — is what keeps the pass fast,
//! dependency-free, and auditable.

use crate::callgraph::FactKind;
use crate::config::{self, Config};
use crate::dataflow::Reachability;
use crate::diag::{Diagnostic, RuleId, Severity};
use crate::engine::WorkspaceAnalysis;
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// Run every enabled rule over `file`, returning raw (pre-suppression)
/// diagnostics.
pub fn run_rules(file: &SourceFile, cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let crate_name = config::crate_of(&file.rel_path);

    // Harness crates measure wall time and print ad-hoc output; no rule
    // applies to them.
    if crate_name.is_some_and(|c| config::HARNESS_CRATES.contains(&c)) {
        return out;
    }

    d01_wall_clock(file, cfg, &mut out);
    d02_deterministic_iteration(file, crate_name, cfg, &mut out);
    d03_thread_hygiene(file, cfg, &mut out);
    d04_chunked_reductions(file, crate_name, cfg, &mut out);
    o01_metric_names(file, crate_name, cfg, &mut out);
    p01_panic_hygiene(file, crate_name, cfg, &mut out);
    out
}

/// Run the graph-powered rules (P02/D05/A01) over the whole analyzed
/// file set. Diagnostics point at the hazard *site* (so a normal
/// per-line marker suppresses them) and name the root plus a witness
/// call path in the message.
pub fn run_graph_rules(
    files: &[SourceFile],
    ws: &WorkspaceAnalysis,
    cfg: &Config,
) -> Vec<Diagnostic> {
    let by_path: BTreeMap<&str, &SourceFile> =
        files.iter().map(|f| (f.rel_path.as_str(), f)).collect();
    let mut out = Vec::new();
    p02_panic_reachability(&by_path, ws, cfg, &mut out);
    d05_blocking_in_worker(&by_path, ws, cfg, &mut out);
    a01_alloc_in_hot_path(&by_path, ws, cfg, &mut out);
    out
}

/// Whether a fact site should be skipped: outside the analyzed file
/// set, in a harness crate, or on a test line.
fn fact_site<'a>(
    by_path: &BTreeMap<&str, &'a SourceFile>,
    ws: &WorkspaceAnalysis,
    node: usize,
    line: u32,
) -> Option<&'a SourceFile> {
    let def = &ws.symbols.defs[node];
    if config::HARNESS_CRATES.contains(&def.crate_name.as_str()) {
        return None;
    }
    let file = by_path.get(def.file.as_str())?;
    if file.is_test_line(line) {
        None
    } else {
        Some(file)
    }
}

/// P02: a panic-family macro in a library crate that is public API or
/// confidently reachable from one. Transitive where P01 is per-file.
fn p02_panic_reachability(
    by_path: &BTreeMap<&str, &SourceFile>,
    ws: &WorkspaceAnalysis,
    cfg: &Config,
    out: &mut Vec<Diagnostic>,
) {
    for fact in ws.graph.facts.iter().filter(|f| f.kind == FactKind::Panic) {
        let def = &ws.symbols.defs[fact.node];
        if !config::P01_CRATES.contains(&def.crate_name.as_str()) {
            continue;
        }
        let Some(file) = fact_site(by_path, ws, fact.node, fact.line) else {
            continue;
        };
        // The nearest public API that can reach this site, in
        // deterministic def order; private dead code is not flagged.
        let rev = ws.reach.can_reach(&[fact.node]);
        let witness = (0..ws.symbols.defs.len()).find(|&i| {
            rev[i]
                && ws.symbols.defs[i].is_pub
                && config::P01_CRATES.contains(&ws.symbols.defs[i].crate_name.as_str())
        });
        let Some(w) = witness else { continue };
        let path = ws
            .reach
            .witness_path(w, fact.node)
            .map(|p| Reachability::render_path(&ws.symbols, &p))
            .unwrap_or_else(|| ws.symbols.defs[w].qualified.clone());
        emit(
            out,
            file,
            cfg,
            RuleId::P02,
            fact.line,
            format!(
                "`{}` is reachable from public API `{}` (via {path}); return an \
                 error instead, or justify with `// lint: allow(P02, <why this \
                 cannot fire on caller data>)`",
                fact.what, ws.symbols.defs[w].qualified
            ),
        );
    }
}

/// D05: a blocking call (lock/IO/sleep) confidently reachable from a
/// configured hot-path root (`config::D05_ROOTS`).
fn d05_blocking_in_worker(
    by_path: &BTreeMap<&str, &SourceFile>,
    ws: &WorkspaceAnalysis,
    cfg: &Config,
    out: &mut Vec<Diagnostic>,
) {
    let roots = root_nodes(ws, config::D05_ROOTS);
    if roots.is_empty() {
        return;
    }
    let fwd = ws.reach.reachable_from(&roots);
    for fact in ws
        .graph
        .facts
        .iter()
        .filter(|f| f.kind == FactKind::Blocking)
    {
        if !fwd[fact.node] {
            continue;
        }
        let Some(file) = fact_site(by_path, ws, fact.node, fact.line) else {
            continue;
        };
        let (root, path) = first_root_path(ws, &roots, fact.node);
        emit(
            out,
            file,
            cfg,
            RuleId::D05,
            fact.line,
            format!(
                "blocking call `{}` reachable from hot-path root `{root}` (via \
                 {path}); move it off the worker path, or justify with \
                 `// lint: allow(D05, <why this block is bounded>)`",
                fact.what
            ),
        );
    }
}

/// A01: an allocation constructor confidently reachable from the
/// per-snapshot ingest roots (`config::A01_ROOTS`), outside the setup
/// allowlist. Warn by default: allocation is a cost smell, not a bug.
fn a01_alloc_in_hot_path(
    by_path: &BTreeMap<&str, &SourceFile>,
    ws: &WorkspaceAnalysis,
    cfg: &Config,
    out: &mut Vec<Diagnostic>,
) {
    let roots = root_nodes(ws, config::A01_ROOTS);
    if roots.is_empty() {
        return;
    }
    let fwd = ws.reach.reachable_from(&roots);
    for fact in ws.graph.facts.iter().filter(|f| f.kind == FactKind::Alloc) {
        if !fwd[fact.node] {
            continue;
        }
        let def = &ws.symbols.defs[fact.node];
        if cfg.a01_allows(&def.file) {
            continue;
        }
        let Some(file) = fact_site(by_path, ws, fact.node, fact.line) else {
            continue;
        };
        let (root, path) = first_root_path(ws, &roots, fact.node);
        emit(
            out,
            file,
            cfg,
            RuleId::A01,
            fact.line,
            format!(
                "allocation `{}` reachable from ingest root `{root}` (via {path}); \
                 hoist or reuse the buffer, or justify with \
                 `// lint: allow(A01, <why this allocation is amortized>)`",
                fact.what
            ),
        );
    }
}

/// Resolve configured root names (qualified form) to node indices.
fn root_nodes(ws: &WorkspaceAnalysis, names: &[&str]) -> Vec<usize> {
    let mut roots: Vec<usize> = names
        .iter()
        .filter_map(|n| ws.symbols.by_qualified.get(*n))
        .flatten()
        .copied()
        .collect();
    roots.sort_unstable();
    roots.dedup();
    roots
}

/// The first configured root (in def order) that reaches `node`, with
/// a rendered witness path.
fn first_root_path(ws: &WorkspaceAnalysis, roots: &[usize], node: usize) -> (String, String) {
    for &r in roots {
        if let Some(p) = ws.reach.witness_path(r, node) {
            return (
                ws.symbols.defs[r].qualified.clone(),
                Reachability::render_path(&ws.symbols, &p),
            );
        }
    }
    ("<unknown root>".to_owned(), String::new())
}

fn emit(
    out: &mut Vec<Diagnostic>,
    file: &SourceFile,
    cfg: &Config,
    rule: RuleId,
    line: u32,
    message: String,
) {
    let severity = cfg.effective_severity(rule);
    if severity == Severity::Allow {
        return;
    }
    out.push(Diagnostic {
        rule,
        severity,
        file: file.rel_path.clone(),
        line,
        message,
        excerpt: file.excerpt(line),
    });
}

/// D01: `Instant::now` / `SystemTime` outside the allowlist.
fn d01_wall_clock(file: &SourceFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
    if cfg.d01_allows(&file.rel_path) {
        return;
    }
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if file.is_test_line(t.line) {
            continue;
        }
        if t.is_ident("Instant")
            && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 3).is_some_and(|a| a.is_ident("now"))
        {
            emit(
                out,
                file,
                cfg,
                RuleId::D01,
                t.line,
                "wall-clock read (`Instant::now`) outside the clock allowlist; \
                 route timing through `incprof_runtime::Clock` so virtual-time \
                 replay stays faithful"
                    .to_owned(),
            );
        }
        if t.is_ident("SystemTime") {
            emit(
                out,
                file,
                cfg,
                RuleId::D01,
                t.line,
                "wall-clock type `SystemTime` outside the clock allowlist; \
                 virtual-time paths must not read real time"
                    .to_owned(),
            );
        }
    }
}

/// D02: `HashMap`/`HashSet` in the deterministic-output crates.
fn d02_deterministic_iteration(
    file: &SourceFile,
    crate_name: Option<&str>,
    cfg: &Config,
    out: &mut Vec<Diagnostic>,
) {
    if !crate_name.is_some_and(|c| config::D02_CRATES.contains(&c)) {
        return;
    }
    for t in &file.tokens {
        if file.is_test_line(t.line) {
            continue;
        }
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            emit(
                out,
                file,
                cfg,
                RuleId::D02,
                t.line,
                format!(
                    "`{}` in an analysis crate: hash iteration order can reach \
                     serialized output; use `BTreeMap`/`BTreeSet` or sort before \
                     emitting",
                    t.text
                ),
            );
        }
    }
}

/// D03: `thread::spawn` / `thread::scope` / `thread::Builder` outside
/// the sanctioned spawners.
fn d03_thread_hygiene(file: &SourceFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
    if cfg.d03_allows(&file.rel_path) {
        return;
    }
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if file.is_test_line(t.line) {
            continue;
        }
        if t.is_ident("thread")
            && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 3).is_some_and(|a| {
                a.is_ident("spawn") || a.is_ident("scope") || a.is_ident("Builder")
            })
        {
            let what = &toks[i + 3].text;
            emit(
                out,
                file,
                cfg,
                RuleId::D03,
                t.line,
                format!(
                    "`thread::{what}` outside `incprof-par`/the collector: ad-hoc \
                     threads bypass the deterministic pool's chunking and nesting \
                     guarantees"
                ),
            );
        }
    }
}

/// D04: raw `.sum(` in parallel-adjacent analysis files.
fn d04_chunked_reductions(
    file: &SourceFile,
    crate_name: Option<&str>,
    cfg: &Config,
    out: &mut Vec<Diagnostic>,
) {
    if !crate_name.is_some_and(|c| config::D04_CRATES.contains(&c)) || !file.references_par {
        return;
    }
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if file.is_test_line(t.line) {
            continue;
        }
        if t.is_punct('.')
            && toks.get(i + 1).is_some_and(|a| a.is_ident("sum"))
            && toks
                .get(i + 2)
                .is_some_and(|a| a.is_punct('(') || a.is_punct(':'))
        {
            emit(
                out,
                file,
                cfg,
                RuleId::D04,
                toks[i + 1].line,
                "raw `.sum()` in a file that uses the parallel engine: float \
                 reductions must go through `incprof_par::reduce_chunks` (or \
                 justify why this sum never crosses a chunk boundary)"
                    .to_owned(),
            );
        }
    }
}

/// O01: literal metric/span names at obs call sites.
fn o01_metric_names(
    file: &SourceFile,
    crate_name: Option<&str>,
    cfg: &Config,
    out: &mut Vec<Diagnostic>,
) {
    if crate_name.is_some_and(|c| config::O01_EXEMPT_CRATES.contains(&c)) {
        return;
    }
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if file.is_test_line(t.line) {
            continue;
        }
        if t.kind != TokenKind::Ident || !config::O01_CALLEES.contains(&t.text.as_str()) {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|a| a.is_punct('(')) {
            continue;
        }
        // First-argument shapes that hide a literal: `"name"`,
        // `&format!(…)`, `format!(…)`.
        let mut j = i + 2;
        if toks.get(j).is_some_and(|a| a.is_punct('&')) {
            j += 1;
        }
        let Some(arg) = toks.get(j) else { continue };
        let literal = arg.kind == TokenKind::Str;
        let formatted = arg.is_ident("format") && toks.get(j + 1).is_some_and(|a| a.is_punct('!'));
        if literal || formatted {
            emit(
                out,
                file,
                cfg,
                RuleId::O01,
                t.line,
                format!(
                    "metric/span name built at the `{}` call site; declare it in \
                     `incprof_obs::names` and reference the constant (or helper) \
                     so names cannot typo or fork",
                    t.text
                ),
            );
        }
    }
}

/// P01: `.unwrap()` / `.expect(` in library crates.
fn p01_panic_hygiene(
    file: &SourceFile,
    crate_name: Option<&str>,
    cfg: &Config,
    out: &mut Vec<Diagnostic>,
) {
    if !crate_name.is_some_and(|c| config::P01_CRATES.contains(&c)) {
        return;
    }
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if file.is_test_line(t.line) {
            continue;
        }
        if t.is_punct('.')
            && toks
                .get(i + 1)
                .is_some_and(|a| a.is_ident("unwrap") || a.is_ident("expect"))
            && toks.get(i + 2).is_some_and(|a| a.is_punct('('))
        {
            let what = &toks[i + 1].text;
            emit(
                out,
                file,
                cfg,
                RuleId::P01,
                toks[i + 1].line,
                format!(
                    "`.{what}()` in library code: propagate the error, or mark the \
                     invariant with `// lint: allow(P01, <why it cannot fail>)`"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_raw(path: &str, src: &str) -> Vec<Diagnostic> {
        run_rules(&SourceFile::parse(path, src), &Config::default())
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<RuleId> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn d01_fires_outside_allowlist_only() {
        let bad = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(
            rules_of(&lint_raw("crates/core/src/x.rs", bad)),
            [RuleId::D01]
        );
        assert!(lint_raw("crates/runtime/src/clock.rs", bad).is_empty());
        assert!(lint_raw("crates/obs/src/span.rs", bad).is_empty());
    }

    #[test]
    fn d01_catches_system_time() {
        let bad = "use std::time::SystemTime;";
        assert_eq!(
            rules_of(&lint_raw("crates/obs/src/report.rs", bad)),
            [RuleId::D01]
        );
    }

    #[test]
    fn d02_scoped_to_analysis_crates() {
        let bad = "use std::collections::HashMap;";
        assert_eq!(
            rules_of(&lint_raw("crates/profile/src/x.rs", bad)),
            [RuleId::D02]
        );
        assert!(lint_raw("crates/runtime/src/x.rs", bad).is_empty());
    }

    #[test]
    fn d03_fires_outside_pool_and_collector() {
        let bad = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(
            rules_of(&lint_raw("crates/runtime/src/x.rs", bad)),
            [RuleId::D03]
        );
        assert!(lint_raw("crates/par/src/pool.rs", bad).is_empty());
        assert!(lint_raw("crates/collect/src/collector.rs", bad).is_empty());
    }

    #[test]
    fn d04_needs_par_reference() {
        let with_par = "use incprof_par as p; fn f(v: &[f64]) -> f64 { v.iter().sum() }";
        let without = "fn f(v: &[f64]) -> f64 { v.iter().sum() }";
        assert_eq!(
            rules_of(&lint_raw("crates/cluster/src/x.rs", with_par)),
            [RuleId::D04]
        );
        assert!(lint_raw("crates/cluster/src/x.rs", without).is_empty());
        assert!(lint_raw("crates/runtime/src/x.rs", with_par).is_empty());
    }

    #[test]
    fn d04_catches_turbofish_sum() {
        let src = "use incprof_par as p; fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }";
        assert_eq!(
            rules_of(&lint_raw("crates/core/src/x.rs", src)),
            [RuleId::D04]
        );
    }

    #[test]
    fn o01_flags_literals_and_format() {
        let lit = r#"fn f() { incprof_obs::counter("a.b.c").inc(); }"#;
        let fmt = r#"fn f(k: usize) { incprof_obs::counter(&format!("a.b.k{k}")).inc(); }"#;
        let good = "fn f() { incprof_obs::counter(incprof_obs::names::PAR_POOL_CALLS).inc(); }";
        assert_eq!(
            rules_of(&lint_raw("crates/core/src/x.rs", lit)),
            [RuleId::O01]
        );
        assert_eq!(
            rules_of(&lint_raw("crates/core/src/x.rs", fmt)),
            [RuleId::O01]
        );
        assert!(lint_raw("crates/core/src/x.rs", good).is_empty());
    }

    #[test]
    fn o01_covers_traced_span_entry() {
        // Trace roots name spans too: `enter_traced("lit", …)` must go
        // through `incprof_obs::names` like every other telemetry name.
        let lit = r#"fn f(s: &SpanStore) { s.enter_traced("serve.x", 1, 0); }"#;
        let good =
            "fn f(s: &SpanStore) { s.enter_traced(incprof_obs::names::SERVE_TRACE_SNAPSHOT, 1, 0); }";
        assert_eq!(
            rules_of(&lint_raw("crates/serve/src/x.rs", lit)),
            [RuleId::O01]
        );
        assert!(lint_raw("crates/serve/src/x.rs", good).is_empty());
    }

    #[test]
    fn o01_exempts_obs_itself() {
        let lit = r#"pub fn counter(name: &str) { registry.counter("a.b.c"); }"#;
        assert!(lint_raw("crates/obs/src/metrics.rs", lit).is_empty());
    }

    #[test]
    fn p01_flags_unwrap_and_expect_in_lib_crates() {
        let bad = r#"fn f(x: Option<u32>) -> u32 { x.unwrap() + x.expect("set") }"#;
        assert_eq!(
            rules_of(&lint_raw("crates/core/src/x.rs", bad)),
            [RuleId::P01, RuleId::P01]
        );
        assert!(lint_raw("crates/cli/src/lib.rs", bad).is_empty());
        assert!(lint_raw("crates/apps/src/x.rs", bad).is_empty());
    }

    #[test]
    fn p01_ignores_unwrap_or_family() {
        let good = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) + x.unwrap_or_default() }";
        assert!(lint_raw("crates/core/src/x.rs", good).is_empty());
    }

    #[test]
    fn test_regions_are_exempt_everywhere() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { std::thread::spawn(|| {}); x.unwrap(); }\n}\n";
        assert!(lint_raw("crates/core/src/x.rs", src).is_empty());
        let bad_path = "crates/core/tests/it.rs";
        assert!(lint_raw(bad_path, "fn f() { x.unwrap(); }").is_empty());
    }

    #[test]
    fn harness_crates_are_exempt() {
        let src = "fn f() { let t = std::time::Instant::now(); x.unwrap(); }";
        assert!(lint_raw("crates/bench/src/bin/speedup.rs", src).is_empty());
    }

    #[test]
    fn spelling_inside_strings_and_comments_is_ignored() {
        let src = r#"fn f() { let s = "Instant::now() HashMap .unwrap()"; } // Instant::now"#;
        assert!(lint_raw("crates/profile/src/x.rs", src).is_empty());
    }
}
