//! A lightweight recursive-descent *item* parser over the lexed token
//! stream.
//!
//! The static-analysis passes (`symbols` → `callgraph` → `dataflow`)
//! need to know *which function a token belongs to* and *what that
//! function could call* — nothing more. This parser therefore
//! recognizes exactly the item skeleton of a Rust source file: `fn`,
//! `impl`, `trait`, `mod`, and `use` items, each with its line span.
//! Function bodies are **not** parsed into an expression AST; they are
//! kept as token-index slices into the lexed stream, and the call-graph
//! builder pattern-matches call shapes inside them.
//!
//! Known approximations (documented in `docs/LINTS.md`):
//! * closures and items nested inside function bodies are part of the
//!   enclosing function's body slice, not items of their own;
//! * `macro_rules!` bodies are skipped as balanced token groups;
//! * generic parameter lists are skipped, not modeled.

use crate::lexer::{Token, TokenKind};
use std::ops::Range;

/// One parsed `fn` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// The function's bare name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if the fn is a method.
    pub owner: Option<String>,
    /// Inline `mod` path from the file root down to the item.
    pub module: Vec<String>,
    /// Whether the fn carries any `pub` qualifier.
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body *between* its braces (empty for
    /// body-less trait methods and extern declarations).
    pub body: Range<usize>,
}

impl FnItem {
    /// `Owner::name` for methods, bare `name` otherwise — the display
    /// form used in diagnostics and the call-graph JSON.
    pub fn display_name(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One parsed `use` declaration leaf (groups are expanded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDecl {
    /// Full path segments, e.g. `["incprof_par", "reduce_chunks"]`.
    pub path: Vec<String>,
    /// The name the path is visible under (`as` alias, else the last
    /// segment). Globs produce no leaf.
    pub alias: String,
    /// 1-based line of the `use` keyword.
    pub line: u32,
}

/// One parsed `mod` declaration (inline or file-backed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModDecl {
    /// Module name.
    pub name: String,
    /// Whether the body is inline (`mod m { … }`) vs `mod m;`.
    pub inline: bool,
    /// 1-based line.
    pub line: u32,
}

/// The item skeleton of one source file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
    /// Every `use` leaf, in source order.
    pub uses: Vec<UseDecl>,
    /// Every `mod` declaration, in source order.
    pub mods: Vec<ModDecl>,
    /// Names of `trait` items declared in the file.
    pub traits: Vec<String>,
    /// Type names with an `impl` block in the file.
    pub impls: Vec<String>,
}

/// Parse the item skeleton out of a lexed token stream. Never fails:
/// unparseable stretches are skipped token by token, which is the right
/// behavior for a lint pass that must keep going on source the compiler
/// would reject anyway.
pub fn parse_items(tokens: &[Token]) -> ParsedFile {
    Parser {
        tokens,
        pos: 0,
        out: ParsedFile::default(),
    }
    .run()
}

/// A scope the cursor is currently inside, with the brace depth at
/// which it opened (so `}` knows what to pop).
#[derive(Debug, Clone)]
enum Scope {
    Module(String),
    Owner(String),
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    out: ParsedFile,
}

impl<'a> Parser<'a> {
    fn at(&self, i: usize) -> Option<&'a Token> {
        self.tokens.get(self.pos + i)
    }

    fn run(mut self) -> ParsedFile {
        // (scope, brace depth at which it opened)
        let mut scopes: Vec<(Scope, usize)> = Vec::new();
        let mut depth = 0usize;
        let mut is_pub = false;

        while let Some(t) = self.at(0) {
            if t.is_punct('#') && self.at(1).is_some_and(|a| a.is_punct('[')) {
                self.skip_attribute();
                continue;
            }
            if t.is_punct('{') {
                depth += 1;
                self.pos += 1;
                continue;
            }
            if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                // A scope opened at depth d owns the braces at d+1; when
                // depth returns to d the scope is over.
                while scopes.last().is_some_and(|(_, d)| *d >= depth) {
                    scopes.pop();
                }
                self.pos += 1;
                is_pub = false;
                continue;
            }
            if t.kind != TokenKind::Ident {
                self.pos += 1;
                continue;
            }
            match t.text.as_str() {
                "pub" => {
                    self.pos += 1;
                    // Swallow a visibility qualifier like `pub(crate)`.
                    if self.at(0).is_some_and(|a| a.is_punct('(')) {
                        self.skip_balanced('(', ')');
                    }
                    is_pub = true;
                    continue;
                }
                "use" => {
                    self.parse_use();
                    is_pub = false;
                    continue;
                }
                "mod" => {
                    if let Some(name) = self.at(1).filter(|n| n.kind == TokenKind::Ident) {
                        let line = t.line;
                        let name = name.text.clone();
                        let inline = self.at(2).is_some_and(|a| a.is_punct('{'));
                        self.out.mods.push(ModDecl {
                            name: name.clone(),
                            inline,
                            line,
                        });
                        self.pos += 2;
                        if inline {
                            scopes.push((Scope::Module(name), depth));
                            // Let the main loop consume the `{`.
                        }
                    } else {
                        self.pos += 1;
                    }
                    is_pub = false;
                    continue;
                }
                "impl" => {
                    let owner = self.parse_impl_header();
                    if let Some(owner) = owner {
                        if !self.out.impls.contains(&owner) {
                            self.out.impls.push(owner.clone());
                        }
                        scopes.push((Scope::Owner(owner), depth));
                    }
                    is_pub = false;
                    continue;
                }
                "trait" => {
                    if let Some(name) = self.at(1).filter(|n| n.kind == TokenKind::Ident) {
                        let name = name.text.clone();
                        self.out.traits.push(name.clone());
                        self.pos += 2;
                        self.skip_to_body_open();
                        scopes.push((Scope::Owner(name), depth));
                    } else {
                        self.pos += 1;
                    }
                    is_pub = false;
                    continue;
                }
                "fn" => {
                    self.parse_fn(&scopes, is_pub);
                    is_pub = false;
                    continue;
                }
                // Fn qualifiers between the visibility and the `fn`
                // keyword must not reset the pending `pub`.
                "const" | "unsafe" | "async" | "extern" => {
                    self.pos += 1;
                    continue;
                }
                "macro_rules" => {
                    // `macro_rules! name { … }`: skip the whole balanced
                    // definition so its body never looks like items.
                    self.pos += 1;
                    while let Some(t) = self.at(0) {
                        if t.is_punct('{') {
                            break;
                        }
                        self.pos += 1;
                    }
                    self.skip_balanced('{', '}');
                    is_pub = false;
                    continue;
                }
                _ => {
                    self.pos += 1;
                    is_pub = false;
                    continue;
                }
            }
        }
        self.out
    }

    /// Skip one `#[…]` (or `#![…]`) attribute group.
    fn skip_attribute(&mut self) {
        self.pos += 1; // '#'
        if self.at(0).is_some_and(|a| a.is_punct('!')) {
            self.pos += 1;
        }
        self.skip_balanced('[', ']');
    }

    /// Advance past a balanced `open…close` group, assuming the cursor
    /// is at or before the opener.
    fn skip_balanced(&mut self, open: char, close: char) {
        let mut depth = 0usize;
        let mut entered = false;
        while let Some(t) = self.at(0) {
            if t.is_punct(open) {
                depth += 1;
                entered = true;
            } else if t.is_punct(close) {
                depth = depth.saturating_sub(1);
                if entered && depth == 0 {
                    self.pos += 1;
                    return;
                }
            } else if !entered {
                // Never found the opener (garbage input); bail.
                return;
            }
            self.pos += 1;
        }
    }

    /// `use a::b::{c, d as e}, f;` — expand into leaves. The cursor is
    /// on the `use` keyword.
    fn parse_use(&mut self) {
        let line = self.at(0).map(|t| t.line).unwrap_or(0);
        self.pos += 1; // 'use'
        let mut prefix: Vec<String> = Vec::new();
        self.parse_use_tree(&mut prefix, line);
        // Consume through the terminating ';'.
        while let Some(t) = self.at(0) {
            let done = t.is_punct(';');
            self.pos += 1;
            if done {
                break;
            }
        }
    }

    fn parse_use_tree(&mut self, prefix: &mut Vec<String>, line: u32) {
        let depth_here = prefix.len();
        loop {
            match self.at(0) {
                Some(t) if t.kind == TokenKind::Ident && t.text == "as" => {
                    self.pos += 1;
                    if let Some(alias) = self.at(0).filter(|a| a.kind == TokenKind::Ident) {
                        self.out.uses.push(UseDecl {
                            path: prefix.clone(),
                            alias: alias.text.clone(),
                            line,
                        });
                        self.pos += 1;
                    }
                    prefix.truncate(depth_here);
                    return;
                }
                Some(t) if t.kind == TokenKind::Ident => {
                    prefix.push(t.text.clone());
                    self.pos += 1;
                }
                Some(t) if t.is_punct(':') => {
                    self.pos += 1; // consume both colons lazily
                }
                Some(t) if t.is_punct('{') => {
                    self.pos += 1;
                    loop {
                        self.parse_use_tree(prefix, line);
                        match self.at(0) {
                            Some(t) if t.is_punct(',') => {
                                self.pos += 1;
                            }
                            Some(t) if t.is_punct('}') => {
                                self.pos += 1;
                                break;
                            }
                            _ => break,
                        }
                    }
                    prefix.truncate(depth_here);
                    return;
                }
                Some(t) if t.is_punct('*') => {
                    // Glob import: no leaf to record.
                    self.pos += 1;
                    prefix.truncate(depth_here);
                    return;
                }
                _ => break,
            }
            // A path ends at ',', ';', or '}' — emit the leaf.
            match self.at(0) {
                Some(t) if t.is_punct(',') || t.is_punct(';') || t.is_punct('}') => {
                    if prefix.len() > depth_here {
                        if let Some(last) = prefix.last() {
                            self.out.uses.push(UseDecl {
                                path: prefix.clone(),
                                alias: last.clone(),
                                line,
                            });
                        }
                    }
                    prefix.truncate(depth_here);
                    return;
                }
                _ => {}
            }
        }
        prefix.truncate(depth_here);
    }

    /// Parse `impl … {`, returning the implemented type's name. The
    /// cursor is on `impl`; on return it sits on the opening `{` (which
    /// the main loop consumes as a depth bump).
    fn parse_impl_header(&mut self) -> Option<String> {
        self.pos += 1; // 'impl'
        let mut angle = 0usize;
        let mut last_ident: Option<String> = None;
        while let Some(t) = self.at(0) {
            if t.is_punct('{') {
                return last_ident;
            }
            if t.is_punct(';') {
                // `impl Trait for Type;` style (rare) — no body.
                self.pos += 1;
                return None;
            }
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle = angle.saturating_sub(1);
            } else if angle == 0 && t.kind == TokenKind::Ident {
                match t.text.as_str() {
                    // `impl Trait for Type` — the type after `for` wins.
                    "for" => last_ident = None,
                    "where" => {
                        self.skip_to_body_open();
                        return last_ident;
                    }
                    _ => last_ident = Some(t.text.clone()),
                }
            }
            self.pos += 1;
        }
        None
    }

    /// Advance to the next `{` at the current nesting (skipping a
    /// `where` clause); leave the cursor *on* it.
    fn skip_to_body_open(&mut self) {
        while let Some(t) = self.at(0) {
            if t.is_punct('{') || t.is_punct(';') {
                return;
            }
            self.pos += 1;
        }
    }

    /// Parse a `fn` item. The cursor is on the `fn` keyword.
    fn parse_fn(&mut self, scopes: &[(Scope, usize)], is_pub: bool) {
        let line = self.at(0).map(|t| t.line).unwrap_or(0);
        self.pos += 1; // 'fn'
        let Some(name_tok) = self.at(0).filter(|t| t.kind == TokenKind::Ident) else {
            return;
        };
        let name = name_tok.text.clone();
        self.pos += 1;

        // Skip generics `<…>`.
        if self.at(0).is_some_and(|t| t.is_punct('<')) {
            let mut angle = 0usize;
            while let Some(t) = self.at(0) {
                if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') {
                    angle = angle.saturating_sub(1);
                    if angle == 0 {
                        self.pos += 1;
                        break;
                    }
                }
                self.pos += 1;
            }
        }
        // Skip the argument list.
        self.skip_balanced('(', ')');
        // Return type / where clause: scan to the body `{` or a `;`.
        // Angle depth guards against `->` arrows and generic returns;
        // braces cannot appear before the body at item level.
        while let Some(t) = self.at(0) {
            if t.is_punct('{') || t.is_punct(';') {
                break;
            }
            self.pos += 1;
        }
        let body = if self.at(0).is_some_and(|t| t.is_punct('{')) {
            self.pos += 1; // opening brace
            let start = self.pos;
            let mut depth = 1usize;
            while let Some(t) = self.at(0) {
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                self.pos += 1;
            }
            let end = self.pos;
            if self.at(0).is_some() {
                self.pos += 1; // closing brace
            }
            start..end
        } else {
            if self.at(0).is_some() {
                self.pos += 1; // ';'
            }
            self.pos..self.pos
        };

        let module: Vec<String> = scopes
            .iter()
            .filter_map(|(s, _)| match s {
                Scope::Module(m) => Some(m.clone()),
                Scope::Owner(_) => None,
            })
            .collect();
        let owner = scopes.iter().rev().find_map(|(s, _)| match s {
            Scope::Owner(o) => Some(o.clone()),
            Scope::Module(_) => None,
        });
        self.out.fns.push(FnItem {
            name,
            owner,
            module,
            is_pub,
            line,
            body,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_items(&lex(src).tokens)
    }

    #[test]
    fn free_fns_and_spans() {
        let p = parse("fn a() { b(); }\npub fn b() -> u32 { 1 }\n");
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "a");
        assert!(!p.fns[0].is_pub);
        assert_eq!(p.fns[0].line, 1);
        assert_eq!(p.fns[1].name, "b");
        assert!(p.fns[1].is_pub);
        assert_eq!(p.fns[1].line, 2);
        assert!(!p.fns[0].body.is_empty());
    }

    #[test]
    fn methods_get_their_impl_owner() {
        let src = "struct S;\nimpl S {\n    pub fn m(&self) {}\n}\nimpl Display for S {\n    fn fmt(&self) {}\n}\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].owner.as_deref(), Some("S"));
        assert_eq!(p.fns[0].display_name(), "S::m");
        assert!(p.fns[0].is_pub);
        // `impl Trait for Type` attributes methods to the type.
        assert_eq!(p.fns[1].owner.as_deref(), Some("S"));
        assert_eq!(p.impls, vec!["S"]);
    }

    #[test]
    fn generic_impls_and_fns_parse() {
        let src = "impl<'a, T: Clone> Wrapper<'a, T> {\n    fn get<Q: Ord>(&self, q: Q) -> &T { &self.0 }\n}\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].owner.as_deref(), Some("Wrapper"));
        assert_eq!(p.fns[0].name, "get");
    }

    #[test]
    fn inline_mods_nest_and_pop() {
        let src = "mod outer {\n    mod inner {\n        fn deep() {}\n    }\n    fn mid() {}\n}\nfn top() {}\n";
        let p = parse(src);
        let by_name: Vec<(&str, &[String])> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.module.as_slice()))
            .collect();
        assert_eq!(by_name[0].0, "deep");
        assert_eq!(by_name[0].1, ["outer".to_string(), "inner".to_string()]);
        assert_eq!(by_name[1].0, "mid");
        assert_eq!(by_name[1].1, ["outer".to_string()]);
        assert_eq!(by_name[2].0, "top");
        assert!(by_name[2].1.is_empty());
        assert_eq!(p.mods.len(), 2);
        assert!(p.mods.iter().all(|m| m.inline));
    }

    #[test]
    fn use_declarations_expand_groups_and_aliases() {
        let src = "use a::b::{c, d as e};\nuse f::g;\nuse h::*;\n";
        let p = parse(src);
        let leaves: Vec<(String, String)> = p
            .uses
            .iter()
            .map(|u| (u.path.join("::"), u.alias.clone()))
            .collect();
        assert!(leaves.contains(&("a::b::c".into(), "c".into())));
        assert!(leaves.contains(&("a::b::d".into(), "e".into())));
        assert!(leaves.contains(&("f::g".into(), "g".into())));
        assert_eq!(leaves.len(), 3, "globs produce no leaf: {leaves:?}");
    }

    #[test]
    fn bodies_are_token_slices_not_items() {
        let src = "fn outer() {\n    let f = |x: u32| x + 1;\n    fn inner() {}\n    if true { nested(); }\n}\nfn after() {}\n";
        let p = parse(src);
        // `inner` stays inside outer's body slice.
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "after"]);
        let toks = lex(src).tokens;
        let body = &toks[p.fns[0].body.clone()];
        assert!(body.iter().any(|t| t.is_ident("inner")));
        assert!(body.iter().any(|t| t.is_ident("nested")));
    }

    #[test]
    fn trait_methods_and_bodyless_decls() {
        let src =
            "trait T {\n    fn required(&self);\n    fn provided(&self) { self.required() }\n}\n";
        let p = parse(src);
        assert_eq!(p.traits, vec!["T"]);
        assert_eq!(p.fns.len(), 2);
        assert!(p.fns[0].body.is_empty());
        assert!(!p.fns[1].body.is_empty());
        assert_eq!(p.fns[1].owner.as_deref(), Some("T"));
    }

    #[test]
    fn attributes_and_qualifiers_are_skipped() {
        let src = "#[inline]\n#[cfg(feature = \"x\")]\npub const unsafe fn q() {}\nmacro_rules! m { ($x:expr) => { fn not_an_item() {} }; }\nfn real() {}\n";
        let p = parse(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["q", "real"]);
        assert!(p.fns[0].is_pub);
    }

    #[test]
    fn where_clauses_do_not_confuse_body_detection() {
        let src = "fn g<T>(t: T) -> Vec<T>\nwhere\n    T: Clone,\n{\n    vec![t]\n}\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        assert!(!p.fns[0].body.is_empty());
    }

    #[test]
    fn file_backed_mod_decls_are_recorded() {
        let p = parse("pub mod alpha;\nmod beta;\n");
        assert_eq!(p.mods.len(), 2);
        assert!(p.mods.iter().all(|m| !m.inline));
        assert_eq!(p.mods[0].name, "alpha");
    }
}
