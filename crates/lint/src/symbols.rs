//! Per-file and workspace-wide symbol resolution over the parsed item
//! skeleton.
//!
//! Resolution is deliberately shallow: we track which crate each file
//! belongs to (directory-derived, the same mapping the per-file rules
//! use), the `use` alias table each file declares, and a workspace
//! index from bare and qualified function names to their definitions.
//! That is enough for the call-graph builder to label edges as
//! *confident* (unique resolution) or *ambiguous* (name matches more
//! than one definition, or crosses a boundary we cannot see through).

use crate::config;
use crate::parse::ParsedFile;
use std::collections::BTreeMap;

/// A function definition site, workspace-unique by index.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare name (`observe`).
    pub name: String,
    /// `Owner::name` for methods, bare name otherwise.
    pub qualified: String,
    /// Impl/trait owner type, if a method.
    pub owner: Option<String>,
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// Crate the file belongs to (`config::crate_of`).
    pub crate_name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the fn carries a `pub` qualifier.
    pub is_pub: bool,
    /// Token-index range of the body in the file's token stream.
    pub body: std::ops::Range<usize>,
}

/// Symbols visible inside one file: its crate, its `use` aliases, and
/// the indices (into [`SymbolTable::defs`]) of the fns it defines.
#[derive(Debug, Clone, Default)]
pub struct FileSymbols {
    /// Crate the file belongs to.
    pub crate_name: String,
    /// `alias -> full use path` (e.g. `reduce_chunks -> incprof_par::reduce_chunks`).
    pub aliases: BTreeMap<String, Vec<String>>,
    /// Indices into the workspace def table for fns defined here.
    pub defs: Vec<usize>,
}

/// The workspace symbol table: every fn definition plus per-file
/// visibility info and name indexes for resolution.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    /// All function definitions, in (file, source) order.
    pub defs: Vec<FnDef>,
    /// Per-file symbol info, keyed by workspace-relative path.
    pub files: BTreeMap<String, FileSymbols>,
    /// Bare name → def indices (all crates).
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// `Owner::name` → def indices.
    pub by_qualified: BTreeMap<String, Vec<usize>>,
}

impl SymbolTable {
    /// Build the table from parsed files. `parsed` maps workspace-relative
    /// path → item skeleton; iteration order is the BTreeMap's sorted
    /// order, which keeps def indices deterministic.
    pub fn build(parsed: &BTreeMap<String, ParsedFile>) -> SymbolTable {
        let mut table = SymbolTable::default();
        for (path, items) in parsed {
            let crate_name = config::crate_of(path).unwrap_or("").to_string();
            let mut fs = FileSymbols {
                crate_name: crate_name.clone(),
                ..FileSymbols::default()
            };
            for u in &items.uses {
                fs.aliases.insert(u.alias.clone(), u.path.clone());
            }
            for f in &items.fns {
                let idx = table.defs.len();
                table.defs.push(FnDef {
                    name: f.name.clone(),
                    qualified: f.display_name(),
                    owner: f.owner.clone(),
                    file: path.clone(),
                    crate_name: crate_name.clone(),
                    line: f.line,
                    is_pub: f.is_pub,
                    body: f.body.clone(),
                });
                fs.defs.push(idx);
                table.by_name.entry(f.name.clone()).or_default().push(idx);
                table
                    .by_qualified
                    .entry(table.defs[idx].qualified.clone())
                    .or_default()
                    .push(idx);
            }
            table.files.insert(path.clone(), fs);
        }
        table
    }

    /// Resolve a bare call `name(` seen in `file` inside an fn whose
    /// owner is `owner`. Returns `(candidates, confident)`.
    ///
    /// Confidence ladder:
    /// 1. unique def in the same file → confident;
    /// 2. unique def in the same crate → confident;
    /// 3. `use` alias pointing at a unique workspace def → confident;
    /// 4. anything else that matches by name → ambiguous.
    pub fn resolve_bare(&self, file: &str, name: &str) -> (Vec<usize>, bool) {
        let Some(all) = self.by_name.get(name) else {
            return (Vec::new(), false);
        };
        let fs = self.files.get(file);
        if let Some(fs) = fs {
            let same_file: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&i| self.defs[i].file == file)
                .collect();
            if same_file.len() == 1 {
                return (same_file, true);
            }
            let same_crate: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&i| self.defs[i].crate_name == fs.crate_name)
                .collect();
            if same_crate.len() == 1 {
                return (same_crate, true);
            }
            // A `use` alias naming this symbol: if the aliased path's
            // last segments match a unique def, trust it.
            if let Some(path) = fs.aliases.get(name) {
                if let Some(last) = path.last() {
                    if let Some(hits) = self.by_name.get(last) {
                        if hits.len() == 1 {
                            return (hits.clone(), true);
                        }
                    }
                }
            }
            if !same_file.is_empty() {
                return (same_file, false);
            }
            if !same_crate.is_empty() {
                return (same_crate, false);
            }
        }
        (all.clone(), all.len() == 1)
    }

    /// Resolve a type-qualified call `Type::name(`. Unique
    /// `Type::name` definition → confident.
    pub fn resolve_qualified(&self, type_name: &str, name: &str) -> (Vec<usize>, bool) {
        let key = format!("{type_name}::{name}");
        if let Some(hits) = self.by_qualified.get(&key) {
            return (hits.clone(), hits.len() == 1);
        }
        // Fall back to bare-name matches among methods of *any* owner —
        // ambiguous by construction.
        let hits: Vec<usize> = self
            .by_name
            .get(name)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&i| self.defs[i].owner.is_some())
                    .collect()
            })
            .unwrap_or_default();
        (hits, false)
    }

    /// Resolve a method call `recv.name(…)`. If the receiver is `self`
    /// inside `impl Owner` and `Owner::name` exists uniquely, that's a
    /// confident edge; otherwise every method named `name` is an
    /// ambiguous candidate.
    pub fn resolve_method(
        &self,
        owner: Option<&str>,
        self_recv: bool,
        name: &str,
    ) -> (Vec<usize>, bool) {
        if self_recv {
            if let Some(owner) = owner {
                let key = format!("{owner}::{name}");
                if let Some(hits) = self.by_qualified.get(&key) {
                    if hits.len() == 1 {
                        return (hits.clone(), true);
                    }
                }
            }
        }
        let hits: Vec<usize> = self
            .by_name
            .get(name)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&i| self.defs[i].owner.is_some())
                    .collect()
            })
            .unwrap_or_default();
        (hits, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_items;

    fn table(files: &[(&str, &str)]) -> SymbolTable {
        let parsed: BTreeMap<String, ParsedFile> = files
            .iter()
            .map(|(p, src)| (p.to_string(), parse_items(&lex(src).tokens)))
            .collect();
        SymbolTable::build(&parsed)
    }

    #[test]
    fn same_file_resolution_is_confident() {
        let t = table(&[(
            "crates/core/src/a.rs",
            "fn helper() {}\npub fn entry() { helper(); }\n",
        )]);
        let (hits, confident) = t.resolve_bare("crates/core/src/a.rs", "helper");
        assert_eq!(hits.len(), 1);
        assert!(confident);
        assert_eq!(t.defs[hits[0]].qualified, "helper");
    }

    #[test]
    fn same_crate_unique_is_confident_cross_crate_dup_is_not() {
        let t = table(&[
            ("crates/core/src/a.rs", "pub fn shared() {}\n"),
            ("crates/core/src/b.rs", "pub fn caller() { shared(); }\n"),
            ("crates/par/src/lib.rs", "pub fn shared() {}\n"),
        ]);
        // From inside core: unique within the crate → confident.
        let (hits, confident) = t.resolve_bare("crates/core/src/b.rs", "shared");
        assert_eq!(hits.len(), 1);
        assert!(confident);
        assert_eq!(t.defs[hits[0]].crate_name, "core");
        // From a file in neither crate: two candidates, ambiguous.
        let t2 = table(&[
            ("crates/core/src/a.rs", "pub fn shared() {}\n"),
            ("crates/par/src/lib.rs", "pub fn shared() {}\n"),
            ("crates/cli/src/lib.rs", "pub fn run() { shared(); }\n"),
        ]);
        let (hits, confident) = t2.resolve_bare("crates/cli/src/lib.rs", "shared");
        assert_eq!(hits.len(), 2);
        assert!(!confident);
    }

    #[test]
    fn use_alias_to_unique_def_is_confident() {
        let t = table(&[
            ("crates/par/src/lib.rs", "pub fn reduce_chunks() {}\n"),
            (
                "crates/core/src/a.rs",
                "use incprof_par::reduce_chunks;\npub fn f() { reduce_chunks(); }\n",
            ),
        ]);
        let (hits, confident) = t.resolve_bare("crates/core/src/a.rs", "reduce_chunks");
        assert_eq!(hits.len(), 1);
        assert!(confident);
        assert_eq!(t.defs[hits[0]].crate_name, "par");
    }

    #[test]
    fn qualified_and_method_resolution() {
        let t = table(&[(
            "crates/serve/src/s.rs",
            "struct Session;\nimpl Session {\n    pub fn enqueue(&self) { self.drain(); }\n    fn drain(&self) {}\n}\n",
        )]);
        let (hits, confident) = t.resolve_qualified("Session", "drain");
        assert_eq!(hits.len(), 1);
        assert!(confident);
        let (hits, confident) = t.resolve_method(Some("Session"), true, "drain");
        assert_eq!(hits.len(), 1);
        assert!(confident);
        // Non-self receiver: ambiguous even with one candidate.
        let (hits, confident) = t.resolve_method(None, false, "drain");
        assert_eq!(hits.len(), 1);
        assert!(!confident);
    }

    #[test]
    fn unknown_names_resolve_to_nothing() {
        let t = table(&[("crates/core/src/a.rs", "fn f() {}\n")]);
        let (hits, confident) = t.resolve_bare("crates/core/src/a.rs", "serde_json_to_string");
        assert!(hits.is_empty());
        assert!(!confident);
    }
}
