//! Per-file source model: lexed tokens, `#[cfg(test)]` regions, and
//! parsed `// lint: allow(...)` suppression markers.

use crate::config;
use crate::diag::RuleId;
use crate::lexer::{self, Lexed, Token};

/// A parsed suppression marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule being silenced.
    pub rule: RuleId,
    /// The mandatory justification.
    pub reason: String,
    /// Line the marker comment sits on.
    pub marker_line: u32,
    /// Line the marker applies to (its own line for trailing markers,
    /// the next token-bearing line for standalone ones).
    pub target_line: u32,
}

/// A malformed marker, reported as L00.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadMarker {
    /// Line the marker comment sits on.
    pub line: u32,
    /// What is wrong with it.
    pub problem: String,
}

/// One source file, analyzed enough for the rules to run.
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel_path: String,
    /// Source split into lines (for excerpts).
    pub lines: Vec<String>,
    /// Lexed tokens.
    pub tokens: Vec<Token>,
    /// Per-line flag: inside a `#[cfg(test)]` region, or the whole file
    /// when the path itself is a test/bench location. Indexed by
    /// `line - 1`.
    test_lines: Vec<bool>,
    /// Whether any token references `incprof_par` (D04 scope).
    pub references_par: bool,
    /// Well-formed suppression markers.
    pub suppressions: Vec<Suppression>,
    /// Malformed markers (L00 material).
    pub bad_markers: Vec<BadMarker>,
}

impl SourceFile {
    /// Lex and analyze `text` as the file at `rel_path`.
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let Lexed { tokens, comments } = lexer::lex(text);
        let lines: Vec<String> = text.lines().map(str::to_owned).collect();
        let n_lines = lines.len().max(1);

        let mut test_lines = vec![config::is_test_path(rel_path); n_lines];
        if !test_lines.is_empty() && !test_lines[0] {
            for (start, end) in cfg_test_regions(&tokens) {
                let lo = (start as usize - 1).min(n_lines - 1);
                let hi = (end as usize - 1).min(n_lines - 1);
                for flag in &mut test_lines[lo..=hi] {
                    *flag = true;
                }
            }
        }

        let references_par = tokens.iter().any(|t| t.is_ident("incprof_par"));

        let mut token_lines = vec![false; n_lines];
        for t in &tokens {
            let i = (t.line as usize - 1).min(n_lines - 1);
            token_lines[i] = true;
        }

        let mut suppressions = Vec::new();
        let mut bad_markers = Vec::new();
        for c in &comments {
            match parse_marker(&c.text) {
                MarkerParse::NotAMarker => {}
                MarkerParse::Bad(problem) => bad_markers.push(BadMarker {
                    line: c.line,
                    problem,
                }),
                MarkerParse::Ok { rules, reason } => {
                    let idx = (c.line as usize - 1).min(n_lines - 1);
                    let target_line = if token_lines[idx] {
                        c.line
                    } else {
                        // Standalone marker: applies to the next line
                        // that has any token on it.
                        match token_lines[idx + 1..].iter().position(|&t| t) {
                            Some(off) => (idx + 1 + off) as u32 + 1,
                            None => c.line, // dangling; will report as stale
                        }
                    };
                    // One marker may name several rules; each becomes
                    // its own suppression (and goes stale on its own).
                    for rule in rules {
                        suppressions.push(Suppression {
                            rule,
                            reason: reason.clone(),
                            marker_line: c.line,
                            target_line,
                        });
                    }
                }
            }
        }

        SourceFile {
            rel_path: rel_path.to_owned(),
            lines,
            tokens,
            test_lines,
            references_par,
            suppressions,
            bad_markers,
        }
    }

    /// Whether `line` (1-based) is test code.
    pub fn is_test_line(&self, line: u32) -> bool {
        let i = (line as usize).saturating_sub(1);
        self.test_lines.get(i).copied().unwrap_or(false)
    }

    /// The trimmed source text of `line` (1-based), for excerpts.
    pub fn excerpt(&self, line: u32) -> String {
        let i = (line as usize).saturating_sub(1);
        let text = self.lines.get(i).map(String::as_str).unwrap_or("");
        let trimmed = text.trim();
        // Keep excerpts terminal-friendly.
        if trimmed.chars().count() > 120 {
            let cut: String = trimmed.chars().take(117).collect();
            format!("{cut}...")
        } else {
            trimmed.to_owned()
        }
    }
}

enum MarkerParse {
    NotAMarker,
    Bad(String),
    Ok { rules: Vec<RuleId>, reason: String },
}

/// Parse one comment body. The accepted grammar is
/// `lint: allow(<RULE>[, <RULE>…], <reason>)` — one or more rule names
/// followed by a mandatory reason; anything that starts with `lint:`
/// but does not fit is a malformed marker, never silently ignored.
fn parse_marker(comment_text: &str) -> MarkerParse {
    let t = comment_text.trim();
    let Some(rest) = t.strip_prefix("lint:") else {
        return MarkerParse::NotAMarker;
    };
    let rest = rest.trim();
    let Some(body) = rest.strip_prefix("allow(") else {
        return MarkerParse::Bad(format!(
            "expected `lint: allow(RULE, reason)`, found `lint: {rest}`"
        ));
    };
    let Some(body) = body.strip_suffix(')') else {
        return MarkerParse::Bad("suppression marker is missing its closing `)`".to_owned());
    };
    // Consume leading comma-separated segments that name rules; what
    // remains is the reason.
    let mut rules = Vec::new();
    let mut rest = body;
    while let Some((head, tail)) = rest.split_once(',') {
        let Some(rule) = RuleId::parse(head.trim()) else {
            break;
        };
        if !rule.suppressible() {
            return MarkerParse::Bad(format!("rule {rule} cannot be suppressed"));
        }
        rules.push(rule);
        rest = tail;
    }
    if rules.is_empty() {
        let first = body.split(',').next().unwrap_or("").trim();
        return match RuleId::parse(first) {
            Some(r) if !r.suppressible() => {
                MarkerParse::Bad(format!("rule {r} cannot be suppressed"))
            }
            Some(_) => MarkerParse::Bad(
                "suppression must carry a reason: `lint: allow(RULE, reason)`".to_owned(),
            ),
            None => MarkerParse::Bad(format!("unknown rule `{first}` in suppression marker")),
        };
    }
    let reason = rest.trim();
    if reason.is_empty() || RuleId::parse(reason).is_some() {
        return MarkerParse::Bad(
            "suppression must carry a non-empty reason: `lint: allow(RULE, reason)`".to_owned(),
        );
    }
    MarkerParse::Ok {
        rules,
        reason: reason.to_owned(),
    }
}

/// Find `#[cfg(test)]` regions as (start_line, end_line) pairs. The
/// region runs from the attribute to the closing brace of the item it
/// decorates (or its terminating `;` for brace-less items).
fn cfg_test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i + 6 < tokens.len() {
        let m = tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('[')
            && tokens[i + 2].is_ident("cfg")
            && tokens[i + 3].is_punct('(')
            && tokens[i + 4].is_ident("test")
            && tokens[i + 5].is_punct(')')
            && tokens[i + 6].is_punct(']');
        if !m {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        let mut j = i + 7;
        let mut end_line = start_line;
        let mut depth = 0usize;
        let mut entered = false;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('{') {
                depth += 1;
                entered = true;
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                if entered && depth == 0 {
                    end_line = t.line;
                    break;
                }
            } else if t.is_punct(';') && !entered {
                end_line = t.line;
                break;
            }
            j += 1;
        }
        if j >= tokens.len() {
            end_line = tokens.last().map(|t| t.line).unwrap_or(start_line);
        }
        regions.push((start_line, end_line));
        i = j.max(i + 7);
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_region_covers_mod_body() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn test_path_marks_whole_file() {
        let f = SourceFile::parse("crates/core/tests/it.rs", "fn f() { x.unwrap(); }\n");
        assert!(f.is_test_line(1));
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn prod() {}\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn trailing_marker_targets_its_own_line() {
        let src = "fn f() {\n    x.unwrap(); // lint: allow(P01, invariant holds)\n}\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert_eq!(f.suppressions.len(), 1);
        let s = &f.suppressions[0];
        assert_eq!((s.rule, s.target_line), (RuleId::P01, 2));
        assert_eq!(s.reason, "invariant holds");
    }

    #[test]
    fn standalone_marker_targets_next_code_line() {
        let src = "fn f() {\n    // lint: allow(P01, invariant holds)\n    // explanatory prose\n    x.unwrap();\n}\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert_eq!(f.suppressions.len(), 1);
        assert_eq!(f.suppressions[0].target_line, 4);
    }

    #[test]
    fn multi_rule_marker_expands_to_one_suppression_per_rule() {
        let src = "fn f() {\n    total.unwrap(); // lint: allow(P01, D04, the pool already chunked this)\n}\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert_eq!(f.suppressions.len(), 2);
        assert_eq!(f.suppressions[0].rule, RuleId::P01);
        assert_eq!(f.suppressions[1].rule, RuleId::D04);
        for s in &f.suppressions {
            assert_eq!(s.reason, "the pool already chunked this");
            assert_eq!(s.target_line, 2);
        }
        assert!(f.bad_markers.is_empty());
    }

    #[test]
    fn multi_rule_marker_without_reason_is_bad() {
        let f = SourceFile::parse(
            "crates/core/src/x.rs",
            "// lint: allow(P01, D04)\nfn f() {}\n",
        );
        assert!(f.suppressions.is_empty());
        assert_eq!(f.bad_markers.len(), 1);
        assert!(f.bad_markers[0].problem.contains("reason"));
    }

    #[test]
    fn reason_mentioning_a_rule_mid_sentence_still_parses() {
        let src = "// lint: allow(P01, D04 covers the sum, this is the remainder)\nfn f() { x.unwrap(); }\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert_eq!(f.suppressions.len(), 1);
        assert_eq!(f.suppressions[0].rule, RuleId::P01);
        assert_eq!(
            f.suppressions[0].reason,
            "D04 covers the sum, this is the remainder"
        );
    }

    #[test]
    fn marker_inside_cfg_test_region_is_parsed() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {\n        x.unwrap(); // lint: allow(P01, test fixture)\n    }\n}\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        // The marker parses like any other; whether it counts as stale
        // is the engine's call (it skips L01 on test lines).
        assert_eq!(f.suppressions.len(), 1);
        assert!(f.is_test_line(f.suppressions[0].target_line));
    }

    #[test]
    fn marker_without_reason_is_bad() {
        let f = SourceFile::parse("crates/core/src/x.rs", "// lint: allow(P01)\nfn f() {}\n");
        assert!(f.suppressions.is_empty());
        assert_eq!(f.bad_markers.len(), 1);
        assert!(f.bad_markers[0].problem.contains("reason"));
    }

    #[test]
    fn marker_with_unknown_rule_is_bad() {
        let f = SourceFile::parse(
            "crates/core/src/x.rs",
            "// lint: allow(Z99, because)\nfn f() {}\n",
        );
        assert_eq!(f.bad_markers.len(), 1);
        assert!(f.bad_markers[0].problem.contains("unknown rule"));
    }

    #[test]
    fn meta_rules_cannot_be_suppressed() {
        let f = SourceFile::parse(
            "crates/core/src/x.rs",
            "// lint: allow(L00, nice try)\nfn f() {}\n",
        );
        assert_eq!(f.bad_markers.len(), 1);
        assert!(f.bad_markers[0].problem.contains("cannot be suppressed"));
    }

    #[test]
    fn par_reference_detection() {
        let yes = SourceFile::parse("crates/cluster/src/x.rs", "use incprof_par::reduce_chunks;");
        let no = SourceFile::parse("crates/cluster/src/x.rs", "fn f() {}");
        assert!(yes.references_par);
        assert!(!no.references_par);
    }
}
