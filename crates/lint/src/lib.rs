//! `incprof-lint`: a workspace-aware static-analysis pass enforcing
//! IncProf's determinism, clock, and panic invariants.
//!
//! The reproduction's core claims — identical inputs produce identical
//! phase reports, virtual time drives everything except the sanctioned
//! wall collector, and library crates never panic on caller data — are
//! easy to state and easy to erode one commit at a time. This crate
//! turns them into named, machine-checked rules:
//!
//! | rule | invariant |
//! |------|-----------|
//! | D01  | wall-clock hygiene: `Instant::now`/`SystemTime` only in the clock allowlist |
//! | D02  | deterministic iteration: no `HashMap`/`HashSet` in analysis crates |
//! | D03  | thread hygiene: threads only in `incprof-par` and the collector |
//! | D04  | chunked float reductions: no raw `.sum()` bypassing `reduce_chunks` |
//! | O01  | obs names come from `incprof_obs::names`, not call-site literals |
//! | P01  | no `unwrap`/`expect` in library code without a justified marker |
//! | P02  | no panic macro reachable from a public library API |
//! | D05  | no blocking call reachable from worker/drain hot paths |
//! | A01  | no allocation constructors reachable from per-snapshot ingest |
//! | L00  | malformed suppression marker (meta, unsuppressible) |
//! | L01  | stale suppression marker (meta, unsuppressible) |
//!
//! Analysis is multi-pass: [`lexer`] produces a token stream that
//! distinguishes identifiers, strings, chars, lifetimes, and
//! punctuation (so `"Instant::now"` inside a string or a comment never
//! fires), [`source`] layers `#[cfg(test)]` region detection and
//! suppression-marker parsing on top, and [`rules`] pattern-matches the
//! stream for the per-file rules. On top of that, [`parse`] recovers
//! the item skeleton (fn/impl/trait/mod/use, bodies as token slices),
//! [`symbols`] resolves names per crate, [`callgraph`] links call sites
//! into a workspace call graph with confident/ambiguous edge labels,
//! and [`dataflow`] computes reachability over the confident edges —
//! powering the graph rules (P02/D05/A01) and the `incprof callgraph`
//! export that joins static structure against detected phases.
//! Findings can be silenced per line with
//! `// lint: allow(RULE, reason)` (several rules may share one marker:
//! `// lint: allow(P01, D04, reason)`) — the reason is mandatory, and
//! stale markers are themselves reported (L01) so suppressions cannot
//! outlive the code they excused.
//!
//! The pass runs three ways: as the `incprof-lint` binary (and the
//! `incprof lint` CLI subcommand), as the tier-1 `tests/lint_gate.rs`
//! test, and as a step in `scripts/check.sh` / CI. See `docs/LINTS.md`
//! for the full rule catalog and the rationale behind every scope
//! table entry.

#![warn(missing_docs)]

pub mod callgraph;
pub mod config;
pub mod dataflow;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod source;
pub mod symbols;

pub use callgraph::StaticCallGraph;
pub use config::Config;
pub use diag::{Diagnostic, RuleId, Severity};
pub use engine::{
    analyze_subtree, find_workspace_root, lint_files, lint_source, lint_source_counted,
    lint_workspace, lint_workspace_analyzed, LintReport, WorkspaceAnalysis,
};
