//! Rule severities and the documented scope/allowlist tables.
//!
//! Scopes are part of each rule's *definition*: D01 is not "no wall
//! clocks anywhere" but "no wall clocks outside the places whose job is
//! wall time". The tables below are therefore deliberate, reviewed
//! configuration — changing them is changing project policy, and the
//! rationale for every entry lives in `docs/LINTS.md`.

use crate::diag::{RuleId, Severity};
use std::collections::BTreeMap;

/// Directories (workspace-relative prefixes) never scanned: vendored
/// dependency shims are third-party API surface, not project code, and
/// build output is not source.
pub const SKIP_PREFIXES: &[&str] = &["shims/", "target/", ".git/"];

/// Crates whose entire source is measurement harness (figure
/// generators, speedup drivers). Exempt from all rules: they are the
/// code that *measures* wall time and prints ad-hoc output.
pub const HARNESS_CRATES: &[&str] = &["bench"];

/// D02: analysis crates whose container iteration can reach serialized
/// output (reports, JSON dumps, rendered tables).
pub const D02_CRATES: &[&str] = &["profile", "cluster", "core", "collect"];

/// D04: crates whose float reductions must go through
/// `incprof_par::reduce_chunks` (only files that reference
/// `incprof_par` are in scope — code nowhere near the pool has no
/// chunk-boundary obligation).
pub const D04_CRATES: &[&str] = &["profile", "cluster", "core", "collect", "apps"];

/// P01: library crates held to panic hygiene. Binaries (`cli`), the
/// harness crates, and the simulation substrate (`appekg`, `mpisim`,
/// `apps`) are excluded: their unwraps terminate a tool, not a library
/// caller.
pub const P01_CRATES: &[&str] = &[
    "profile", "cluster", "core", "collect", "runtime", "obs", "par", "lint", "serve", "shard",
    "store",
];

/// O01: crates exempt from the literal-name ban. Only `obs` itself,
/// where the `names` module and the registry internals legitimately
/// spell names out.
pub const O01_EXEMPT_CRATES: &[&str] = &["obs"];

/// D05: hot-path roots (qualified fn names) from which no blocking call
/// may be confidently reachable. `Session::drain_traced` is the serve
/// worker drain (one call per queued snapshot under session lock), and
/// `OnlinePhaseDetector::observe` is the per-interval streaming update
/// both the daemon and the CLI sit on. The `par` pool task bodies are
/// closures — invisible to the item parser — so `Pool::map_chunks`,
/// the execution funnel every pool primitive drains through, stands in
/// for them.
pub const D05_ROOTS: &[&str] = &[
    "Session::drain_traced",
    "OnlinePhaseDetector::observe",
    "Pool::map_chunks",
];

/// A01: per-snapshot ingest roots from which allocation constructors
/// are flagged (Warn: allocation in a hot loop is a cost smell, not a
/// correctness bug). Setup/recovery paths go in `a01_allow`.
pub const A01_ROOTS: &[&str] = &[
    "Session::enqueue",
    "Session::drain_traced",
    "OnlinePhaseDetector::observe",
];

/// Identifier called with a name argument that O01 watches.
pub const O01_CALLEES: &[&str] = &[
    "counter",
    "gauge",
    "histogram",
    "span",
    "find_span",
    "enter_traced",
];

/// Per-rule severity and scope configuration.
///
/// The D01/D03 allowlists are *data*, not code: callers (and future
/// config files) extend them per deployment, and each default entry is
/// documented where it is declared. An entry matches a file when it
/// equals the workspace-relative path or is a `/`-terminated prefix of
/// it.
#[derive(Debug, Clone)]
pub struct Config {
    severities: BTreeMap<RuleId, Severity>,
    /// Promote warnings to errors for exit-code purposes.
    pub deny_warnings: bool,
    /// D01: files (or `/`-terminated path prefixes) allowed to read the
    /// wall clock directly.
    pub d01_allow: Vec<String>,
    /// D03: files (or `/`-terminated path prefixes) allowed to create
    /// threads.
    pub d03_allow: Vec<String>,
    /// A01: files (or `/`-terminated path prefixes) whose allocations
    /// are setup/recovery work even when reachable from ingest roots.
    pub a01_allow: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        let mut severities = BTreeMap::new();
        for &r in RuleId::ALL {
            // D04 flags a heuristic pattern (raw .sum() near the pool),
            // A01 flags allocation *cost* rather than a correctness
            // bug, and L01 flags stale markers; all default to Warn.
            // The invariant rules are errors outright.
            let sev = match r {
                RuleId::D04 | RuleId::A01 | RuleId::L01 => Severity::Warn,
                _ => Severity::Error,
            };
            severities.insert(r, sev);
        }
        let d01_allow = [
            // The clock abstraction itself: the one sanctioned Instant::now.
            "crates/runtime/src/clock.rs",
            // The wall collector ticks on real deadlines by definition.
            "crates/collect/src/collector.rs",
            // Obs spans over TimeSource::Wall.
            "crates/obs/src/span.rs",
            // The app harness stamps wall progress for operator output.
            "crates/apps/src/harness.rs",
            // The daemon stamps frame arrival for ingest-latency metrics
            // and polls sockets on real timeouts.
            "crates/serve/src/server.rs",
            // The admin plane stamps scrape time for idle-age gauges; it
            // is read-only and never feeds the analysis pipeline.
            "crates/serve/src/admin.rs",
            // The shard router bounds backend-reply waits with real
            // deadlines; replies never feed the analysis pipeline.
            "crates/shard/src/router.rs",
        ]
        .map(String::from)
        .to_vec();
        let d03_allow = [
            // The deterministic worker pool is the sanctioned spawner.
            "crates/par/",
            // The wall collector owns its tick thread.
            "crates/collect/src/collector.rs",
            // The daemon's acceptor and bounded worker threads.
            "crates/serve/src/server.rs",
            // The shard router's acceptor, admin, and per-connection
            // threads mirror the daemon's.
            "crates/shard/",
        ]
        .map(String::from)
        .to_vec();
        let a01_allow = [
            // Rehydration from the store is recovery, not steady state.
            "crates/store/",
        ]
        .map(String::from)
        .to_vec();
        Config {
            severities,
            deny_warnings: false,
            d01_allow,
            d03_allow,
            a01_allow,
        }
    }
}

impl Config {
    /// The configured severity for `rule`.
    pub fn severity(&self, rule: RuleId) -> Severity {
        self.severities
            .get(&rule)
            .copied()
            .unwrap_or(Severity::Error)
    }

    /// Set the severity for `rule`.
    pub fn set_severity(&mut self, rule: RuleId, sev: Severity) {
        self.severities.insert(rule, sev);
    }

    /// Builder-style `deny_warnings` toggle.
    pub fn deny_warnings(mut self) -> Self {
        self.deny_warnings = true;
        self
    }

    /// The severity a diagnostic of `rule` is *reported* at, after the
    /// `deny_warnings` promotion.
    pub fn effective_severity(&self, rule: RuleId) -> Severity {
        match self.severity(rule) {
            Severity::Warn if self.deny_warnings => Severity::Error,
            s => s,
        }
    }

    /// Whether `rel_path` may read the wall clock (D01 scope).
    pub fn d01_allows(&self, rel_path: &str) -> bool {
        scope_match(&self.d01_allow, rel_path)
    }

    /// Whether `rel_path` may create threads (D03 scope).
    pub fn d03_allows(&self, rel_path: &str) -> bool {
        scope_match(&self.d03_allow, rel_path)
    }

    /// Whether allocations in `rel_path` are exempt from A01 (setup
    /// or recovery scope).
    pub fn a01_allows(&self, rel_path: &str) -> bool {
        scope_match(&self.a01_allow, rel_path)
    }
}

/// An entry matches on exact path, or as a prefix when `/`-terminated.
fn scope_match(scopes: &[String], rel_path: &str) -> bool {
    scopes
        .iter()
        .any(|p| rel_path == p.as_str() || (p.ends_with('/') && rel_path.starts_with(p.as_str())))
}

/// The crate a workspace-relative path belongs to (`crates/<name>/…`),
/// or `None` for the umbrella package's own `src/` and `tests/`.
pub fn crate_of(rel_path: &str) -> Option<&str> {
    let rest = rel_path.strip_prefix("crates/")?;
    rest.split('/').next()
}

/// Whether the whole file is test or bench code by location.
pub fn is_test_path(rel_path: &str) -> bool {
    rel_path.starts_with("tests/") || rel_path.contains("/tests/") || rel_path.contains("/benches/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_severities() {
        let c = Config::default();
        assert_eq!(c.severity(RuleId::P01), Severity::Error);
        assert_eq!(c.severity(RuleId::D04), Severity::Warn);
        assert_eq!(c.effective_severity(RuleId::D04), Severity::Warn);
        assert_eq!(
            c.deny_warnings().effective_severity(RuleId::D04),
            Severity::Error
        );
    }

    #[test]
    fn scopes_are_config_data() {
        let c = Config::default();
        // Exact-path entries.
        assert!(c.d01_allows("crates/runtime/src/clock.rs"));
        assert!(c.d01_allows("crates/serve/src/server.rs"));
        assert!(c.d01_allows("crates/serve/src/admin.rs"));
        assert!(c.d01_allows("crates/shard/src/router.rs"));
        assert!(!c.d01_allows("crates/shard/src/ring.rs"));
        assert!(!c.d01_allows("crates/serve/src/session.rs"));
        assert!(!c.d01_allows("crates/core/src/pipeline.rs"));
        // `/`-terminated entries are prefixes; others are not.
        assert!(c.d03_allows("crates/par/src/pool.rs"));
        assert!(c.d03_allows("crates/serve/src/server.rs"));
        assert!(c.d03_allows("crates/shard/src/router.rs"));
        assert!(!c.d03_allows("crates/serve/src/client.rs"));
        assert!(!c.d03_allows("crates/collect/src/collector_helper.rs"));
        // A caller can extend the scope without touching rule code.
        let mut c = c;
        c.d03_allow.push("crates/experimental/".to_string());
        assert!(c.d03_allows("crates/experimental/src/x.rs"));
    }

    #[test]
    fn crate_and_test_classification() {
        assert_eq!(crate_of("crates/core/src/pipeline.rs"), Some("core"));
        assert_eq!(crate_of("src/lib.rs"), None);
        assert!(is_test_path("tests/lint_gate.rs"));
        assert!(is_test_path("crates/obs/tests/obs_integration.rs"));
        assert!(is_test_path("crates/bench/benches/apps.rs"));
        assert!(!is_test_path("crates/obs/src/span.rs"));
    }
}
