//! Rule severities and the documented scope/allowlist tables.
//!
//! Scopes are part of each rule's *definition*: D01 is not "no wall
//! clocks anywhere" but "no wall clocks outside the places whose job is
//! wall time". The tables below are therefore deliberate, reviewed
//! configuration — changing them is changing project policy, and the
//! rationale for every entry lives in `docs/LINTS.md`.

use crate::diag::{RuleId, Severity};
use std::collections::BTreeMap;

/// Directories (workspace-relative prefixes) never scanned: vendored
/// dependency shims are third-party API surface, not project code, and
/// build output is not source.
pub const SKIP_PREFIXES: &[&str] = &["shims/", "target/", ".git/"];

/// Crates whose entire source is measurement harness (figure
/// generators, speedup drivers). Exempt from all rules: they are the
/// code that *measures* wall time and prints ad-hoc output.
pub const HARNESS_CRATES: &[&str] = &["bench"];

/// D01: files allowed to read the wall clock directly.
pub const D01_ALLOW: &[&str] = &[
    // The clock abstraction itself: the one sanctioned Instant::now.
    "crates/runtime/src/clock.rs",
    // The wall collector ticks on real deadlines by definition.
    "crates/collect/src/collector.rs",
    // Obs spans over TimeSource::Wall.
    "crates/obs/src/span.rs",
    // The app harness stamps wall progress for operator output.
    "crates/apps/src/harness.rs",
];

/// D02: analysis crates whose container iteration can reach serialized
/// output (reports, JSON dumps, rendered tables).
pub const D02_CRATES: &[&str] = &["profile", "cluster", "core", "collect"];

/// D03: path prefixes allowed to create threads.
pub const D03_ALLOW: &[&str] = &[
    // The deterministic worker pool is the sanctioned spawner.
    "crates/par/",
    // The wall collector owns its tick thread.
    "crates/collect/src/collector.rs",
];

/// D04: crates whose float reductions must go through
/// `incprof_par::reduce_chunks` (only files that reference
/// `incprof_par` are in scope — code nowhere near the pool has no
/// chunk-boundary obligation).
pub const D04_CRATES: &[&str] = &["profile", "cluster", "core", "collect", "apps"];

/// P01: library crates held to panic hygiene. Binaries (`cli`), the
/// harness crates, and the simulation substrate (`appekg`, `mpisim`,
/// `apps`) are excluded: their unwraps terminate a tool, not a library
/// caller.
pub const P01_CRATES: &[&str] = &[
    "profile", "cluster", "core", "collect", "runtime", "obs", "par", "lint",
];

/// O01: crates exempt from the literal-name ban. Only `obs` itself,
/// where the `names` module and the registry internals legitimately
/// spell names out.
pub const O01_EXEMPT_CRATES: &[&str] = &["obs"];

/// Identifier called with a name argument that O01 watches.
pub const O01_CALLEES: &[&str] = &["counter", "gauge", "histogram", "span", "find_span"];

/// Per-rule severity configuration.
#[derive(Debug, Clone)]
pub struct Config {
    severities: BTreeMap<RuleId, Severity>,
    /// Promote warnings to errors for exit-code purposes.
    pub deny_warnings: bool,
}

impl Default for Config {
    fn default() -> Self {
        let mut severities = BTreeMap::new();
        for &r in RuleId::ALL {
            // D04 flags a heuristic pattern (raw .sum() near the pool)
            // and L01 flags stale markers; both default to Warn. The
            // invariant rules are errors outright.
            let sev = match r {
                RuleId::D04 | RuleId::L01 => Severity::Warn,
                _ => Severity::Error,
            };
            severities.insert(r, sev);
        }
        Config {
            severities,
            deny_warnings: false,
        }
    }
}

impl Config {
    /// The configured severity for `rule`.
    pub fn severity(&self, rule: RuleId) -> Severity {
        self.severities
            .get(&rule)
            .copied()
            .unwrap_or(Severity::Error)
    }

    /// Set the severity for `rule`.
    pub fn set_severity(&mut self, rule: RuleId, sev: Severity) {
        self.severities.insert(rule, sev);
    }

    /// Builder-style `deny_warnings` toggle.
    pub fn deny_warnings(mut self) -> Self {
        self.deny_warnings = true;
        self
    }

    /// The severity a diagnostic of `rule` is *reported* at, after the
    /// `deny_warnings` promotion.
    pub fn effective_severity(&self, rule: RuleId) -> Severity {
        match self.severity(rule) {
            Severity::Warn if self.deny_warnings => Severity::Error,
            s => s,
        }
    }
}

/// The crate a workspace-relative path belongs to (`crates/<name>/…`),
/// or `None` for the umbrella package's own `src/` and `tests/`.
pub fn crate_of(rel_path: &str) -> Option<&str> {
    let rest = rel_path.strip_prefix("crates/")?;
    rest.split('/').next()
}

/// Whether the whole file is test or bench code by location.
pub fn is_test_path(rel_path: &str) -> bool {
    rel_path.starts_with("tests/") || rel_path.contains("/tests/") || rel_path.contains("/benches/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_severities() {
        let c = Config::default();
        assert_eq!(c.severity(RuleId::P01), Severity::Error);
        assert_eq!(c.severity(RuleId::D04), Severity::Warn);
        assert_eq!(c.effective_severity(RuleId::D04), Severity::Warn);
        assert_eq!(
            c.deny_warnings().effective_severity(RuleId::D04),
            Severity::Error
        );
    }

    #[test]
    fn crate_and_test_classification() {
        assert_eq!(crate_of("crates/core/src/pipeline.rs"), Some("core"));
        assert_eq!(crate_of("src/lib.rs"), None);
        assert!(is_test_path("tests/lint_gate.rs"));
        assert!(is_test_path("crates/obs/tests/obs_integration.rs"));
        assert!(is_test_path("crates/bench/benches/apps.rs"));
        assert!(!is_test_path("crates/obs/src/span.rs"));
    }
}
