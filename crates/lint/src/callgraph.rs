//! The workspace static call graph, built by pattern-matching call
//! shapes inside parsed function bodies against the symbol table.
//!
//! Every edge carries a confidence label:
//!
//! * **Confident** — the callee resolved uniquely (same file, unique in
//!   crate, `use`-aliased unique def, `Type::method` with a unique
//!   definition, or `self.method()` inside the owning impl). These are
//!   the edges the dataflow layer propagates hazards over.
//! * **Ambiguous** — the name matched more than one definition, or a
//!   method receiver we cannot type. Reported in the JSON for human
//!   review but never used to fire a graph rule, so a wrong guess can
//!   cause a missed warning, not a false positive.
//!
//! Besides edges, each node records *facts*: hazard-relevant calls that
//! appear directly in its body (panic macros, blocking primitives,
//! allocation constructors), again with the source line so graph rules
//! can point at the exact site.

use crate::diag::json_escape;
use crate::lexer::{Token, TokenKind};
use crate::parse::ParsedFile;
use crate::symbols::SymbolTable;
use std::collections::BTreeMap;

/// Edge label: did the callee resolve uniquely?
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Confidence {
    /// Unique resolution; hazards propagate over this edge.
    Confident,
    /// Multiple candidates or an untyped receiver; reported only.
    Ambiguous,
}

impl Confidence {
    /// Lowercase label used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Confidence::Confident => "confident",
            Confidence::Ambiguous => "ambiguous",
        }
    }
}

/// One call edge between two workspace functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Caller node index.
    pub caller: usize,
    /// Callee node index.
    pub callee: usize,
    /// Resolution confidence.
    pub confidence: Confidence,
    /// 1-based line of the call site.
    pub line: u32,
}

/// The hazard classes the graph rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FactKind {
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    Panic,
    /// Lock acquisition, file/socket IO, or `thread::sleep`.
    Blocking,
    /// Vec/Box/String constructors and `vec!`.
    Alloc,
}

impl FactKind {
    /// Lowercase label used in JSON and diagnostics.
    pub fn as_str(self) -> &'static str {
        match self {
            FactKind::Panic => "panic",
            FactKind::Blocking => "blocking",
            FactKind::Alloc => "alloc",
        }
    }
}

/// A hazard-relevant call observed directly in a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fact {
    /// Node index of the function whose body contains the site.
    pub node: usize,
    /// Hazard class.
    pub kind: FactKind,
    /// The matched callee text (e.g. `panic!`, `.lock(`, `Vec::new`).
    pub what: String,
    /// 1-based line of the site.
    pub line: u32,
}

/// The workspace call graph. Node indices are indices into the symbol
/// table's def list (`SymbolTable::defs`), so graph consumers can get
/// at names, files, and visibility without a parallel table.
#[derive(Debug, Clone, Default)]
pub struct StaticCallGraph {
    /// All edges, sorted by (caller, callee, line).
    pub edges: Vec<Edge>,
    /// Direct hazard sites per function body.
    pub facts: Vec<Fact>,
    /// Number of nodes (mirrors `SymbolTable::defs.len()`).
    pub nodes: usize,
}

/// Blocking callee patterns: `Type::fn` paths and `.method(` calls.
const BLOCKING_PATHS: &[(&str, &str)] = &[
    ("thread", "sleep"),
    ("File", "open"),
    ("File", "create"),
    ("fs", "read_to_string"),
    ("fs", "read_dir"),
    ("fs", "read"),
    ("fs", "write"),
    ("TcpListener", "bind"),
    ("TcpStream", "connect"),
    ("UdpSocket", "bind"),
];

/// Blocking method names matched as `.name(` (receiver unknown).
const BLOCKING_METHODS: &[&str] = &["lock", "recv", "join", "read_to_end", "read_to_string"];

/// Allocation constructor paths. Deliberately excludes `format!`,
/// `.to_string()`, and `.to_owned()`: those dominate cold error paths
/// and would drown the signal.
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
];

/// Panic-family macro names (matched as `name!`). `unwrap`/`expect`
/// stay P01's domain so one site never needs two markers.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

impl StaticCallGraph {
    /// Build the graph. `tokens` maps each workspace-relative path to
    /// its lexed token stream (body ranges in the symbol table index
    /// into these), and `parsed` is kept for module context.
    pub fn build(
        symbols: &SymbolTable,
        tokens: &BTreeMap<String, Vec<Token>>,
        _parsed: &BTreeMap<String, ParsedFile>,
    ) -> StaticCallGraph {
        let mut graph = StaticCallGraph {
            nodes: symbols.defs.len(),
            ..StaticCallGraph::default()
        };
        for (node, def) in symbols.defs.iter().enumerate() {
            let Some(toks) = tokens.get(&def.file) else {
                continue;
            };
            let body = &toks[def.body.clone()];
            scan_body(node, def, body, symbols, &mut graph);
        }
        graph.edges.sort_by_key(|e| (e.caller, e.callee, e.line));
        graph.edges.dedup();
        graph.facts.sort_by(|a, b| {
            (a.node, a.kind, a.line, &a.what).cmp(&(b.node, b.kind, b.line, &b.what))
        });
        graph
    }

    /// Edges as `(caller, callee, confident)` bare-name triples, for
    /// consumers that join the static graph against runtime function
    /// names (profiles key functions by unqualified name). Duplicate
    /// name pairs are collapsed, preferring the confident label.
    pub fn named_edges(&self, symbols: &SymbolTable) -> Vec<(String, String, bool)> {
        let mut by_pair: std::collections::BTreeMap<(String, String), bool> =
            std::collections::BTreeMap::new();
        for e in &self.edges {
            let key = (
                symbols.defs[e.caller].name.clone(),
                symbols.defs[e.callee].name.clone(),
            );
            let confident = e.confidence == Confidence::Confident;
            let slot = by_pair.entry(key).or_insert(confident);
            *slot |= confident;
        }
        by_pair
            .into_iter()
            .map(|((caller, callee), confident)| (caller, callee, confident))
            .collect()
    }

    /// Edge counts by confidence, for stats output.
    pub fn edge_counts(&self) -> (usize, usize) {
        let confident = self
            .edges
            .iter()
            .filter(|e| e.confidence == Confidence::Confident)
            .count();
        (confident, self.edges.len() - confident)
    }

    /// Render the graph as deterministic JSON: functions sorted by
    /// (file, line), edges by (caller, callee, line), facts likewise.
    pub fn render_json(&self, symbols: &SymbolTable) -> String {
        let mut out = String::from("{\n  \"functions\": [\n");
        for (i, d) in symbols.defs.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\":{},\"name\":\"{}\",\"qualified\":\"{}\",\"file\":\"{}\",\"line\":{},\"crate\":\"{}\",\"pub\":{}}}{}\n",
                i,
                json_escape(&d.name),
                json_escape(&d.qualified),
                json_escape(&d.file),
                d.line,
                json_escape(&d.crate_name),
                d.is_pub,
                if i + 1 < symbols.defs.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"edges\": [\n");
        for (i, e) in self.edges.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"caller\":{},\"callee\":{},\"confidence\":\"{}\",\"line\":{}}}{}\n",
                e.caller,
                e.callee,
                e.confidence.as_str(),
                e.line,
                if i + 1 < self.edges.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"facts\": [\n");
        for (i, f) in self.facts.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"node\":{},\"kind\":\"{}\",\"what\":\"{}\",\"line\":{}}}{}\n",
                f.node,
                f.kind.as_str(),
                json_escape(&f.what),
                f.line,
                if i + 1 < self.facts.len() { "," } else { "" }
            ));
        }
        let (confident, ambiguous) = self.edge_counts();
        out.push_str(&format!(
            "  ],\n  \"stats\": {{\"functions\":{},\"edges_confident\":{},\"edges_ambiguous\":{}}}\n}}\n",
            self.nodes, confident, ambiguous
        ));
        out
    }
}

/// Rust keywords and flow constructs that look like `name(` call shapes
/// but are not calls.
fn is_non_call_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "fn"
            | "let"
            | "loop"
            | "move"
            | "in"
            | "as"
            | "else"
            | "Some"
            | "None"
            | "Ok"
            | "Err"
            | "Box" // Box::new handled as a path/fact, `Box(..)` is not a call
    )
}

fn scan_body(
    node: usize,
    def: &crate::symbols::FnDef,
    body: &[Token],
    symbols: &SymbolTable,
    graph: &mut StaticCallGraph,
) {
    let owner = def.owner.as_deref();
    let mut i = 0usize;
    while i < body.len() {
        let t = &body[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let name = t.text.as_str();
        let line = t.line;

        // Macro invocation `name!(…)` — panic facts.
        if body.get(i + 1).is_some_and(|n| n.is_punct('!')) {
            if PANIC_MACROS.contains(&name) {
                graph.facts.push(Fact {
                    node,
                    kind: FactKind::Panic,
                    what: format!("{name}!"),
                    line,
                });
            } else if name == "vec" {
                graph.facts.push(Fact {
                    node,
                    kind: FactKind::Alloc,
                    what: "vec!".to_owned(),
                    line,
                });
            }
            i += 2;
            continue;
        }

        // Path call `A::…::name(` — walk the `::` chain.
        if body.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && body.get(i + 2).is_some_and(|n| n.is_punct(':'))
        {
            let mut segs = vec![name.to_owned()];
            let mut j = i;
            while body.get(j + 1).is_some_and(|n| n.is_punct(':'))
                && body.get(j + 2).is_some_and(|n| n.is_punct(':'))
                && body.get(j + 3).is_some_and(|n| n.kind == TokenKind::Ident)
            {
                segs.push(body[j + 3].text.clone());
                j += 3;
            }
            let is_call = body.get(j + 1).is_some_and(|n| n.is_punct('('));
            if is_call && segs.len() >= 2 {
                let last = segs[segs.len() - 1].clone();
                let qual = segs[segs.len() - 2].clone();
                let site_line = body[j].line;
                // Hazard facts on well-known std paths.
                if BLOCKING_PATHS.iter().any(|&(t, f)| t == qual && f == last) {
                    graph.facts.push(Fact {
                        node,
                        kind: FactKind::Blocking,
                        what: format!("{qual}::{last}"),
                        line: site_line,
                    });
                } else if ALLOC_PATHS.iter().any(|&(t, f)| t == qual && f == last) {
                    graph.facts.push(Fact {
                        node,
                        kind: FactKind::Alloc,
                        what: format!("{qual}::{last}"),
                        line: site_line,
                    });
                } else {
                    let (candidates, confident) = symbols.resolve_qualified(&qual, &last);
                    push_edges(graph, node, &candidates, confident, site_line);
                }
            }
            i = j + 1;
            continue;
        }

        // Method call `.name(` — receiver heuristics.
        if i > 0 && body[i - 1].is_punct('.') {
            if body.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                if BLOCKING_METHODS.contains(&name) {
                    graph.facts.push(Fact {
                        node,
                        kind: FactKind::Blocking,
                        what: format!(".{name}("),
                        line,
                    });
                } else if name == "to_vec" {
                    graph.facts.push(Fact {
                        node,
                        kind: FactKind::Alloc,
                        what: ".to_vec(".to_owned(),
                        line,
                    });
                } else {
                    let self_recv = i >= 2 && body[i - 2].is_ident("self");
                    let (candidates, confident) = symbols.resolve_method(owner, self_recv, name);
                    push_edges(graph, node, &candidates, confident, line);
                }
            }
            i += 1;
            continue;
        }

        // Bare call `name(` — not a keyword, not preceded by `fn`.
        if body.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !is_non_call_keyword(name)
            && !(i > 0 && body[i - 1].is_ident("fn"))
        {
            let (candidates, confident) = symbols.resolve_bare(&def.file, name);
            push_edges(graph, node, &candidates, confident, line);
        }
        i += 1;
    }
}

/// Record edges for a resolution result. A confident resolution yields
/// exactly one confident edge; ambiguous candidates are all recorded as
/// ambiguous (capped to keep pathological fan-out bounded).
fn push_edges(
    graph: &mut StaticCallGraph,
    caller: usize,
    candidates: &[usize],
    confident: bool,
    line: u32,
) {
    const AMBIGUOUS_CAP: usize = 8;
    let confidence = if confident && candidates.len() == 1 {
        Confidence::Confident
    } else {
        Confidence::Ambiguous
    };
    for &callee in candidates
        .iter()
        .take(if confidence == Confidence::Confident {
            1
        } else {
            AMBIGUOUS_CAP
        })
    {
        // Self-recursion edges carry no new reachability information.
        if callee == caller {
            continue;
        }
        graph.edges.push(Edge {
            caller,
            callee,
            confidence,
            line,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_items;

    fn build(files: &[(&str, &str)]) -> (SymbolTable, StaticCallGraph) {
        let mut tokens = BTreeMap::new();
        let mut parsed = BTreeMap::new();
        for (p, src) in files {
            let toks = lex(src).tokens;
            parsed.insert(p.to_string(), parse_items(&toks));
            tokens.insert(p.to_string(), toks);
        }
        let symbols = SymbolTable::build(&parsed);
        let graph = StaticCallGraph::build(&symbols, &tokens, &parsed);
        (symbols, graph)
    }

    fn def_idx(s: &SymbolTable, qualified: &str) -> usize {
        s.defs
            .iter()
            .position(|d| d.qualified == qualified)
            .unwrap_or_else(|| panic!("no def {qualified}"))
    }

    #[test]
    fn bare_same_file_call_is_confident() {
        let (s, g) = build(&[(
            "crates/core/src/a.rs",
            "fn helper() {}\npub fn entry() { helper(); }\n",
        )]);
        let caller = def_idx(&s, "entry");
        let callee = def_idx(&s, "helper");
        assert!(g.edges.iter().any(|e| e.caller == caller
            && e.callee == callee
            && e.confidence == Confidence::Confident));
    }

    #[test]
    fn cross_crate_duplicate_is_ambiguous() {
        let (s, g) = build(&[
            ("crates/core/src/a.rs", "pub fn shared() {}\n"),
            ("crates/par/src/lib.rs", "pub fn shared() {}\n"),
            ("crates/cli/src/lib.rs", "pub fn run() { shared(); }\n"),
        ]);
        let caller = def_idx(&s, "run");
        let amb: Vec<&Edge> = g
            .edges
            .iter()
            .filter(|e| e.caller == caller && e.confidence == Confidence::Ambiguous)
            .collect();
        assert_eq!(amb.len(), 2);
    }

    #[test]
    fn self_method_call_resolves_to_owner() {
        let (s, g) = build(&[(
            "crates/serve/src/s.rs",
            "struct S;\nimpl S {\n    pub fn outer(&self) { self.inner(); }\n    fn inner(&self) {}\n}\n",
        )]);
        let caller = def_idx(&s, "S::outer");
        let callee = def_idx(&s, "S::inner");
        assert!(g.edges.iter().any(|e| e.caller == caller
            && e.callee == callee
            && e.confidence == Confidence::Confident));
    }

    #[test]
    fn type_qualified_call_is_confident_when_unique() {
        let (s, g) = build(&[(
            "crates/core/src/a.rs",
            "struct T;\nimpl T {\n    pub fn make() -> T { T }\n}\npub fn f() { T::make(); }\n",
        )]);
        let caller = def_idx(&s, "f");
        let callee = def_idx(&s, "T::make");
        assert!(g.edges.iter().any(|e| e.caller == caller
            && e.callee == callee
            && e.confidence == Confidence::Confident));
    }

    #[test]
    fn hazard_facts_are_collected() {
        let (s, g) = build(&[(
            "crates/core/src/a.rs",
            "pub fn f() {\n    let v = Vec::new();\n    let m = x.lock();\n    panic!(\"boom\");\n    let b = vec![1];\n}\n",
        )]);
        let node = def_idx(&s, "f");
        let kinds: Vec<(FactKind, &str)> = g
            .facts
            .iter()
            .filter(|f| f.node == node)
            .map(|f| (f.kind, f.what.as_str()))
            .collect();
        assert!(kinds.contains(&(FactKind::Alloc, "Vec::new")));
        assert!(kinds.contains(&(FactKind::Blocking, ".lock(")));
        assert!(kinds.contains(&(FactKind::Panic, "panic!")));
        assert!(kinds.contains(&(FactKind::Alloc, "vec!")));
    }

    #[test]
    fn keywords_and_macros_do_not_become_edges() {
        let (s, g) = build(&[(
            "crates/core/src/a.rs",
            "pub fn f(x: u32) {\n    if (x > 0) {}\n    while (x > 0) {}\n    assert_eq!(x, 1);\n}\n",
        )]);
        let caller = def_idx(&s, "f");
        assert!(g.edges.iter().all(|e| e.caller != caller));
    }

    #[test]
    fn json_is_deterministic_and_sorted() {
        let files = [
            (
                "crates/core/src/a.rs",
                "pub fn a() { b(); }\npub fn b() {}\n",
            ),
            ("crates/core/src/b.rs", "pub fn c() { b(); }\n"),
        ];
        let (s1, g1) = build(&files);
        let (s2, g2) = build(&files);
        assert_eq!(g1.render_json(&s1), g2.render_json(&s2));
        assert!(g1.render_json(&s1).contains("\"edges_confident\""));
    }

    #[test]
    fn self_recursion_is_not_an_edge() {
        let (s, g) = build(&[(
            "crates/core/src/a.rs",
            "pub fn rec(n: u32) { if n > 0 { rec(n - 1); } }\n",
        )]);
        let node = def_idx(&s, "rec");
        assert!(g
            .edges
            .iter()
            .all(|e| !(e.caller == node && e.callee == node)));
    }
}
