// Fixture: a well-formed marker whose violation was refactored away —
// the marker itself is now the finding.
pub fn first(xs: &[u64]) -> Option<u64> {
    // lint: allow(P01, unwrap was removed in a refactor)
    xs.first().copied()
}
