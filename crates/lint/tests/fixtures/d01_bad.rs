// Fixture: reads the wall clock outside the D01 allowlist.
use std::time::{Instant, SystemTime};

pub fn elapsed() -> u128 {
    let start = Instant::now();
    start.elapsed().as_nanos()
}

pub fn stamp() -> SystemTime {
    SystemTime::now()
}
