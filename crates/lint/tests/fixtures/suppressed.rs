// Fixture: every violation here carries a justified allow marker, in
// both trailing and standalone positions.
pub fn first(xs: &[u64]) -> u64 {
    *xs.first().unwrap() // lint: allow(P01, caller checked non-empty)
}

pub fn background() {
    // lint: allow(D03, fixture demonstrates standalone markers)
    std::thread::spawn(|| {});
}
