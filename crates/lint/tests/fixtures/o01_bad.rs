// Fixture: obs names spelled as literals (and built with format!) at
// the call site instead of coming from incprof_obs::names.
pub fn record(k: usize) {
    incprof_obs::counter("cluster.kmeans.restarts").add(1);
    let _g = incprof_obs::span(&format!("cluster.kmeans.k{k}"));
}
