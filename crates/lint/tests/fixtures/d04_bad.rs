// Fixture: a raw float .sum() in a file that also uses the pool —
// exactly the reduction that must go through reduce_chunks to make
// thread count irrelevant to the result.
use incprof_par::pool;

pub fn total(xs: &[f64]) -> f64 {
    let _threads = pool().threads();
    xs.iter().sum::<f64>()
}
