// Fixture: malformed suppression markers, each a distinct L00.
pub fn first(xs: &[u64]) -> u64 {
    // lint: allow(P01)
    *xs.first().unwrap()
}

pub fn second(xs: &[u64]) -> u64 {
    // lint: allow(Z99, no such rule)
    *xs.get(1).unwrap()
}

pub fn third(xs: &[u64]) -> u64 {
    // lint: allow(L01, meta rules cannot be excused)
    *xs.get(2).unwrap()
}
