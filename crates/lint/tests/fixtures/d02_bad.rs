// Fixture: hash containers in an analysis crate (iteration order can
// reach serialized output).
use std::collections::{HashMap, HashSet};

pub fn tally(names: &[String]) -> HashMap<String, usize> {
    let mut seen: HashSet<&str> = HashSet::new();
    let mut out = HashMap::new();
    for n in names {
        if seen.insert(n) {
            *out.entry(n.clone()).or_insert(0) += 1;
        }
    }
    out
}
