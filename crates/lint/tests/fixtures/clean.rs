// Fixture: code that violates nothing — the sanctioned counterparts
// of every rule's banned pattern.
use std::collections::BTreeMap;

pub fn tally(names: &[String]) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for n in names {
        *out.entry(n.clone()).or_insert(0) += 1;
    }
    out
}

pub fn total(xs: &[f64]) -> f64 {
    incprof_par::reduce_chunks(xs, 1024)
}

pub fn first(xs: &[u64]) -> Option<u64> {
    xs.first().copied()
}

pub fn record() {
    incprof_obs::counter(incprof_obs::names::CLUSTER_SELECT_K_SWEEP).add(1);
}

#[cfg(test)]
mod tests {
    // Tests may panic and read the wall clock freely.
    #[test]
    fn unwrap_is_fine_here() {
        let start = std::time::Instant::now();
        let x: Option<u64> = Some(3);
        assert_eq!(x.unwrap(), 3);
        let _ = start.elapsed();
    }
}
