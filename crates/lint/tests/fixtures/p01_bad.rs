// Fixture: unmarked panics in library code.
pub fn first(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}

pub fn parsed(s: &str) -> u64 {
    s.parse().expect("caller promised digits")
}
