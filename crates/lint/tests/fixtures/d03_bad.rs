// Fixture: spawns a thread outside incprof-par and the collector.
pub fn background() {
    std::thread::spawn(|| {
        let _ = 1 + 1;
    });
}

pub fn scoped(xs: &mut [u64]) {
    std::thread::scope(|s| {
        s.spawn(|| xs[0] += 1);
    });
}
