//! Fixture-based positive/negative coverage for every rule, plus the
//! suppression grammar and a JSON golden. Each fixture under
//! `tests/fixtures/` is linted as if it sat at an in-scope production
//! path; negative runs move the same source to an exempt path and
//! expect silence.

use incprof_lint::{lint_files, lint_source, lint_source_counted, Config, RuleId, Severity};

const D01_BAD: &str = include_str!("fixtures/d01_bad.rs");
const D02_BAD: &str = include_str!("fixtures/d02_bad.rs");
const D03_BAD: &str = include_str!("fixtures/d03_bad.rs");
const D04_BAD: &str = include_str!("fixtures/d04_bad.rs");
const O01_BAD: &str = include_str!("fixtures/o01_bad.rs");
const P01_BAD: &str = include_str!("fixtures/p01_bad.rs");
const CLEAN: &str = include_str!("fixtures/clean.rs");
const SUPPRESSED: &str = include_str!("fixtures/suppressed.rs");
const L00_BAD: &str = include_str!("fixtures/l00_bad.rs");
const L01_STALE: &str = include_str!("fixtures/l01_stale.rs");

fn rules_and_lines(src: &str, path: &str) -> Vec<(RuleId, u32)> {
    lint_source(path, src, &Config::default())
        .into_iter()
        .map(|d| (d.rule, d.line))
        .collect()
}

#[test]
fn d01_fixture_positive_and_negative() {
    // One hit per wall-clock token: the import names `SystemTime`,
    // `Instant::now` fires once, the signature and body again.
    assert_eq!(
        rules_and_lines(D01_BAD, "crates/core/src/fixture.rs"),
        [
            (RuleId::D01, 2),
            (RuleId::D01, 5),
            (RuleId::D01, 9),
            (RuleId::D01, 10),
        ]
    );
    // The clock abstraction itself is the sanctioned home.
    assert!(rules_and_lines(D01_BAD, "crates/runtime/src/clock.rs").is_empty());
    // Harness crates measure wall time by definition.
    assert!(rules_and_lines(D01_BAD, "crates/bench/src/bin/speedup.rs").is_empty());
}

#[test]
fn d02_fixture_positive_and_negative() {
    let hits = rules_and_lines(D02_BAD, "crates/profile/src/fixture.rs");
    assert_eq!(hits.len(), 6, "{hits:?}");
    assert!(hits.iter().all(|(r, _)| *r == RuleId::D02));
    // Outside the analysis crates, hash containers are fine.
    assert!(rules_and_lines(D02_BAD, "crates/runtime/src/fixture.rs").is_empty());
}

#[test]
fn d03_fixture_positive_and_negative() {
    assert_eq!(
        rules_and_lines(D03_BAD, "crates/core/src/fixture.rs"),
        [(RuleId::D03, 3), (RuleId::D03, 9)]
    );
    assert!(rules_and_lines(D03_BAD, "crates/par/src/pool.rs").is_empty());
    assert!(rules_and_lines(D03_BAD, "crates/collect/src/collector.rs").is_empty());
}

#[test]
fn d04_fixture_positive_and_negative() {
    let diags = lint_source("crates/cluster/src/fixture.rs", D04_BAD, &Config::default());
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!((diags[0].rule, diags[0].line), (RuleId::D04, 8));
    // D04 defaults to a warning (heuristic rule)...
    assert_eq!(diags[0].severity, Severity::Warn);
    // ...promoted under deny-warnings.
    let denied = lint_source(
        "crates/cluster/src/fixture.rs",
        D04_BAD,
        &Config::default().deny_warnings(),
    );
    assert_eq!(denied[0].severity, Severity::Error);
    // Out of scope: crate not in D04 set.
    assert!(rules_and_lines(D04_BAD, "crates/runtime/src/fixture.rs").is_empty());
}

#[test]
fn o01_fixture_positive_and_negative() {
    assert_eq!(
        rules_and_lines(O01_BAD, "crates/core/src/fixture.rs"),
        [(RuleId::O01, 4), (RuleId::O01, 5)]
    );
    // The obs crate itself declares names.
    assert!(rules_and_lines(O01_BAD, "crates/obs/src/fixture.rs").is_empty());
}

#[test]
fn p01_fixture_positive_and_negative() {
    assert_eq!(
        rules_and_lines(P01_BAD, "crates/core/src/fixture.rs"),
        [(RuleId::P01, 3), (RuleId::P01, 7)]
    );
    // Binaries and the simulation substrate may panic.
    assert!(rules_and_lines(P01_BAD, "crates/cli/src/fixture.rs").is_empty());
    assert!(rules_and_lines(P01_BAD, "crates/apps/src/fixture.rs").is_empty());
    // Whole-file test locations too.
    assert!(rules_and_lines(P01_BAD, "crates/core/tests/fixture.rs").is_empty());
}

#[test]
fn clean_fixture_is_silent_in_the_strictest_scope() {
    let (diags, used) = lint_source_counted(
        "crates/cluster/src/fixture.rs",
        CLEAN,
        &Config::default().deny_warnings(),
    );
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(used, 0);
}

#[test]
fn suppressed_fixture_is_silent_and_counts_markers() {
    let (diags, used) = lint_source_counted(
        "crates/core/src/fixture.rs",
        SUPPRESSED,
        &Config::default().deny_warnings(),
    );
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(used, 2, "trailing and standalone markers both honored");
}

#[test]
fn l00_fixture_reports_every_malformed_marker() {
    // Each malformed marker is an L00 AND fails to silence its P01.
    assert_eq!(
        rules_and_lines(L00_BAD, "crates/core/src/fixture.rs"),
        [
            (RuleId::L00, 3),
            (RuleId::P01, 4),
            (RuleId::L00, 8),
            (RuleId::P01, 9),
            (RuleId::L00, 13),
            (RuleId::P01, 14),
        ]
    );
}

#[test]
fn l01_fixture_reports_the_stale_marker() {
    let diags = lint_source("crates/core/src/fixture.rs", L01_STALE, &Config::default());
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!((diags[0].rule, diags[0].line), (RuleId::L01, 4));
    assert_eq!(diags[0].severity, Severity::Warn);
}

#[test]
fn diagnostic_json_golden() {
    let diags = lint_source("crates/core/src/fixture.rs", P01_BAD, &Config::default());
    let rendered: Vec<String> = diags.iter().map(|d| d.render_json()).collect();
    assert_eq!(
        rendered,
        [
            r#"{"rule":"P01","severity":"error","file":"crates/core/src/fixture.rs","line":3,"message":"`.unwrap()` in library code: propagate the error, or mark the invariant with `// lint: allow(P01, <why it cannot fail>)`","excerpt":"*xs.first().unwrap()"}"#,
            r#"{"rule":"P01","severity":"error","file":"crates/core/src/fixture.rs","line":7,"message":"`.expect()` in library code: propagate the error, or mark the invariant with `// lint: allow(P01, <why it cannot fail>)`","excerpt":"s.parse().expect(\"caller promised digits\")"}"#,
        ]
    );
}

#[test]
fn report_json_is_deterministic_and_sorted() {
    // Files handed over in reverse path order, with the later file's
    // diagnostics on earlier lines: the rendered report must come out
    // sorted by (file, line, rule) regardless.
    let inputs = vec![
        (
            "crates/profile/src/zz_fixture.rs".to_string(),
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n".to_string(),
        ),
        (
            "crates/core/src/fixture.rs".to_string(),
            "fn g(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\nfn h(y: Option<u32>) -> u32 { y.expect(\"set\") }\n"
                .to_string(),
        ),
    ];
    let cfg = Config::default();
    let (report, _) = lint_files(&inputs, &cfg);
    let locations: Vec<(String, u32)> = report
        .diagnostics
        .iter()
        .map(|d| (d.file.clone(), d.line))
        .collect();
    assert_eq!(
        locations,
        [
            ("crates/core/src/fixture.rs".to_string(), 2),
            ("crates/core/src/fixture.rs".to_string(), 4),
            ("crates/profile/src/zz_fixture.rs".to_string(), 1),
        ]
    );
    // Byte-identical across runs, pinned against the golden file.
    let (again, _) = lint_files(&inputs, &cfg);
    assert_eq!(report.render_json(), again.render_json());
    assert_eq!(
        report.render_json(),
        include_str!("golden/multi_file_report.json"),
        "lint --json output drifted from tests/golden/multi_file_report.json"
    );
}

#[test]
fn human_rendering_has_location_rule_and_excerpt() {
    let diags = lint_source("crates/core/src/fixture.rs", P01_BAD, &Config::default());
    let human = diags[0].render_human();
    assert!(
        human.starts_with("crates/core/src/fixture.rs:3: error[P01]"),
        "{human}"
    );
    assert!(human.contains("\n    | *xs.first().unwrap()"), "{human}");
}
