//! The `incprof` binary: thin shell over [`incprof_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match incprof_cli::run(&args) {
        Ok(output) => println!("{output}"),
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{}", incprof_cli::USAGE);
            std::process::exit(2);
        }
    }
}
