//! The `incprof` binary: thin shell over [`incprof_cli`].
//!
//! Exit status: 0 on success, 2 on usage errors (bad flags, missing
//! arguments), 1 on runtime errors (I/O, JSON, pipeline).

use incprof_cli::CliError;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match incprof_cli::run(&args) {
        Ok(output) => println!("{output}"),
        Err(CliError::Lint(report)) => {
            // The rendered lint report IS the output; no log framing.
            println!("{report}");
            std::process::exit(1);
        }
        Err(e @ CliError::Usage(_)) => {
            incprof_obs::error!("{e}");
            eprintln!("{}", incprof_cli::USAGE);
            std::process::exit(2);
        }
        Err(e) => {
            incprof_obs::error!("{e}");
            std::process::exit(1);
        }
    }
}
