//! # incprof-cli
//!
//! The `incprof` command-line tool: run the phase-detection pipeline on
//! data from disk, mirroring how the paper's tooling was driven.
//!
//! ```text
//! incprof demo <dump.json>              generate a synthetic run dump
//! incprof render-reports <dump> <dir>   write per-sample gprof reports
//! incprof analyze-reports <dir> [opts]  analyze a directory of gprof
//!                                       flat-profile text reports (one
//!                                       cumulative report per interval,
//!                                       lexicographic file order)
//! incprof analyze-json <dump> [opts]    analyze a collected run dump
//! incprof lint [root] [--json] [-D]     run the workspace invariant
//!                                       lints (see docs/LINTS.md)
//! incprof serve [opts]                  run the streaming phase-detection
//!                                       daemon (docs/PROTOCOL.md)
//! incprof push <addr> <dump.json>       replay a run dump into a daemon
//!                                       and print its phase report
//! incprof query <addr> <session-id>     print an existing (or disk-
//!                                       recovered) session's report
//! incprof collect <out.json> [opts]     wall-clock collection of a
//!                                       synthetic workload until Ctrl-C
//!
//! options: --threshold <f>   Algorithm 1 coverage threshold (0.95)
//!          --kmax <n>        maximum k for the sweep (8)
//!          --silhouette      select k by silhouette instead of elbow
//!          --dbscan <eps> <min_pts>   cluster with DBSCAN
//!          --merge           merge phases sharing instrumentation sites
//!          --json            emit the analysis as JSON instead of text
//!
//! global:  --metrics <path>  write an observability run report on exit
//!          --verbose         raise logging to debug
//!          --threads <n>     analysis worker threads (default: the
//!                            INCPROF_THREADS environment variable, else
//!                            all available cores)
//! ```
//!
//! Exit status: 0 on success, 2 on usage errors, 1 on runtime (I/O,
//! JSON, pipeline) errors.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod serve_cmd;
mod shard_cmd;
pub use serve_cmd::{collect_cmd, push_cmd, query_cmd, serve_cmd, top_cmd};
pub use shard_cmd::shard_cmd;

use incprof_cluster::{DbscanParams, KSelectionMethod};
use incprof_collect::report_path::{clamp_monotone, parse_reports};
use incprof_collect::{IntervalMatrix, SampleSeries};
use incprof_core::merge::merge_phases_with_same_sites;
use incprof_core::report::{
    render_k_sweep, render_signatures, render_sites_table, render_timeline,
};
use incprof_core::{ClusteringMethod, PhaseAnalysis, PhaseDetector};
use incprof_profile::FunctionTable;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// A collected run, as serialized to disk: the function table plus the
/// cumulative sample series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunDump {
    /// Function names, indexed by id.
    pub table: FunctionTable,
    /// Cumulative profile samples.
    pub series: SampleSeries,
}

/// CLI errors.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Usage(String),
    /// I/O failure.
    Io(std::io::Error),
    /// Bad JSON.
    Json(serde_json::Error),
    /// Profile-data or pipeline failure.
    Pipeline(String),
    /// `incprof lint` found violations; the payload is the rendered
    /// report (already formatted for the terminal or as JSON).
    Lint(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Io(e) => write!(f, "I/O error: {e}"),
            CliError::Json(e) => write!(f, "JSON error: {e}"),
            CliError::Pipeline(m) => write!(f, "analysis error: {m}"),
            CliError::Lint(report) => write!(f, "{report}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Json(e)
    }
}

/// Parsed analysis options.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeOptions {
    /// Algorithm 1 coverage threshold.
    pub threshold: f64,
    /// k-sweep upper bound.
    pub k_max: usize,
    /// Use silhouette instead of elbow.
    pub silhouette: bool,
    /// Use DBSCAN with (eps, min_points).
    pub dbscan: Option<(f64, usize)>,
    /// Merge same-site phases after detection.
    pub merge: bool,
    /// Emit JSON.
    pub json: bool,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            threshold: 0.95,
            k_max: 8,
            silhouette: false,
            dbscan: None,
            merge: false,
            json: false,
        }
    }
}

/// Parse trailing options (everything after the positional args).
pub fn parse_options(args: &[String]) -> Result<AnalyzeOptions, CliError> {
    let mut opts = AnalyzeOptions::default();
    let mut i = 0;
    let take = |i: &mut usize, what: &str| -> Result<String, CliError> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| CliError::Usage(format!("{what} requires a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                opts.threshold = take(&mut i, "--threshold")?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("bad --threshold: {e}")))?;
                if !(0.0..=1.0).contains(&opts.threshold) {
                    return Err(CliError::Usage("--threshold must be in [0, 1]".into()));
                }
            }
            "--kmax" => {
                opts.k_max = take(&mut i, "--kmax")?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("bad --kmax: {e}")))?;
                if opts.k_max == 0 {
                    return Err(CliError::Usage("--kmax must be at least 1".into()));
                }
            }
            "--silhouette" => opts.silhouette = true,
            "--dbscan" => {
                let eps: f64 = take(&mut i, "--dbscan")?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("bad eps: {e}")))?;
                let min_points: usize = take(&mut i, "--dbscan")?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("bad min_points: {e}")))?;
                opts.dbscan = Some((eps, min_points));
            }
            "--merge" => opts.merge = true,
            "--json" => opts.json = true,
            other => return Err(CliError::Usage(format!("unknown option {other}"))),
        }
        i += 1;
    }
    Ok(opts)
}

fn detector_for(opts: &AnalyzeOptions) -> PhaseDetector {
    let clustering = match opts.dbscan {
        Some((eps, min_points)) => ClusteringMethod::Dbscan(DbscanParams { eps, min_points }),
        None => ClusteringMethod::KMeans {
            k_max: opts.k_max,
            selection: if opts.silhouette {
                KSelectionMethod::Silhouette
            } else {
                KSelectionMethod::Elbow
            },
        },
    };
    PhaseDetector {
        clustering,
        coverage_threshold: opts.threshold,
        ..PhaseDetector::default()
    }
}

/// Run the pipeline on an interval matrix with the given options.
pub fn analyze(matrix: &IntervalMatrix, opts: &AnalyzeOptions) -> Result<PhaseAnalysis, CliError> {
    let mut analysis = detector_for(opts)
        .detect(matrix)
        .map_err(|e| CliError::Pipeline(e.to_string()))?;
    if opts.merge {
        analysis = merge_phases_with_same_sites(&analysis);
    }
    Ok(analysis)
}

/// Render an analysis as the CLI's output (text table or JSON).
pub fn render(
    analysis: &PhaseAnalysis,
    matrix: &IntervalMatrix,
    table: &FunctionTable,
    opts: &AnalyzeOptions,
) -> Result<String, CliError> {
    if opts.json {
        Ok(serde_json::to_string_pretty(analysis)?)
    } else {
        let mut out = render_k_sweep(analysis);
        out.push('\n');
        out.push_str(&render_timeline(analysis));
        out.push('\n');
        out.push_str(&render_signatures(analysis, matrix, |id| table.name(id), 3));
        out.push('\n');
        out.push_str(&render_sites_table(
            "Discovered instrumentation sites",
            analysis,
            |id| table.name(id),
            &[],
        ));
        Ok(out)
    }
}

/// `incprof analyze-json <dump> [opts]`.
pub fn analyze_json(path: &Path, opts: &AnalyzeOptions) -> Result<String, CliError> {
    let text = std::fs::read_to_string(path)?;
    let mut dump: RunDump = serde_json::from_str(&text)?;
    dump.table.rebuild_index();
    let intervals = dump
        .series
        .interval_profiles()
        .map_err(|e| CliError::Pipeline(e.to_string()))?;
    let matrix = IntervalMatrix::from_interval_profiles(&intervals);
    let analysis = analyze(&matrix, opts)?;
    render(&analysis, &matrix, &dump.table, opts)
}

/// `incprof analyze-reports <dir> [opts]`: read every regular file in
/// `dir` in lexicographic name order as a cumulative gprof flat-profile
/// text report.
pub fn analyze_reports(dir: &Path, opts: &AnalyzeOptions) -> Result<String, CliError> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(CliError::Usage(format!(
            "no report files in {}",
            dir.display()
        )));
    }
    let reports: Vec<String> = paths
        .iter()
        .map(std::fs::read_to_string)
        .collect::<Result<_, _>>()?;
    let (cumulative, table) =
        parse_reports(&reports).map_err(|e| CliError::Pipeline(e.to_string()))?;
    let clamped = clamp_monotone(cumulative);
    let intervals =
        SampleSeries::deltas_of(&clamped).map_err(|e| CliError::Pipeline(e.to_string()))?;
    let matrix = IntervalMatrix::from_interval_profiles(&intervals);
    let analysis = analyze(&matrix, opts)?;
    render(&analysis, &matrix, &table, opts)
}

/// `incprof render-gmon <dump> <dir>`: write one binary `gmon.out.N`
/// per sample — the paper's literal on-disk artifact.
pub fn render_gmon_cmd(dump_path: &Path, out_dir: &Path) -> Result<String, CliError> {
    let text = std::fs::read_to_string(dump_path)?;
    let mut dump: RunDump = serde_json::from_str(&text)?;
    dump.table.rebuild_index();
    let n = incprof_collect::series_io::write_gmon_dir(&dump.series, &dump.table, out_dir)
        .map_err(|e| CliError::Pipeline(e.to_string()))?;
    Ok(format!("wrote {n} gmon binaries to {}", out_dir.display()))
}

/// `incprof analyze-gmon <dir> [opts]`: analyze a directory of binary
/// `gmon.out.N` cumulative profiles.
pub fn analyze_gmon(dir: &Path, opts: &AnalyzeOptions) -> Result<String, CliError> {
    let (series, table) = incprof_collect::series_io::read_gmon_dir(dir)
        .map_err(|e| CliError::Pipeline(e.to_string()))?;
    if series.is_empty() {
        return Err(CliError::Usage(format!(
            "no gmon files in {}",
            dir.display()
        )));
    }
    let intervals = series
        .interval_profiles()
        .map_err(|e| CliError::Pipeline(e.to_string()))?;
    let matrix = IntervalMatrix::from_interval_profiles(&intervals);
    let analysis = analyze(&matrix, opts)?;
    render(&analysis, &matrix, &table, opts)
}

/// `incprof render-reports <dump> <dir>`: write one gprof flat-profile
/// text report per sample (the paper's renamed per-interval files).
pub fn render_reports_cmd(dump_path: &Path, out_dir: &Path) -> Result<String, CliError> {
    let text = std::fs::read_to_string(dump_path)?;
    let mut dump: RunDump = serde_json::from_str(&text)?;
    dump.table.rebuild_index();
    std::fs::create_dir_all(out_dir)?;
    let reports = incprof_collect::report_path::render_reports(&dump.series, &dump.table);
    for (i, report) in reports.iter().enumerate() {
        std::fs::write(out_dir.join(format!("gmon.out.{i:05}.txt")), report)?;
    }
    Ok(format!(
        "wrote {} reports to {}",
        reports.len(),
        out_dir.display()
    ))
}

/// `incprof demo <out.json>`: generate a synthetic three-phase run dump
/// for trying out the analyze commands.
pub fn demo(out_path: &Path) -> Result<String, CliError> {
    use incprof_collect::{CollectorConfig, IncProfCollector};
    use incprof_runtime::{Clock, ProfilerRuntime};

    let clock = Clock::virtual_clock();
    let rt = ProfilerRuntime::with_clock(clock.clone());
    let setup = rt.register_function("setup_mesh");
    let solve = rt.register_function("implicit_solve");
    let output = rt.register_function("write_output");
    let collector = IncProfCollector::manual(rt.clone(), CollectorConfig::default());
    let second = 1_000_000_000u64;

    for _ in 0..8 {
        let _g = rt.enter(setup);
        clock.advance(second);
        drop(_g);
        collector.tick();
    }
    {
        let _g = rt.enter(solve);
        for _ in 0..25 {
            clock.advance(second);
            collector.tick();
        }
    }
    for _ in 0..5 {
        let _g = rt.enter(output);
        clock.advance(second);
        drop(_g);
        collector.tick();
    }

    let dump = RunDump {
        table: rt.function_table(),
        series: collector.into_series(),
    };
    std::fs::write(out_path, serde_json::to_string(&dump)?)?;
    Ok(format!(
        "wrote a {}-sample demo run to {}",
        dump.series.len(),
        out_path.display()
    ))
}

/// `incprof lint [root] [--json] [--deny-warnings|-D]`: run the
/// workspace invariant lints (D01..P01; see `docs/LINTS.md`). With no
/// root argument the workspace is discovered upward from the current
/// directory. Violations come back as [`CliError::Lint`] carrying the
/// rendered report, which the binary prints before exiting nonzero.
pub fn lint_cmd(args: &[String]) -> Result<String, CliError> {
    let mut root: Option<std::path::PathBuf> = None;
    let mut json = false;
    let mut cfg = incprof_lint::Config::default();
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            "-D" | "--deny-warnings" => cfg.deny_warnings = true,
            flag if flag.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown lint option {flag}")));
            }
            path => {
                if root.is_some() {
                    return Err(CliError::Usage(format!(
                        "unexpected extra lint argument {path}"
                    )));
                }
                root = Some(std::path::PathBuf::from(path));
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => incprof_lint::find_workspace_root(&std::env::current_dir()?).ok_or_else(|| {
            CliError::Usage("no workspace root found; pass one: incprof lint <root>".into())
        })?,
    };
    let report = incprof_lint::lint_workspace(&root, &cfg)?;
    let rendered = if json {
        report.render_json()
    } else {
        report.render_human()
    };
    if report.is_clean() {
        Ok(rendered)
    } else {
        Err(CliError::Lint(rendered))
    }
}

/// `incprof callgraph [root] [--json <path>]`: export the workspace
/// apps' static call graph (functions, confidence-labelled edges,
/// hazard facts) as deterministic JSON — the paper-facing bridge from
/// detected phases back to source structure. Prints to stdout, or
/// writes to `--json <path>`.
pub fn callgraph_cmd(args: &[String]) -> Result<String, CliError> {
    let mut root: Option<std::path::PathBuf> = None;
    let mut json_path: Option<std::path::PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                i += 1;
                let p = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--json requires a path".into()))?;
                json_path = Some(std::path::PathBuf::from(p));
            }
            flag if flag.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown callgraph option {flag}")));
            }
            path => {
                if root.is_some() {
                    return Err(CliError::Usage(format!(
                        "unexpected extra callgraph argument {path}"
                    )));
                }
                root = Some(std::path::PathBuf::from(path));
            }
        }
        i += 1;
    }
    let root = match root {
        Some(r) => r,
        None => incprof_lint::find_workspace_root(&std::env::current_dir()?).ok_or_else(|| {
            CliError::Usage("no workspace root found; pass one: incprof callgraph <root>".into())
        })?,
    };
    let analysis = incprof_lint::analyze_subtree(&root, "crates/apps/src")?;
    let rendered = analysis.graph.render_json(&analysis.symbols);
    match json_path {
        Some(path) => {
            std::fs::write(&path, &rendered)?;
            Ok(format!("static call graph written to {}", path.display()))
        }
        None => Ok(rendered),
    }
}

/// `incprof sca [root] [--json <path>] [--deny-warnings|-D]`: the
/// static-analysis gate. Runs the full multi-pass lint (per-line rules
/// plus the graph rules P02/D05/A01) over the workspace, then emits a
/// machine-readable report combining the diagnostics, the analysis
/// stats (functions, confident/ambiguous edge counts), and the timed
/// `lint.engine.run` span — the artifact CI uploads on failure.
pub fn sca_cmd(args: &[String]) -> Result<String, CliError> {
    let mut root: Option<std::path::PathBuf> = None;
    let mut json_path: Option<std::path::PathBuf> = None;
    let mut cfg = incprof_lint::Config::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                i += 1;
                let p = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--json requires a path".into()))?;
                json_path = Some(std::path::PathBuf::from(p));
            }
            "-D" | "--deny-warnings" => cfg.deny_warnings = true,
            flag if flag.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown sca option {flag}")));
            }
            path => {
                if root.is_some() {
                    return Err(CliError::Usage(format!(
                        "unexpected extra sca argument {path}"
                    )));
                }
                root = Some(std::path::PathBuf::from(path));
            }
        }
        i += 1;
    }
    let root = match root {
        Some(r) => r,
        None => incprof_lint::find_workspace_root(&std::env::current_dir()?).ok_or_else(|| {
            CliError::Usage("no workspace root found; pass one: incprof sca <root>".into())
        })?,
    };
    let (report, analysis) = incprof_lint::lint_workspace_analyzed(&root, &cfg)?;
    let (confident, ambiguous) = analysis.graph.edge_counts();
    // The whole analysis ran under the `lint.engine.run` span; its last
    // closed record carries the wall time the sca gate asserts on.
    let elapsed_ns = incprof_obs::global()
        .spans()
        .records()
        .iter()
        .rev()
        .find(|r| r.closed && r.name == incprof_obs::names::LINT_RUN)
        .map(|r| r.dur_ns)
        .unwrap_or(0);
    let lint_json = report.render_json();
    let rendered = format!(
        "{{\"stats\":{{\"functions\":{},\"edges_confident\":{confident},\
         \"edges_ambiguous\":{ambiguous},\"elapsed_ms\":{}}},\"lint\":{lint_json}}}",
        analysis.symbols.defs.len(),
        elapsed_ns / 1_000_000,
    );
    let summary = match json_path {
        Some(path) => {
            std::fs::write(&path, &rendered)?;
            format!(
                "sca: {} functions, {confident} confident / {ambiguous} ambiguous edges, \
                 {} diagnostics in {} ms; report written to {}",
                analysis.symbols.defs.len(),
                report.diagnostics.len(),
                elapsed_ns / 1_000_000,
                path.display()
            )
        }
        None => rendered,
    };
    if report.is_clean() {
        Ok(summary)
    } else {
        Err(CliError::Lint(summary))
    }
}

/// Global flags accepted anywhere on the command line, ahead of the
/// per-command options.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GlobalFlags {
    /// Write an observability [`incprof_obs::RunReport`] here on exit
    /// (`.jsonl` extension selects the line-oriented format).
    pub metrics: Option<std::path::PathBuf>,
    /// Raise logging to debug (equivalent to `INCPROF_LOG=debug`, except
    /// the environment still wins where it asks for more).
    pub verbose: bool,
    /// Worker-thread count for the parallel analysis paths (overrides
    /// `INCPROF_THREADS`; `None` leaves the default sizing in place).
    pub threads: Option<usize>,
}

/// Strip `--metrics <path>`, `--verbose`, and `--threads <n>` out of
/// `args`, returning the parsed globals plus the remaining arguments.
pub fn split_global_flags(args: &[String]) -> Result<(GlobalFlags, Vec<String>), CliError> {
    let mut globals = GlobalFlags::default();
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--metrics" => {
                i += 1;
                let path = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--metrics requires a path".into()))?;
                globals.metrics = Some(std::path::PathBuf::from(path));
            }
            "--verbose" => globals.verbose = true,
            "--threads" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--threads requires a count".into()))?
                    .parse()
                    .map_err(|e| CliError::Usage(format!("bad --threads: {e}")))?;
                if n == 0 {
                    return Err(CliError::Usage("--threads must be at least 1".into()));
                }
                globals.threads = Some(n);
            }
            _ => rest.push(args[i].clone()),
        }
        i += 1;
    }
    Ok((globals, rest))
}

/// Top-level entry: strip global flags, dispatch, and (when requested)
/// write the observability run report — on failure too, so a crashed
/// analysis still leaves its metrics behind.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let (globals, rest) = split_global_flags(args)?;
    if globals.verbose {
        incprof_obs::logger::raise_level(incprof_obs::Level::Debug);
    }
    if let Some(n) = globals.threads {
        incprof_par::set_threads(n);
    }
    let result = dispatch(&rest);
    if let Some(path) = &globals.metrics {
        let report = incprof_obs::report();
        match report.write(path) {
            Ok(()) => incprof_obs::debug!("wrote run report to {}", path.display()),
            Err(e) if result.is_ok() => return Err(CliError::Io(e)),
            Err(e) => incprof_obs::error!("failed to write run report: {e}"),
        }
    }
    result
}

/// Command dispatch over already-stripped arguments.
fn dispatch(args: &[String]) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        Some("demo") => {
            let out = args.get(1).ok_or_else(|| usage("demo <out.json>"))?;
            demo(Path::new(out))
        }
        Some("render-reports") => {
            let dump = args
                .get(1)
                .ok_or_else(|| usage("render-reports <dump> <dir>"))?;
            let dir = args
                .get(2)
                .ok_or_else(|| usage("render-reports <dump> <dir>"))?;
            render_reports_cmd(Path::new(dump), Path::new(dir))
        }
        Some("render-gmon") => {
            let dump = args
                .get(1)
                .ok_or_else(|| usage("render-gmon <dump> <dir>"))?;
            let dir = args
                .get(2)
                .ok_or_else(|| usage("render-gmon <dump> <dir>"))?;
            render_gmon_cmd(Path::new(dump), Path::new(dir))
        }
        Some("analyze-gmon") => {
            let dir = args
                .get(1)
                .ok_or_else(|| usage("analyze-gmon <dir> [opts]"))?;
            let opts = parse_options(&args[2..])?;
            analyze_gmon(Path::new(dir), &opts)
        }
        Some("analyze-reports") => {
            let dir = args
                .get(1)
                .ok_or_else(|| usage("analyze-reports <dir> [opts]"))?;
            let opts = parse_options(&args[2..])?;
            analyze_reports(Path::new(dir), &opts)
        }
        Some("analyze-json") => {
            let dump = args
                .get(1)
                .ok_or_else(|| usage("analyze-json <dump> [opts]"))?;
            let opts = parse_options(&args[2..])?;
            analyze_json(Path::new(dump), &opts)
        }
        Some("lint") => lint_cmd(&args[1..]),
        Some("sca") => sca_cmd(&args[1..]),
        Some("callgraph") => callgraph_cmd(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]),
        Some("shard") => shard_cmd(&args[1..]),
        Some("push") => push_cmd(&args[1..]),
        Some("query") => query_cmd(&args[1..]),
        Some("collect") => collect_cmd(&args[1..]),
        Some("top") => top_cmd(&args[1..]),
        Some(other) => Err(CliError::Usage(format!("unknown command {other}\n{USAGE}"))),
        None => Err(CliError::Usage(USAGE.to_string())),
    }
}

fn usage(s: &str) -> CliError {
    CliError::Usage(format!("expected: incprof {s}"))
}

/// The usage banner.
pub const USAGE: &str = "\
incprof — source-oriented phase identification (IncProf, CLUSTER 2022)

  incprof demo <dump.json>
  incprof render-reports <dump.json> <dir>
  incprof render-gmon <dump.json> <dir>
  incprof analyze-gmon <dir> [same options as analyze-reports]
  incprof analyze-reports <dir> [--threshold f] [--kmax n] [--silhouette]
                                [--dbscan eps min_pts] [--merge] [--json]
  incprof analyze-json <dump.json> [same options]
  incprof lint [root] [--json] [--deny-warnings|-D]
  incprof sca [root] [--json <path>] [--deny-warnings|-D]
  incprof callgraph [root] [--json <path>]
  incprof serve [--addr host:port | --unix path] [--workers n]
                [--max-sessions n] [--max-pending n] [--addr-file path]
                [--no-analysis-cache]
                [--admin host:port | --admin-unix path]
                [--admin-addr-file path] [--final-scrape path]
                [--store-dir dir] [--retention hot=H,stride=S[,max_bytes=B]]
                [--max-live n] [--checkpoint-every n]
  incprof shard (--backends n | --backend data[,admin] ...)
                [--addr host:port | --unix path] [--addr-file path]
                [--admin host:port | --admin-unix path]
                [--admin-addr-file path] [--store-dir dir] [--pid-dir dir]
                [--max-conns n] [--route session-id]
  incprof push <addr> <dump.json> [--analysis] [--keep-open]
               [--session-file path] [--shutdown]
  incprof query <addr> <session-id> [--analysis] [--close] [--shutdown]
  incprof collect <out.json> [--interval-ms n] [--max-samples n]
  incprof top <admin-addr> [--interval-ms n] [--iterations n]
              [--raw] [--recorder] [--health]

global options (any command):
  --metrics <path>   write an observability run report (counters, span
                     tree, latency histograms) as JSON; a .jsonl path
                     selects one record per line
  --verbose          raise logging to debug (see also INCPROF_LOG)
  --threads <n>      worker threads for the parallel analysis paths
                     (default: INCPROF_THREADS, else all cores; results
                     are identical for every setting)";

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn options_parse_defaults_and_flags() {
        assert_eq!(parse_options(&[]).unwrap(), AnalyzeOptions::default());
        let o = parse_options(&s(&[
            "--threshold",
            "0.9",
            "--kmax",
            "5",
            "--silhouette",
            "--merge",
            "--json",
        ]))
        .unwrap();
        assert_eq!(o.threshold, 0.9);
        assert_eq!(o.k_max, 5);
        assert!(o.silhouette && o.merge && o.json);
        let d = parse_options(&s(&["--dbscan", "0.3", "4"])).unwrap();
        assert_eq!(d.dbscan, Some((0.3, 4)));
    }

    #[test]
    fn options_reject_garbage() {
        assert!(parse_options(&s(&["--threshold"])).is_err());
        assert!(parse_options(&s(&["--threshold", "2.0"])).is_err());
        assert!(parse_options(&s(&["--kmax", "0"])).is_err());
        assert!(parse_options(&s(&["--wat"])).is_err());
        assert!(parse_options(&s(&["--dbscan", "0.3"])).is_err());
    }

    #[test]
    fn demo_then_analyze_json_roundtrip() {
        let dir = std::env::temp_dir().join(format!("incprof_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dump = dir.join("demo.json");
        demo(&dump).unwrap();
        let text = analyze_json(&dump, &AnalyzeOptions::default()).unwrap();
        assert!(text.contains("chosen k = 3"), "{text}");
        assert!(text.contains("implicit_solve"));
        assert!(text.contains("setup_mesh"));
        // JSON mode parses back as an analysis.
        let json = analyze_json(
            &dump,
            &AnalyzeOptions {
                json: true,
                ..Default::default()
            },
        )
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["k"], 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reports_roundtrip_through_directory() {
        let dir = std::env::temp_dir().join(format!("incprof_cli_reports_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dump = dir.join("demo.json");
        demo(&dump).unwrap();
        let reports_dir = dir.join("reports");
        let msg = render_reports_cmd(&dump, &reports_dir).unwrap();
        assert!(msg.contains("reports"));
        let text = analyze_reports(&reports_dir, &AnalyzeOptions::default()).unwrap();
        assert!(text.contains("chosen k = 3"), "{text}");
        assert!(text.contains("implicit_solve"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dispatch_reports_usage_errors() {
        assert!(run(&[]).is_err());
        assert!(run(&s(&["bogus"])).is_err());
        assert!(run(&s(&["demo"])).is_err());
        assert!(run(&s(&["analyze-reports"])).is_err());
    }

    #[test]
    fn global_flags_are_stripped_anywhere() {
        let (g, rest) = split_global_flags(&s(&[
            "analyze-json",
            "--metrics",
            "m.json",
            "d.json",
            "--verbose",
        ]))
        .unwrap();
        assert_eq!(g.metrics.as_deref(), Some(Path::new("m.json")));
        assert!(g.verbose);
        assert_eq!(rest, s(&["analyze-json", "d.json"]));
        assert!(matches!(
            split_global_flags(&s(&["demo", "--metrics"])),
            Err(CliError::Usage(_))
        ));
        let (g, rest) = split_global_flags(&s(&["demo", "x.json"])).unwrap();
        assert_eq!(g, GlobalFlags::default());
        assert_eq!(rest, s(&["demo", "x.json"]));
    }

    #[test]
    fn threads_flag_parses_and_rejects_garbage() {
        let (g, rest) = split_global_flags(&s(&["--threads", "4", "demo", "x.json"])).unwrap();
        assert_eq!(g.threads, Some(4));
        assert_eq!(rest, s(&["demo", "x.json"]));
        assert!(matches!(
            split_global_flags(&s(&["--threads"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            split_global_flags(&s(&["--threads", "0"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            split_global_flags(&s(&["--threads", "many"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn metrics_flag_writes_run_report() {
        let dir = std::env::temp_dir().join(format!("incprof_cli_obs_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dump = dir.join("demo.json");
        let metrics = dir.join("metrics.json");
        run(&s(&["demo", dump.to_str().unwrap()])).unwrap();
        run(&s(&[
            "analyze-json",
            dump.to_str().unwrap(),
            "--json",
            "--metrics",
            metrics.to_str().unwrap(),
        ]))
        .unwrap();

        let report =
            incprof_obs::RunReport::from_json(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        // Collector activity from the demo run (wall-clock snapshot cost
        // is nonzero even under the virtual profiling clock).
        assert!(report.counters["collect.snapshot.count"] > 0);
        let lat = &report.histograms["collect.snapshot.latency_ns"];
        assert!(
            lat.count > 0 && lat.sum > 0,
            "snapshot latencies must be nonzero"
        );
        // Per-k k-means iteration counts from the sweep.
        let kmeans_counters: Vec<_> = report
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("cluster.kmeans.iterations.k"))
            .collect();
        assert!(
            kmeans_counters.len() >= 2,
            "expected a k sweep, got {kmeans_counters:?}"
        );
        assert!(kmeans_counters.iter().all(|(_, &v)| v > 0));
        // The pipeline span tree: detect with its stages as children, and
        // the stages accounting for (almost) all of the total.
        let detect = report
            .find_span(incprof_obs::names::CORE_PIPELINE_DETECT)
            .expect("detect span");
        let stages: Vec<&str> = detect.children.iter().map(|c| c.name.as_str()).collect();
        assert!(stages.contains(&"core.pipeline.features"), "{stages:?}");
        assert!(stages.contains(&"core.pipeline.cluster"), "{stages:?}");
        assert!(stages.contains(&"core.pipeline.algorithm1"), "{stages:?}");
        assert!(detect.children_dur_ns() <= detect.dur_ns);
        assert!(
            detect.children_dur_ns() as f64 >= 0.95 * detect.dur_ns as f64,
            "stages cover {} of {} ns",
            detect.children_dur_ns(),
            detect.dur_ns
        );
        // JSONL variant writes one record per line.
        let jsonl = dir.join("metrics.jsonl");
        run(&s(&[
            "demo",
            dump.to_str().unwrap(),
            "--metrics",
            jsonl.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&jsonl).unwrap();
        assert!(text.lines().count() > 3);
        assert!(text.lines().all(|l| l.starts_with('{')));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lint_subcommand_runs_clean_on_this_workspace() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let root = root.to_str().unwrap();
        let out = run(&s(&["lint", root])).unwrap();
        assert!(out.contains("0 errors"), "{out}");
        let json = run(&s(&["lint", root, "--json", "-D"])).unwrap();
        assert!(json.contains("\"files_scanned\""), "{json}");
        assert!(matches!(
            run(&s(&["lint", "--bogus"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&s(&["lint", root, "extra"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn analyze_reports_on_empty_dir_errors() {
        let dir = std::env::temp_dir().join(format!("incprof_cli_empty_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            analyze_reports(&dir, &AnalyzeOptions::default()),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_and_dbscan_paths_execute() {
        let dir = std::env::temp_dir().join(format!("incprof_cli_opts_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dump = dir.join("demo.json");
        demo(&dump).unwrap();
        let merged = analyze_json(
            &dump,
            &AnalyzeOptions {
                merge: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(merged.contains("Discovered"));
        let db = analyze_json(
            &dump,
            &AnalyzeOptions {
                dbscan: Some((0.3, 2)),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(db.contains("Discovered"));
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod gmon_cli_tests {
    use super::*;

    #[test]
    fn gmon_directory_roundtrip_via_cli() {
        let dir = std::env::temp_dir().join(format!("incprof_cli_gmon_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dump = dir.join("demo.json");
        demo(&dump).unwrap();
        let gmon_dir = dir.join("gmons");
        let msg = render_gmon_cmd(&dump, &gmon_dir).unwrap();
        assert!(msg.contains("gmon binaries"));
        let text = analyze_gmon(&gmon_dir, &AnalyzeOptions::default()).unwrap();
        assert!(text.contains("chosen k = 3"), "{text}");
        assert!(text.contains("implicit_solve"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyze_gmon_empty_dir_is_usage_error() {
        let dir =
            std::env::temp_dir().join(format!("incprof_cli_gmon_empty_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            analyze_gmon(&dir, &AnalyzeOptions::default()),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
