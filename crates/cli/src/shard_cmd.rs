//! `incprof shard` — front a cluster of `incprof-serve` backends with
//! the consistent-hash session router from `incprof-shard`.
//!
//! Two ways to assemble the cluster:
//!
//! * **Spawn mode** (`--backends n`): the command spawns `n` child
//!   `incprof serve` processes (via the current executable) on
//!   ephemeral ports, all sharing `--store-dir`, waits for their
//!   address files, and routes to them. SIGINT or a `Shutdown` frame
//!   drains the router, which drains every backend, and the children
//!   are reaped before the command returns.
//! * **Address mode** (`--backend data[,admin]`, repeated): the
//!   backends are already running somewhere; the router just dials
//!   them. Shard numbers follow the flag order.
//!
//! `--route <session-id>` is the scripting helper: it prints the
//! session's home shard for a `--backends n` ring and exits without
//! binding anything (`scripts/check.sh` uses it to decide which
//! backend to kill in the failover smoke).

use crate::{serve_cmd::parse_num, serve_cmd::take, CliError};
use incprof_serve::signal;
use incprof_serve::BindAddr;
use incprof_shard::{BackendSpec, Ring, Router, RouterConfig};
use std::path::PathBuf;
use std::process::{Child, Command};

/// `incprof shard (--backends n | --backend data[,admin] ...)
/// [--addr host:port | --unix path] [--addr-file path]
/// [--admin host:port | --admin-unix path] [--admin-addr-file path]
/// [--store-dir dir] [--pid-dir dir] [--max-conns n]
/// [--route session-id]`.
///
/// Binds the router, prints `incprof-shard listening on <addr>` (and
/// the merged admin address when configured), then blocks until a
/// `Shutdown` frame or SIGINT. Spawned backends inherit `--store-dir`
/// so a killed backend's sessions replay on the ring's next healthy
/// node; `--pid-dir` writes one `backend-<shard>.pid` file per child
/// for scripts that want to kill a specific shard.
pub fn shard_cmd(args: &[String]) -> Result<String, CliError> {
    let mut spawn_backends: usize = 0;
    let mut backend_specs: Vec<BackendSpec> = Vec::new();
    let mut config = RouterConfig::default();
    let mut addr_file: Option<PathBuf> = None;
    let mut admin_addr_file: Option<PathBuf> = None;
    let mut pid_dir: Option<PathBuf> = None;
    let mut route: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--backends" => {
                spawn_backends = parse_num(&take(args, &mut i, "--backends")?, "--backends")?;
                if spawn_backends == 0 {
                    return Err(CliError::Usage("--backends must be at least 1".into()));
                }
            }
            "--backend" => {
                let spec = take(args, &mut i, "--backend")?;
                let (data, admin) = match spec.split_once(',') {
                    Some((d, a)) => (d.to_string(), Some(a.to_string())),
                    None => (spec, None),
                };
                backend_specs.push(BackendSpec { data, admin });
            }
            "--addr" => config.addr = BindAddr::Tcp(take(args, &mut i, "--addr")?),
            "--unix" => config.addr = BindAddr::Unix(PathBuf::from(take(args, &mut i, "--unix")?)),
            "--addr-file" => addr_file = Some(PathBuf::from(take(args, &mut i, "--addr-file")?)),
            "--admin" => config.admin = Some(BindAddr::Tcp(take(args, &mut i, "--admin")?)),
            "--admin-unix" => {
                config.admin = Some(BindAddr::Unix(PathBuf::from(take(
                    args,
                    &mut i,
                    "--admin-unix",
                )?)));
            }
            "--admin-addr-file" => {
                admin_addr_file = Some(PathBuf::from(take(args, &mut i, "--admin-addr-file")?));
            }
            "--store-dir" => {
                config.store_dir = Some(PathBuf::from(take(args, &mut i, "--store-dir")?));
            }
            "--pid-dir" => pid_dir = Some(PathBuf::from(take(args, &mut i, "--pid-dir")?)),
            "--max-conns" => {
                config.max_conns = parse_num(&take(args, &mut i, "--max-conns")?, "--max-conns")?;
                if config.max_conns == 0 {
                    return Err(CliError::Usage("--max-conns must be at least 1".into()));
                }
            }
            "--route" => route = Some(parse_num(&take(args, &mut i, "--route")?, "--route")?),
            other => return Err(CliError::Usage(format!("unknown shard option {other}"))),
        }
        i += 1;
    }

    // Pure placement helper: no sockets, no children — print the home
    // shard for the given ring size and exit.
    if let Some(session_id) = route {
        if spawn_backends == 0 && backend_specs.is_empty() {
            return Err(CliError::Usage(
                "--route needs --backends n (the ring size to place against)".into(),
            ));
        }
        let n = if spawn_backends > 0 {
            spawn_backends
        } else {
            backend_specs.len()
        };
        return Ok(Ring::new(n).owner(session_id).to_string());
    }

    if spawn_backends > 0 && !backend_specs.is_empty() {
        return Err(CliError::Usage(
            "--backends (spawn mode) and --backend (address mode) are mutually exclusive".into(),
        ));
    }
    if spawn_backends == 0 && backend_specs.is_empty() {
        return Err(CliError::Usage(
            "shard needs --backends n or at least one --backend addr".into(),
        ));
    }

    signal::install_sigint_handler();

    let mut children: Vec<Child> = Vec::new();
    if spawn_backends > 0 {
        let store_dir = config.store_dir.clone().ok_or_else(|| {
            CliError::Usage("spawn mode needs --store-dir (shared by all backends)".into())
        })?;
        let runtime_dir = pid_dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("incprof-shard-{}", std::process::id()))
        });
        std::fs::create_dir_all(&runtime_dir)?;
        let spawned = spawn_cluster(spawn_backends, &store_dir, &runtime_dir, pid_dir.as_deref())?;
        children = spawned.0;
        config.backends = spawned.1;
    } else {
        config.backends = backend_specs;
    }

    let router = match Router::bind(config) {
        Ok(router) => router,
        Err(e) => {
            reap(&mut children);
            return Err(CliError::Io(e));
        }
    };
    let addr = router.local_addr().to_string();
    let handle = match router.start() {
        Ok(handle) => handle,
        Err(e) => {
            reap(&mut children);
            return Err(CliError::Io(e));
        }
    };
    println!(
        "incprof-shard listening on {addr} ({} backend(s))",
        handle.backends_up().len()
    );
    if let Some(admin) = handle.admin_addr() {
        println!("incprof-shard admin on {admin}");
        if let Some(path) = &admin_addr_file {
            std::fs::write(path, admin)?;
        }
    }
    if let Some(path) = &addr_file {
        std::fs::write(path, &addr)?;
    }

    handle.wait(Some(signal::interrupted()));
    let up: Vec<bool> = handle.backends_up();
    let routed = handle.routed_per_backend();
    handle.shutdown();
    reap(&mut children);

    let alive = up.iter().filter(|&&u| u).count();
    let per_shard: Vec<String> = routed
        .iter()
        .enumerate()
        .map(|(b, n)| format!("shard {b}: {n}"))
        .collect();
    let deaths = incprof_obs::counter(incprof_obs::names::SHARD_BACKEND_DEATHS).get();
    let replayed = incprof_obs::counter(incprof_obs::names::SHARD_SESSIONS_REPLAYED).get();
    Ok(format!(
        "incprof-shard drained: {alive}/{} backend(s) up at shutdown, \
         {} frame(s) routed ({}), {deaths} death(s), {replayed} session(s) replayed",
        up.len(),
        routed.iter().sum::<u64>(),
        per_shard.join(", "),
    ))
}

/// Spawn `n` child `incprof serve` backends on ephemeral ports sharing
/// `store_dir`, wait for all their address files, and return the
/// children plus their dialable specs (index = shard number).
fn spawn_cluster(
    n: usize,
    store_dir: &std::path::Path,
    runtime_dir: &std::path::Path,
    pid_dir: Option<&std::path::Path>,
) -> Result<(Vec<Child>, Vec<BackendSpec>), CliError> {
    let exe = std::env::current_exe()?;
    let mut children = Vec::with_capacity(n);
    let mut addr_files = Vec::with_capacity(n);
    for b in 0..n {
        let data_file = runtime_dir.join(format!("backend-{b}.addr"));
        let admin_file = runtime_dir.join(format!("backend-{b}.admin"));
        let _ = std::fs::remove_file(&data_file);
        let _ = std::fs::remove_file(&admin_file);
        let child = Command::new(&exe)
            .arg("serve")
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--addr-file")
            .arg(&data_file)
            .arg("--admin")
            .arg("127.0.0.1:0")
            .arg("--admin-addr-file")
            .arg(&admin_file)
            .arg("--store-dir")
            .arg(store_dir)
            .spawn()
            .map_err(|e| CliError::Pipeline(format!("spawning backend {b}: {e}")))?;
        if let Some(dir) = pid_dir {
            std::fs::write(dir.join(format!("backend-{b}.pid")), child.id().to_string())?;
        }
        children.push(child);
        addr_files.push((data_file, admin_file));
    }

    let mut specs = Vec::with_capacity(n);
    for (b, (data_file, admin_file)) in addr_files.iter().enumerate() {
        let outcome = (|| -> Result<BackendSpec, String> {
            let data = await_addr_file(data_file)?;
            let admin = await_addr_file(admin_file)?;
            Ok(BackendSpec {
                data,
                admin: Some(admin),
            })
        })();
        match outcome {
            Ok(spec) => specs.push(spec),
            Err(e) => {
                let mut children = children;
                reap(&mut children);
                return Err(CliError::Pipeline(format!(
                    "backend {b} never came up: {e}"
                )));
            }
        }
    }
    Ok((children, specs))
}

/// Poll for an address file written by a spawning backend (bounded by
/// iteration count, not wall clock, so the loop is lint-clean).
fn await_addr_file(path: &std::path::Path) -> Result<String, String> {
    for _ in 0..200 {
        if let Ok(text) = std::fs::read_to_string(path) {
            let text = text.trim().to_string();
            if !text.is_empty() {
                return Ok(text);
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    Err(format!("no address file at {} after 10s", path.display()))
}

/// Best-effort child reaping: give each child a bounded window to exit
/// on its own (a drained backend is already on its way out), then kill
/// and wait so nothing is left as a zombie.
fn reap(children: &mut Vec<Child>) {
    for child in children.iter_mut() {
        let mut exited = false;
        for _ in 0..100 {
            match child.try_wait() {
                Ok(Some(_)) => {
                    exited = true;
                    break;
                }
                Ok(None) => std::thread::sleep(std::time::Duration::from_millis(50)),
                Err(_) => break,
            }
        }
        if !exited {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
    children.clear();
}
