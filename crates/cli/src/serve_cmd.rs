//! The long-running subcommands: `incprof serve`, `incprof push`, and
//! `incprof collect`.
//!
//! All three share one lifecycle discipline: SIGINT flips a flag (via
//! `incprof_serve::signal`), the command drains whatever it owns —
//! daemon sessions, the wall collector's series — returns normally, and
//! the process exits 0 with the observability run report flushed by the
//! `--metrics` machinery in [`crate::run`].

use crate::{CliError, RunDump};
use incprof_serve::signal;
use incprof_serve::{BindAddr, Client, RetentionPolicy, ServeConfig, Server};
use std::path::{Path, PathBuf};

pub(crate) fn take(args: &[String], i: &mut usize, what: &str) -> Result<String, CliError> {
    *i += 1;
    args.get(*i)
        .cloned()
        .ok_or_else(|| CliError::Usage(format!("{what} requires a value")))
}

pub(crate) fn parse_num<T: std::str::FromStr>(v: &str, what: &str) -> Result<T, CliError>
where
    T::Err: std::fmt::Display,
{
    v.parse()
        .map_err(|e| CliError::Usage(format!("bad {what}: {e}")))
}

/// `incprof serve [--addr host:port | --unix path] [--workers n]
/// [--max-sessions n] [--max-pending n] [--addr-file path]
/// [--no-analysis-cache] [--admin host:port | --admin-unix path]
/// [--admin-addr-file path] [--final-scrape path]
/// [--store-dir dir] [--retention spec] [--max-live n]
/// [--checkpoint-every n]`.
///
/// `--no-analysis-cache` disables the per-session incremental analysis
/// cache, recomputing the full phase analysis on every report query
/// (useful to bound memory or to A/B the cache's byte-identity).
///
/// `--store-dir <dir>` makes sessions durable: every accepted snapshot
/// is appended to a per-session on-disk log, sessions found under the
/// directory at startup are re-adopted (queryable by their old ids
/// after a restart), and `--max-live <n>` bounds how many sessions stay
/// resident in memory — the idlest ones beyond the cap are checkpointed
/// and evicted, to be rehydrated transparently on their next frame.
/// `--retention hot=H,stride=S[,max_bytes=B]` downsamples old log
/// records (see docs/PERSISTENCE.md); the default keeps everything.
/// `--checkpoint-every <n>` sets how many appended snapshots elapse
/// between analysis-state checkpoints (default 16).
///
/// `--admin` (or `--admin-unix`) binds the read-only admin socket:
/// Prometheus scrape, trace-tree lookup, flight-recorder dump, and
/// health, consumed live by `incprof top`. `--final-scrape <path>`
/// writes one last exposition snapshot after the drain, so a scrape of
/// the daemon's dying breath survives the process.
///
/// Binds, prints `listening on <addr>` (and optionally writes the
/// resolved address to `--addr-file`, for scripts using an ephemeral
/// port), then blocks until a `Shutdown` frame arrives or SIGINT fires.
/// Either way the daemon drains every session before returning, and the
/// returned summary reports the ingest tail latency via the histogram
/// quantiles.
pub fn serve_cmd(args: &[String]) -> Result<String, CliError> {
    let mut config = ServeConfig::default();
    let mut addr_file: Option<PathBuf> = None;
    let mut admin_addr_file: Option<PathBuf> = None;
    let mut final_scrape: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => config.addr = BindAddr::Tcp(take(args, &mut i, "--addr")?),
            "--unix" => config.addr = BindAddr::Unix(PathBuf::from(take(args, &mut i, "--unix")?)),
            "--workers" => {
                config.workers = parse_num(&take(args, &mut i, "--workers")?, "--workers")?;
                if config.workers == 0 {
                    return Err(CliError::Usage("--workers must be at least 1".into()));
                }
            }
            "--max-sessions" => {
                config.max_sessions =
                    parse_num(&take(args, &mut i, "--max-sessions")?, "--max-sessions")?;
            }
            "--max-pending" => {
                config.max_pending =
                    parse_num(&take(args, &mut i, "--max-pending")?, "--max-pending")?;
            }
            "--addr-file" => addr_file = Some(PathBuf::from(take(args, &mut i, "--addr-file")?)),
            "--no-analysis-cache" => config.analysis_cache = false,
            "--admin" => config.admin = Some(BindAddr::Tcp(take(args, &mut i, "--admin")?)),
            "--admin-unix" => {
                config.admin = Some(BindAddr::Unix(PathBuf::from(take(
                    args,
                    &mut i,
                    "--admin-unix",
                )?)));
            }
            "--admin-addr-file" => {
                admin_addr_file = Some(PathBuf::from(take(args, &mut i, "--admin-addr-file")?));
            }
            "--final-scrape" => {
                final_scrape = Some(PathBuf::from(take(args, &mut i, "--final-scrape")?));
            }
            "--store-dir" => {
                config.store_dir = Some(PathBuf::from(take(args, &mut i, "--store-dir")?));
            }
            "--retention" => {
                let spec = take(args, &mut i, "--retention")?;
                config.retention = RetentionPolicy::parse(&spec)
                    .map_err(|e| CliError::Usage(format!("bad --retention spec {spec:?}: {e}")))?;
            }
            "--max-live" => {
                config.max_live = parse_num(&take(args, &mut i, "--max-live")?, "--max-live")?;
            }
            "--checkpoint-every" => {
                config.checkpoint_every = parse_num(
                    &take(args, &mut i, "--checkpoint-every")?,
                    "--checkpoint-every",
                )?;
            }
            other => return Err(CliError::Usage(format!("unknown serve option {other}"))),
        }
        i += 1;
    }
    if admin_addr_file.is_some() && config.admin.is_none() {
        return Err(CliError::Usage(
            "--admin-addr-file needs --admin or --admin-unix".into(),
        ));
    }
    if config.store_dir.is_none() && (!config.retention.is_keep_all() || config.max_live != 0) {
        return Err(CliError::Usage(
            "--retention and --max-live need --store-dir".into(),
        ));
    }

    // Best-effort: the daemon joins the apps' static call graph into
    // Full reports' `source_context`; outside a workspace it serves
    // empty contexts instead of failing to start.
    config.source_graph = build_source_graph();

    signal::install_sigint_handler();
    let server = Server::bind(config).map_err(CliError::Io)?;
    let addr = server.local_addr().to_string();
    let handle = server.start().map_err(CliError::Io)?;
    // Announce readiness immediately; the summary string below is only
    // printed after shutdown.
    println!("incprof-serve listening on {addr}");
    if let Some(admin) = handle.admin_addr() {
        println!("incprof-serve admin on {admin}");
        if let Some(path) = &admin_addr_file {
            std::fs::write(path, admin)?;
        }
    }
    if let Some(path) = &addr_file {
        std::fs::write(path, &addr)?;
    }

    handle.wait(Some(signal::interrupted()));
    let sessions_at_exit = handle.active_sessions();
    if let Some(path) = &final_scrape {
        std::fs::write(path, handle.shutdown_scraped())?;
    } else {
        handle.shutdown();
    }

    let frames_in = incprof_obs::counter(incprof_obs::names::SERVE_FRAMES_IN).get();
    let frames_out = incprof_obs::counter(incprof_obs::names::SERVE_FRAMES_OUT).get();
    let opened = incprof_obs::counter(incprof_obs::names::SERVE_SESSIONS_OPENED).get();
    let lat = incprof_obs::histogram(incprof_obs::names::SERVE_INGEST_DETECT_LATENCY_NS).snapshot();
    let (p50, p95, p99) = lat.percentiles();
    Ok(format!(
        "incprof-serve drained: {opened} session(s) ({sessions_at_exit} open at shutdown), \
         {frames_in} frames in / {frames_out} out\n\
         ingest-to-detect latency: n={} p50={p50}ns p95={p95}ns p99={p99}ns",
        lat.count
    ))
}

/// Build the workspace apps' static call graph (via `incprof-lint`'s
/// source analysis) for report source-context joins. Any failure —
/// no workspace, unreadable sources — degrades to an empty graph.
fn build_source_graph() -> incprof_core::SourceGraph {
    let Ok(cwd) = std::env::current_dir() else {
        return incprof_core::SourceGraph::default();
    };
    let Some(root) = incprof_lint::find_workspace_root(&cwd) else {
        return incprof_core::SourceGraph::default();
    };
    match incprof_lint::analyze_subtree(&root, "crates/apps/src") {
        Ok(analysis) => {
            incprof_core::SourceGraph::new(analysis.graph.named_edges(&analysis.symbols))
        }
        Err(e) => {
            incprof_obs::warn!("source graph unavailable: {e}");
            incprof_core::SourceGraph::default()
        }
    }
}

/// `incprof top <admin-addr> [--interval-ms n] [--iterations n]
/// [--raw] [--recorder] [--health]`.
///
/// Live daemon vitals: polls the admin socket's `Scrape` endpoint and
/// renders a refreshing per-session table (snapshots, queue depth,
/// phases, cache hit ratio, idle age, fault flag) until SIGINT or
/// `--iterations` refreshes. `--raw` prints the Prometheus exposition
/// verbatim instead of the table; `--recorder` / `--health` print the
/// flight-recorder dump or health document once and exit (the scripted
/// entry points used by `scripts/check.sh`).
pub fn top_cmd(args: &[String]) -> Result<String, CliError> {
    let mut addr: Option<String> = None;
    let mut interval_ms: u64 = 1000;
    let mut iterations: u64 = 0;
    let mut raw = false;
    let mut recorder = false;
    let mut health = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--interval-ms" => {
                interval_ms = parse_num(&take(args, &mut i, "--interval-ms")?, "--interval-ms")?;
                if interval_ms == 0 {
                    return Err(CliError::Usage("--interval-ms must be at least 1".into()));
                }
            }
            "--iterations" => {
                iterations = parse_num(&take(args, &mut i, "--iterations")?, "--iterations")?;
            }
            "--raw" => raw = true,
            "--recorder" => recorder = true,
            "--health" => health = true,
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown top option {flag}")));
            }
            positional if addr.is_none() => addr = Some(positional.to_string()),
            extra => {
                return Err(CliError::Usage(format!(
                    "unexpected extra top argument {extra}"
                )));
            }
        }
        i += 1;
    }
    let addr = addr.ok_or_else(|| CliError::Usage("top <admin-addr> [opts]".into()))?;

    let mut client = Client::connect(&addr).map_err(client_err)?;
    if recorder {
        return client.recorder_dump().map_err(client_err);
    }
    if health {
        return client.health().map_err(client_err);
    }

    signal::install_sigint_handler();
    let mut refreshes = 0u64;
    loop {
        let scrape = client.scrape().map_err(client_err)?;
        if raw {
            print!("{scrape}");
        } else {
            // Home + clear-to-end keeps a live table in place without
            // scrolling; a single iteration (scripts) never clears.
            if refreshes > 0 || iterations != 1 {
                print!("\x1b[H\x1b[2J");
            }
            println!("{}", render_top(&scrape, &addr));
        }
        refreshes += 1;
        if iterations != 0 && refreshes >= iterations {
            break;
        }
        if signal::interrupted().load(std::sync::atomic::Ordering::Acquire) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        if signal::interrupted().load(std::sync::atomic::Ordering::Acquire) {
            break;
        }
    }
    Ok(format!("top: {refreshes} refresh(es) of {addr}"))
}

/// One session row accumulated from `incprof_session_*` scrape lines.
#[derive(Debug, Default, Clone, Copy)]
struct TopRow {
    shard: Option<u64>,
    snapshots: u64,
    pending: u64,
    phases: u64,
    cache_hits: u64,
    cache_misses: u64,
    faulted: bool,
    idle_s: Option<f64>,
}

/// Parse one `incprof_session_<metric>{session="<id>"} <value>` line.
/// A merged cluster scrape carries an extra `,shard="<n>"` label (the
/// router's shard injection — see `incprof-shard`), returned as the
/// third element.
fn parse_session_line(line: &str) -> Option<(&str, u64, Option<u64>, f64)> {
    let rest = line.strip_prefix("incprof_session_")?;
    let (metric, rest) = rest.split_once('{')?;
    let rest = rest.strip_prefix("session=\"")?;
    let (id, rest) = rest.split_once('"')?;
    let id: u64 = id.parse().ok()?;
    let (shard, rest) = match rest.strip_prefix(",shard=\"") {
        Some(rest) => {
            let (shard, rest) = rest.split_once('"')?;
            (Some(shard.parse().ok()?), rest)
        }
        None => (None, rest),
    };
    let value: f64 = rest.strip_prefix("} ")?.trim().parse().ok()?;
    Some((metric, id, shard, value))
}

/// Parse one `<name>{shard="<n>"} <value>` daemon line from a merged
/// cluster scrape.
fn parse_shard_line(line: &str) -> Option<(&str, u64, f64)> {
    let (name, rest) = line.split_once("{shard=\"")?;
    let (shard, rest) = rest.split_once('"')?;
    let shard: u64 = shard.parse().ok()?;
    let value: f64 = rest.strip_prefix("} ")?.trim().parse().ok()?;
    Some((name, shard, value))
}

/// Render the `incprof top` table from a raw Prometheus exposition.
/// Pure text-in/text-out so the format is unit-testable. A merged
/// cluster scrape (shard labels present) additionally gets a per-shard
/// summary table, and the session table grows a SHARD column.
fn render_top(scrape: &str, addr: &str) -> String {
    use std::collections::BTreeMap;
    let mut rows: BTreeMap<u64, TopRow> = BTreeMap::new();
    let mut daemon: BTreeMap<&str, f64> = BTreeMap::new();
    let mut shards: BTreeMap<u64, BTreeMap<&str, f64>> = BTreeMap::new();
    for line in scrape.lines() {
        if let Some((metric, id, shard, value)) = parse_session_line(line) {
            let row = rows.entry(id).or_default();
            if shard.is_some() {
                row.shard = shard;
            }
            match metric {
                "snapshots" => row.snapshots = value as u64,
                "pending" => row.pending = value as u64,
                "phases" => row.phases = value as u64,
                "cache_hits" => row.cache_hits = value as u64,
                "cache_misses" => row.cache_misses = value as u64,
                "faulted" => row.faulted = value != 0.0,
                "idle_seconds" => row.idle_s = Some(value),
                _ => {}
            }
        } else if let Some((name, shard, value)) = parse_shard_line(line) {
            shards.entry(shard).or_default().insert(name, value);
        } else if let Some((name, value)) = line.rsplit_once(' ') {
            if let Ok(v) = value.parse::<f64>() {
                daemon.insert(name, v);
            }
        }
    }
    let clustered = !shards.is_empty();
    let get = |m: &BTreeMap<&str, f64>, k: &str| m.get(k).copied().unwrap_or(0.0) as u64;
    let sum = |k: &str| shards.values().map(|m| get(m, k)).sum::<u64>() + get(&daemon, k);
    let mut out = String::new();
    out.push_str(&format!(
        "{} {addr} — {} session(s), {} frames in / {} out, {} busy, {} decode errors\n",
        if clustered {
            "incprof-shard cluster"
        } else {
            "incprof-serve"
        },
        rows.len(),
        sum("incprof_serve_frames_received"),
        sum("incprof_serve_frames_sent"),
        sum("incprof_serve_backpressure_busy_replies"),
        sum("incprof_serve_frames_decode_errors"),
    ));
    if clustered {
        out.push_str(&format!(
            "{:>5}  {:>8}  {:>9}  {:>10}  {:>4}  {:>6}\n",
            "SHARD", "SESSIONS", "FRAMES-IN", "FRAMES-OUT", "BUSY", "ERRORS"
        ));
        for (shard, m) in &shards {
            let sessions = rows.values().filter(|r| r.shard == Some(*shard)).count();
            out.push_str(&format!(
                "{:>5}  {:>8}  {:>9}  {:>10}  {:>4}  {:>6}\n",
                shard,
                sessions,
                get(m, "incprof_serve_frames_received"),
                get(m, "incprof_serve_frames_sent"),
                get(m, "incprof_serve_backpressure_busy_replies"),
                get(m, "incprof_serve_frames_decode_errors"),
            ));
        }
        let routed = get(&daemon, "incprof_shard_frames_routed");
        let deaths = get(&daemon, "incprof_shard_backend_deaths");
        let up = get(&daemon, "incprof_shard_backends_up");
        out.push_str(&format!(
            "router: {routed} frame(s) routed, {up} backend(s) up, {deaths} death(s)\n",
        ));
    }
    out.push_str(&format!(
        "{:>8}  {}{:>9}  {:>7}  {:>6}  {:>9}  {:>8}  {:>5}\n",
        "SESSION",
        if clustered { "SHARD  " } else { "" },
        "SNAPSHOTS",
        "PENDING",
        "PHASES",
        "CACHE-HIT",
        "IDLE(S)",
        "FAULT"
    ));
    for (id, r) in &rows {
        let queries = r.cache_hits + r.cache_misses;
        let hit = if queries == 0 {
            "-".to_string()
        } else {
            format!("{:.0}%", 100.0 * r.cache_hits as f64 / queries as f64)
        };
        let idle = match r.idle_s {
            Some(s) => format!("{s:.1}"),
            None => "-".to_string(),
        };
        let shard_col = if clustered {
            format!(
                "{:>5}  ",
                r.shard.map_or_else(|| "-".to_string(), |s| s.to_string())
            )
        } else {
            String::new()
        };
        out.push_str(&format!(
            "{:>8}  {}{:>9}  {:>7}  {:>6}  {:>9}  {:>8}  {:>5}\n",
            id,
            shard_col,
            r.snapshots,
            r.pending,
            r.phases,
            hit,
            idle,
            if r.faulted { "yes" } else { "-" }
        ));
    }
    if rows.is_empty() {
        out.push_str("(no sessions)\n");
    }
    out
}

/// `incprof push <addr> <dump.json> [--analysis] [--keep-open]
/// [--session-file path] [--shutdown]`.
///
/// Replays a collected run dump into a live daemon: opens a session,
/// streams every cumulative snapshot as a gmon-encoded frame (with
/// bounded busy-retry), and prints the session's JSON report —
/// `--analysis` asks for the offline-identical `PhaseAnalysis` document
/// instead of the full online report. `--session-file <path>` writes
/// the session id (scripts pair it with `--keep-open` so a later
/// `incprof query` can address the same session, e.g. across a daemon
/// restart). `--shutdown` asks the daemon to exit afterwards (used by
/// the check-script smoke step).
pub fn push_cmd(args: &[String]) -> Result<String, CliError> {
    let mut addr: Option<String> = None;
    let mut dump_path: Option<PathBuf> = None;
    let mut analysis = false;
    let mut keep_open = false;
    let mut session_file: Option<PathBuf> = None;
    let mut shutdown = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--analysis" => analysis = true,
            "--keep-open" => keep_open = true,
            "--session-file" => {
                session_file = Some(PathBuf::from(take(args, &mut i, "--session-file")?));
            }
            "--shutdown" => shutdown = true,
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown push option {flag}")));
            }
            positional if addr.is_none() => addr = Some(positional.to_string()),
            positional if dump_path.is_none() => dump_path = Some(PathBuf::from(positional)),
            extra => {
                return Err(CliError::Usage(format!(
                    "unexpected extra push argument {extra}"
                )));
            }
        }
        i += 1;
    }
    let addr = addr.ok_or_else(|| CliError::Usage("push <addr> <dump.json>".into()))?;
    let dump_path = dump_path.ok_or_else(|| CliError::Usage("push <addr> <dump.json>".into()))?;

    let dump = load_dump(&dump_path)?;
    let mut client = Client::connect(&addr).map_err(client_err)?;
    let session = client.open().map_err(client_err)?;
    if let Some(path) = &session_file {
        std::fs::write(path, session.to_string())?;
    }
    for snap in dump.series.snapshots() {
        let gmon = snap.to_gmon(&dump.table);
        client.push_retry(session, &gmon, 50).map_err(client_err)?;
    }
    let report = if analysis {
        client.query_analysis(session).map_err(client_err)?
    } else {
        client.query_report(session).map_err(client_err)?
    };
    if !keep_open {
        client.close(session).map_err(client_err)?;
    }
    if shutdown {
        client.shutdown_server().map_err(client_err)?;
    }
    Ok(report)
}

/// `incprof query <addr> <session-id> [--analysis] [--close]
/// [--shutdown]`.
///
/// Asks a live daemon for the report of an *existing* session by id and
/// prints the JSON. Unlike `incprof push` (which always opens a fresh
/// session), this addresses a session that is already open — or, on a
/// daemon started with `--store-dir`, one recovered from disk after a
/// restart, which is rehydrated transparently by the query. `--close`
/// closes the session afterwards; `--shutdown` asks the daemon to exit.
pub fn query_cmd(args: &[String]) -> Result<String, CliError> {
    let mut addr: Option<String> = None;
    let mut session: Option<u64> = None;
    let mut analysis = false;
    let mut close = false;
    let mut shutdown = false;
    for arg in args {
        match arg.as_str() {
            "--analysis" => analysis = true,
            "--close" => close = true,
            "--shutdown" => shutdown = true,
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown query option {flag}")));
            }
            positional if addr.is_none() => addr = Some(positional.to_string()),
            positional if session.is_none() => {
                session = Some(parse_num(positional, "session id")?);
            }
            extra => {
                return Err(CliError::Usage(format!(
                    "unexpected extra query argument {extra}"
                )));
            }
        }
    }
    let addr = addr.ok_or_else(|| CliError::Usage("query <addr> <session-id>".into()))?;
    let session = session.ok_or_else(|| CliError::Usage("query <addr> <session-id>".into()))?;

    let mut client = Client::connect(&addr).map_err(client_err)?;
    let report = if analysis {
        client.query_analysis(session).map_err(client_err)?
    } else {
        client.query_report(session).map_err(client_err)?
    };
    if close {
        client.close(session).map_err(client_err)?;
    }
    if shutdown {
        client.shutdown_server().map_err(client_err)?;
    }
    Ok(report)
}

/// `incprof collect <out.json> [--interval-ms n] [--max-samples n]`.
///
/// The wall-mode collection path: runs a small three-phase synthetic
/// workload on the main thread while the wall-clock collector samples
/// it in the background, until SIGINT (or `--max-samples`) stops it.
/// The drained series is written as a run dump usable by `analyze-json`
/// and `push`. Exits 0 on Ctrl-C by design: interruption is the normal
/// way to end a collection.
pub fn collect_cmd(args: &[String]) -> Result<String, CliError> {
    use incprof_collect::{CollectorConfig, IncProfCollector};
    use incprof_runtime::ProfilerRuntime;

    let mut out_path: Option<PathBuf> = None;
    let mut interval_ms: u64 = 50;
    let mut max_samples: u64 = u64::MAX;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--interval-ms" => {
                interval_ms = parse_num(&take(args, &mut i, "--interval-ms")?, "--interval-ms")?;
                if interval_ms == 0 {
                    return Err(CliError::Usage("--interval-ms must be at least 1".into()));
                }
            }
            "--max-samples" => {
                max_samples = parse_num(&take(args, &mut i, "--max-samples")?, "--max-samples")?;
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown collect option {flag}")));
            }
            positional if out_path.is_none() => out_path = Some(PathBuf::from(positional)),
            extra => {
                return Err(CliError::Usage(format!(
                    "unexpected extra collect argument {extra}"
                )));
            }
        }
        i += 1;
    }
    let out_path = out_path.ok_or_else(|| CliError::Usage("collect <out.json>".into()))?;

    signal::install_sigint_handler();
    let rt = ProfilerRuntime::new();
    let setup = rt.register_function("setup_mesh");
    let solve = rt.register_function("implicit_solve");
    let output = rt.register_function("write_output");
    let collector = IncProfCollector::start_wall(
        rt.clone(),
        CollectorConfig {
            interval_ns: interval_ms * 1_000_000,
            ..CollectorConfig::default()
        },
    );
    println!(
        "collecting every {interval_ms} ms to {} (Ctrl-C to stop)",
        out_path.display()
    );

    // A three-phase synthetic workload, phased by sample count so the
    // dump's shape tracks collection progress rather than wall time.
    while !signal::interrupted().load(std::sync::atomic::Ordering::Acquire)
        && collector.samples_taken() < max_samples
    {
        let taken = collector.samples_taken();
        let active = match taken {
            t if t < 4 => setup,
            t if t % 8 == 7 => output,
            _ => solve,
        };
        let _g = rt.enter(active);
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    let series = collector.stop();
    let n = series.len();
    let dump = RunDump {
        table: rt.function_table(),
        series,
    };
    std::fs::write(&out_path, serde_json::to_string(&dump)?)?;
    Ok(format!(
        "collected {n} sample(s) to {} (drained cleanly)",
        out_path.display()
    ))
}

fn load_dump(path: &Path) -> Result<RunDump, CliError> {
    let text = std::fs::read_to_string(path)?;
    let mut dump: RunDump = serde_json::from_str(&text)?;
    dump.table.rebuild_index();
    Ok(dump)
}

fn client_err(e: incprof_serve::ClientError) -> CliError {
    CliError::Pipeline(format!("serve client: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRAPE: &str = "\
# TYPE incprof_serve_frames_received counter
incprof_serve_frames_received 42
incprof_serve_frames_sent 40
incprof_serve_backpressure_busy_replies 1
incprof_session_snapshots{session=\"7\"} 5
incprof_session_pending{session=\"7\"} 2
incprof_session_phases{session=\"7\"} 3
incprof_session_cache_hits{session=\"7\"} 3
incprof_session_cache_misses{session=\"7\"} 1
incprof_session_faulted{session=\"7\"} 0
incprof_session_idle_seconds{session=\"7\"} 1.5
incprof_session_snapshots{session=\"9\"} 1
incprof_session_faulted{session=\"9\"} 1
";

    #[test]
    fn session_lines_parse_and_others_do_not() {
        assert_eq!(
            parse_session_line("incprof_session_pending{session=\"7\"} 2"),
            Some(("pending", 7, None, 2.0))
        );
        assert_eq!(
            parse_session_line("incprof_session_idle_seconds{session=\"12\"} 0.25"),
            Some(("idle_seconds", 12, None, 0.25))
        );
        assert_eq!(
            parse_session_line("incprof_session_snapshots{session=\"3\",shard=\"1\"} 9"),
            Some(("snapshots", 3, Some(1), 9.0))
        );
        assert_eq!(parse_session_line("incprof_serve_frames_received 42"), None);
        assert_eq!(parse_session_line("# TYPE foo counter"), None);
        assert_eq!(
            parse_session_line("incprof_session_pending{session=\"x\"} 2"),
            None
        );
    }

    #[test]
    fn shard_lines_parse_and_others_do_not() {
        assert_eq!(
            parse_shard_line("incprof_serve_frames_received{shard=\"2\"} 18"),
            Some(("incprof_serve_frames_received", 2, 18.0))
        );
        assert_eq!(parse_shard_line("incprof_serve_frames_received 42"), None);
        assert_eq!(
            parse_shard_line("incprof_session_pending{session=\"7\",shard=\"0\"} 2"),
            None
        );
    }

    #[test]
    fn top_table_renders_rows_hit_ratio_and_faults() {
        let out = render_top(SCRAPE, "127.0.0.1:9");
        assert!(out.contains("2 session(s)"), "{out}");
        assert!(out.contains("42 frames in / 40 out"), "{out}");
        let row7 = out
            .lines()
            .find(|l| l.trim_start().starts_with('7'))
            .unwrap();
        // 3 hits / 4 queries = 75%, idle 1.5s, no fault.
        assert!(row7.contains("75%"), "{row7}");
        assert!(row7.contains("1.5"), "{row7}");
        assert!(!row7.contains("yes"), "{row7}");
        let row9 = out
            .lines()
            .find(|l| l.trim_start().starts_with('9'))
            .unwrap();
        // No queries yet → hit ratio is "-"; faulted flag shows.
        assert!(row9.contains('-'), "{row9}");
        assert!(row9.contains("yes"), "{row9}");
    }

    #[test]
    fn top_table_handles_empty_scrape() {
        let out = render_top("", "a:1");
        assert!(out.contains("0 session(s)"), "{out}");
        assert!(out.contains("(no sessions)"), "{out}");
    }

    const CLUSTER_SCRAPE: &str = "\
# TYPE incprof_serve_frames_received counter
incprof_serve_frames_received{shard=\"0\"} 10
incprof_serve_frames_sent{shard=\"0\"} 9
incprof_session_snapshots{session=\"1\",shard=\"0\"} 4
incprof_session_phases{session=\"1\",shard=\"0\"} 2
incprof_serve_frames_received{shard=\"1\"} 30
incprof_serve_frames_sent{shard=\"1\"} 28
incprof_session_snapshots{session=\"2\",shard=\"1\"} 7
incprof_shard_frames_routed 40
incprof_shard_backends_up 2
incprof_shard_backend_deaths 0
";

    #[test]
    fn top_renders_per_shard_table_for_merged_scrapes() {
        let out = render_top(CLUSTER_SCRAPE, "127.0.0.1:9");
        assert!(out.contains("incprof-shard cluster"), "{out}");
        // Aggregate header sums the shards: 10+30 in, 9+28 out.
        assert!(out.contains("40 frames in / 37 out"), "{out}");
        assert!(out.contains("SHARD"), "{out}");
        assert!(
            out.contains("router: 40 frame(s) routed, 2 backend(s) up, 0 death(s)"),
            "{out}"
        );
        // Per-shard rows carry each backend's own counts and sessions.
        let shard0 = out.lines().nth(2).unwrap_or_default();
        assert!(shard0.contains("10"), "{shard0}");
        // Session rows keep their shard column.
        let row2 = out
            .lines()
            .find(|l| l.trim_start().starts_with("2  "))
            .unwrap_or_default();
        assert!(row2.contains('1'), "{row2}");
    }
}
