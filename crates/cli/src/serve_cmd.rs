//! The long-running subcommands: `incprof serve`, `incprof push`, and
//! `incprof collect`.
//!
//! All three share one lifecycle discipline: SIGINT flips a flag (via
//! `incprof_serve::signal`), the command drains whatever it owns —
//! daemon sessions, the wall collector's series — returns normally, and
//! the process exits 0 with the observability run report flushed by the
//! `--metrics` machinery in [`crate::run`].

use crate::{CliError, RunDump};
use incprof_serve::signal;
use incprof_serve::{BindAddr, Client, ServeConfig, Server};
use std::path::{Path, PathBuf};

fn take(args: &[String], i: &mut usize, what: &str) -> Result<String, CliError> {
    *i += 1;
    args.get(*i)
        .cloned()
        .ok_or_else(|| CliError::Usage(format!("{what} requires a value")))
}

fn parse_num<T: std::str::FromStr>(v: &str, what: &str) -> Result<T, CliError>
where
    T::Err: std::fmt::Display,
{
    v.parse()
        .map_err(|e| CliError::Usage(format!("bad {what}: {e}")))
}

/// `incprof serve [--addr host:port | --unix path] [--workers n]
/// [--max-sessions n] [--max-pending n] [--addr-file path]
/// [--no-analysis-cache]`.
///
/// `--no-analysis-cache` disables the per-session incremental analysis
/// cache, recomputing the full phase analysis on every report query
/// (useful to bound memory or to A/B the cache's byte-identity).
///
/// Binds, prints `listening on <addr>` (and optionally writes the
/// resolved address to `--addr-file`, for scripts using an ephemeral
/// port), then blocks until a `Shutdown` frame arrives or SIGINT fires.
/// Either way the daemon drains every session before returning, and the
/// returned summary reports the ingest tail latency via the histogram
/// quantiles.
pub fn serve_cmd(args: &[String]) -> Result<String, CliError> {
    let mut config = ServeConfig::default();
    let mut addr_file: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => config.addr = BindAddr::Tcp(take(args, &mut i, "--addr")?),
            "--unix" => config.addr = BindAddr::Unix(PathBuf::from(take(args, &mut i, "--unix")?)),
            "--workers" => {
                config.workers = parse_num(&take(args, &mut i, "--workers")?, "--workers")?;
                if config.workers == 0 {
                    return Err(CliError::Usage("--workers must be at least 1".into()));
                }
            }
            "--max-sessions" => {
                config.max_sessions =
                    parse_num(&take(args, &mut i, "--max-sessions")?, "--max-sessions")?;
            }
            "--max-pending" => {
                config.max_pending =
                    parse_num(&take(args, &mut i, "--max-pending")?, "--max-pending")?;
            }
            "--addr-file" => addr_file = Some(PathBuf::from(take(args, &mut i, "--addr-file")?)),
            "--no-analysis-cache" => config.analysis_cache = false,
            other => return Err(CliError::Usage(format!("unknown serve option {other}"))),
        }
        i += 1;
    }

    signal::install_sigint_handler();
    let server = Server::bind(config).map_err(CliError::Io)?;
    let addr = server.local_addr().to_string();
    let handle = server.start().map_err(CliError::Io)?;
    // Announce readiness immediately; the summary string below is only
    // printed after shutdown.
    println!("incprof-serve listening on {addr}");
    if let Some(path) = &addr_file {
        std::fs::write(path, &addr)?;
    }

    handle.wait(Some(signal::interrupted()));
    let sessions_at_exit = handle.active_sessions();
    handle.shutdown();

    let frames_in = incprof_obs::counter(incprof_obs::names::SERVE_FRAMES_IN).get();
    let frames_out = incprof_obs::counter(incprof_obs::names::SERVE_FRAMES_OUT).get();
    let opened = incprof_obs::counter(incprof_obs::names::SERVE_SESSIONS_OPENED).get();
    let lat = incprof_obs::histogram(incprof_obs::names::SERVE_INGEST_DETECT_LATENCY_NS).snapshot();
    let (p50, p95, p99) = lat.percentiles();
    Ok(format!(
        "incprof-serve drained: {opened} session(s) ({sessions_at_exit} open at shutdown), \
         {frames_in} frames in / {frames_out} out\n\
         ingest-to-detect latency: n={} p50={p50}ns p95={p95}ns p99={p99}ns",
        lat.count
    ))
}

/// `incprof push <addr> <dump.json> [--analysis] [--keep-open]
/// [--shutdown]`.
///
/// Replays a collected run dump into a live daemon: opens a session,
/// streams every cumulative snapshot as a gmon-encoded frame (with
/// bounded busy-retry), and prints the session's JSON report —
/// `--analysis` asks for the offline-identical `PhaseAnalysis` document
/// instead of the full online report. `--shutdown` asks the daemon to
/// exit afterwards (used by the check-script smoke step).
pub fn push_cmd(args: &[String]) -> Result<String, CliError> {
    let mut addr: Option<String> = None;
    let mut dump_path: Option<PathBuf> = None;
    let mut analysis = false;
    let mut keep_open = false;
    let mut shutdown = false;
    for arg in args {
        match arg.as_str() {
            "--analysis" => analysis = true,
            "--keep-open" => keep_open = true,
            "--shutdown" => shutdown = true,
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown push option {flag}")));
            }
            positional if addr.is_none() => addr = Some(positional.to_string()),
            positional if dump_path.is_none() => dump_path = Some(PathBuf::from(positional)),
            extra => {
                return Err(CliError::Usage(format!(
                    "unexpected extra push argument {extra}"
                )));
            }
        }
    }
    let addr = addr.ok_or_else(|| CliError::Usage("push <addr> <dump.json>".into()))?;
    let dump_path = dump_path.ok_or_else(|| CliError::Usage("push <addr> <dump.json>".into()))?;

    let dump = load_dump(&dump_path)?;
    let mut client = Client::connect(&addr).map_err(client_err)?;
    let session = client.open().map_err(client_err)?;
    for snap in dump.series.snapshots() {
        let gmon = snap.to_gmon(&dump.table);
        client.push_retry(session, &gmon, 50).map_err(client_err)?;
    }
    let report = if analysis {
        client.query_analysis(session).map_err(client_err)?
    } else {
        client.query_report(session).map_err(client_err)?
    };
    if !keep_open {
        client.close(session).map_err(client_err)?;
    }
    if shutdown {
        client.shutdown_server().map_err(client_err)?;
    }
    Ok(report)
}

/// `incprof collect <out.json> [--interval-ms n] [--max-samples n]`.
///
/// The wall-mode collection path: runs a small three-phase synthetic
/// workload on the main thread while the wall-clock collector samples
/// it in the background, until SIGINT (or `--max-samples`) stops it.
/// The drained series is written as a run dump usable by `analyze-json`
/// and `push`. Exits 0 on Ctrl-C by design: interruption is the normal
/// way to end a collection.
pub fn collect_cmd(args: &[String]) -> Result<String, CliError> {
    use incprof_collect::{CollectorConfig, IncProfCollector};
    use incprof_runtime::ProfilerRuntime;

    let mut out_path: Option<PathBuf> = None;
    let mut interval_ms: u64 = 50;
    let mut max_samples: u64 = u64::MAX;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--interval-ms" => {
                interval_ms = parse_num(&take(args, &mut i, "--interval-ms")?, "--interval-ms")?;
                if interval_ms == 0 {
                    return Err(CliError::Usage("--interval-ms must be at least 1".into()));
                }
            }
            "--max-samples" => {
                max_samples = parse_num(&take(args, &mut i, "--max-samples")?, "--max-samples")?;
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown collect option {flag}")));
            }
            positional if out_path.is_none() => out_path = Some(PathBuf::from(positional)),
            extra => {
                return Err(CliError::Usage(format!(
                    "unexpected extra collect argument {extra}"
                )));
            }
        }
        i += 1;
    }
    let out_path = out_path.ok_or_else(|| CliError::Usage("collect <out.json>".into()))?;

    signal::install_sigint_handler();
    let rt = ProfilerRuntime::new();
    let setup = rt.register_function("setup_mesh");
    let solve = rt.register_function("implicit_solve");
    let output = rt.register_function("write_output");
    let collector = IncProfCollector::start_wall(
        rt.clone(),
        CollectorConfig {
            interval_ns: interval_ms * 1_000_000,
            ..CollectorConfig::default()
        },
    );
    println!(
        "collecting every {interval_ms} ms to {} (Ctrl-C to stop)",
        out_path.display()
    );

    // A three-phase synthetic workload, phased by sample count so the
    // dump's shape tracks collection progress rather than wall time.
    while !signal::interrupted().load(std::sync::atomic::Ordering::Acquire)
        && collector.samples_taken() < max_samples
    {
        let taken = collector.samples_taken();
        let active = match taken {
            t if t < 4 => setup,
            t if t % 8 == 7 => output,
            _ => solve,
        };
        let _g = rt.enter(active);
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    let series = collector.stop();
    let n = series.len();
    let dump = RunDump {
        table: rt.function_table(),
        series,
    };
    std::fs::write(&out_path, serde_json::to_string(&dump)?)?;
    Ok(format!(
        "collected {n} sample(s) to {} (drained cleanly)",
        out_path.display()
    ))
}

fn load_dump(path: &Path) -> Result<RunDump, CliError> {
    let text = std::fs::read_to_string(path)?;
    let mut dump: RunDump = serde_json::from_str(&text)?;
    dump.table.rebuild_index();
    Ok(dump)
}

fn client_err(e: incprof_serve::ClientError) -> CliError {
    CliError::Pipeline(format!("serve client: {e}"))
}
