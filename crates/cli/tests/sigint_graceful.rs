//! Graceful-SIGINT tests for the long-running subcommands, driven
//! against the real `incprof` binary as a child process.
//!
//! The contract under test: Ctrl-C makes `serve` and `collect` drain
//! what they own, flush the `--metrics` run report, and exit 0 — an
//! interrupted collection or daemon is a *successful* run, not a crash.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn incprof() -> Command {
    Command::new(env!("CARGO_BIN_EXE_incprof"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("incprof_sigint_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Deliver SIGINT via the portable `kill` utility (the workspace has no
/// libc binding, and spawning `kill` is exactly what a shell's Ctrl-C
/// or an init system's stop would do).
fn send_sigint(child: &Child) {
    let status = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("spawn kill");
    assert!(status.success(), "kill -INT failed");
}

/// Wait for the child with a hard deadline so a hung drain fails the
/// test instead of wedging the suite.
fn wait_with_deadline(mut child: Child, deadline: Duration) -> std::process::ExitStatus {
    let started = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if started.elapsed() > deadline {
            let _ = child.kill();
            panic!("child did not exit within {deadline:?} after SIGINT");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn wait_for_file(path: &Path, deadline: Duration) {
    let started = Instant::now();
    while !path.exists() {
        assert!(
            started.elapsed() < deadline,
            "{} did not appear within {deadline:?}",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn serve_drains_and_exits_zero_on_sigint() {
    let dir = temp_dir("serve");
    let addr_file = dir.join("addr.txt");
    let admin_addr_file = dir.join("admin_addr.txt");
    let final_scrape = dir.join("final_scrape.prom");
    let metrics = dir.join("metrics.json");

    let child = incprof()
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().expect("utf8 path"),
            "--admin",
            "127.0.0.1:0",
            "--admin-addr-file",
            admin_addr_file.to_str().expect("utf8 path"),
            "--final-scrape",
            final_scrape.to_str().expect("utf8 path"),
            "--metrics",
            metrics.to_str().expect("utf8 path"),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");

    // The daemon is up once it has written its resolved address. Run
    // one live exchange so the interrupt lands on a daemon with state.
    wait_for_file(&addr_file, Duration::from_secs(10));
    let addr = std::fs::read_to_string(&addr_file).expect("addr");
    let mut client = incprof_serve::Client::connect_tcp(addr.trim()).expect("connect");
    client.ping().expect("ping");
    let session = client.open().expect("open");

    // The admin plane is live alongside the data plane.
    wait_for_file(&admin_addr_file, Duration::from_secs(10));
    let admin_addr = std::fs::read_to_string(&admin_addr_file).expect("admin addr");
    let mut admin = incprof_serve::Client::connect_tcp(admin_addr.trim()).expect("connect admin");
    assert!(admin
        .health()
        .expect("health")
        .contains("\"status\":\"ok\""));
    drop(admin);

    send_sigint(&child);
    let status = wait_with_deadline(child, Duration::from_secs(10));
    assert!(status.success(), "serve must exit 0 on SIGINT: {status:?}");

    // The run report was flushed on the way out with the daemon's
    // traffic in it — including the session left open at interrupt,
    // which the drain owned rather than abandoned.
    let report =
        incprof_obs::RunReport::from_json(&std::fs::read_to_string(&metrics).expect("metrics"))
            .expect("parse run report");
    assert!(report.counters["serve.conns.accepted"] >= 1);
    assert!(report.counters["serve.frames.received"] >= 2);
    assert!(report.counters["serve.sessions.opened"] >= 1, "{session}");

    // The flight-recorder dump rode along in the report: the drain
    // records a Shutdown event, so the ring cannot be empty here.
    assert!(
        report.events_total >= 1,
        "flight recorder must capture the shutdown: {:?}",
        report.events_total
    );
    assert!(
        report
            .events
            .iter()
            .any(|e| e.kind == incprof_obs::EventKind::Shutdown),
        "expected a shutdown event in {:?}",
        report.events
    );

    // And the final scrape was written *after* the drain: a complete,
    // well-formed exposition snapshot of the daemon's last breath.
    let scrape = std::fs::read_to_string(&final_scrape).expect("final scrape written");
    assert!(scrape.contains("incprof_serve_frames_received"), "{scrape}");
    for line in scrape.lines() {
        assert!(
            line.starts_with("# TYPE ")
                || line
                    .rsplit_once(' ')
                    .is_some_and(|(_, v)| v.parse::<f64>().is_ok()),
            "malformed exposition line: {line}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn collect_drains_and_exits_zero_on_sigint() {
    let dir = temp_dir("collect");
    let dump = dir.join("dump.json");
    let metrics = dir.join("metrics.json");

    let child = incprof()
        .args([
            "collect",
            dump.to_str().expect("utf8 path"),
            "--interval-ms",
            "10",
            "--metrics",
            metrics.to_str().expect("utf8 path"),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn collect");

    // Let it take a few samples before interrupting.
    std::thread::sleep(Duration::from_millis(300));
    send_sigint(&child);
    let status = wait_with_deadline(child, Duration::from_secs(10));
    assert!(
        status.success(),
        "collect must exit 0 on SIGINT: {status:?}"
    );

    // The interrupted collection still produced a loadable dump...
    let dump_text = std::fs::read_to_string(&dump).expect("dump written");
    let parsed: incprof_cli::RunDump = serde_json::from_str(&dump_text).expect("dump parses");
    assert!(!parsed.series.is_empty(), "dump must contain samples");
    // ...and the flushed report shows collector activity.
    let report =
        incprof_obs::RunReport::from_json(&std::fs::read_to_string(&metrics).expect("metrics"))
            .expect("parse run report");
    assert!(report.counters["collect.snapshot.count"] > 0);
    std::fs::remove_dir_all(&dir).ok();
}
