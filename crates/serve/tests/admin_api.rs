//! End-to-end coverage of the live-telemetry surface: a daemon with an
//! admin socket, traced pushes linking client and server spans into one
//! tree, the Prometheus scrape, the flight-recorder dump, and the
//! plane separation (admin requests bounce off the data socket and
//! vice versa).
//!
//! These tests run in one process, so the client and the daemon share
//! the global span store — which is exactly what lets `TraceGet`
//! resolve a tree containing both sides of the wire.

use incprof_obs::{TraceIdGen, TraceNode, TraceTree};
use incprof_profile::{FlatProfile, FunctionStats, FunctionTable, GmonData};
use incprof_serve::{BindAddr, Client, ClientError, ErrorCode, Push, ServeConfig, Server};
use std::time::Duration;

fn gmon(idx: u64) -> GmonData {
    let mut table = FunctionTable::new();
    let a = table.register("alpha");
    let b = table.register("beta");
    let mut flat = FlatProfile::new();
    flat.set(
        a,
        FunctionStats {
            self_time: (idx + 1) * 1_000_000_000,
            calls: idx + 1,
            child_time: 0,
        },
    );
    flat.set(
        b,
        FunctionStats {
            self_time: (idx + 1) * 500_000_000,
            calls: (idx + 1) * 2,
            child_time: 0,
        },
    );
    GmonData {
        sample_index: idx,
        timestamp_ns: idx * 1_000_000_000,
        functions: table,
        flat,
        callgraph: Default::default(),
    }
}

fn admin_server() -> incprof_serve::ServerHandle {
    Server::bind(ServeConfig {
        admin: Some(BindAddr::Tcp("127.0.0.1:0".to_string())),
        workers: 2,
        read_timeout: Duration::from_millis(25),
        ..ServeConfig::default()
    })
    .expect("bind")
    .start()
    .expect("start")
}

fn subtree_names(node: &TraceNode, out: &mut Vec<String>) {
    out.push(node.name.clone());
    for c in &node.children {
        subtree_names(c, out);
    }
}

#[test]
fn traced_push_resolves_to_one_span_tree_over_admin() {
    let handle = admin_server();
    let admin_addr = handle.admin_addr().expect("admin bound").to_string();
    let mut client = Client::connect_tcp(handle.addr()).expect("connect data");
    let session = client.open().expect("open");

    let ids = TraceIdGen::new(0x5EED);
    let tid = ids.next_id();
    for i in 0..3 {
        match client.push_traced(session, &gmon(i), tid).expect("push") {
            Push::Ack(ack) => assert_eq!(ack.interval, i),
            Push::Busy => panic!("unloaded daemon must not be busy"),
        }
    }

    let mut admin = Client::connect_tcp(&admin_addr).expect("connect admin");
    let json = admin.trace_get(tid).expect("trace_get");
    let tree: TraceTree = serde_json::from_str(&json).expect("trace json");
    assert_eq!(tree.trace_id, tid);
    // Three pushes → three client-side roots, each owning the server's
    // dispatch and detector-observation spans through the wire link.
    let roots: Vec<&TraceNode> = tree
        .roots
        .iter()
        .filter(|r| r.name == incprof_obs::names::SERVE_CLIENT_PUSH)
        .collect();
    assert_eq!(roots.len(), 3, "{json}");
    for root in roots {
        let mut names = Vec::new();
        subtree_names(root, &mut names);
        for expected in [
            incprof_obs::names::SERVE_TRACE_SNAPSHOT,
            incprof_obs::names::SERVE_TRACE_OBSERVE,
        ] {
            assert!(
                names.contains(&expected.to_string()),
                "missing {expected} in {names:?}"
            );
        }
    }

    // An unknown trace id resolves to an empty tree, not an error.
    let empty: TraceTree =
        serde_json::from_str(&admin.trace_get(0xDEAD_BEEF).expect("empty trace")).expect("json");
    assert_eq!(empty.spans, 0);
    assert!(empty.roots.is_empty());

    client.close(session).expect("close");
    handle.shutdown();
}

#[test]
fn traced_query_joins_the_analysis_pipeline_and_stays_byte_identical() {
    let handle = admin_server();
    let admin_addr = handle.admin_addr().expect("admin bound").to_string();
    let mut client = Client::connect_tcp(handle.addr()).expect("connect data");
    let session = client.open().expect("open");
    for i in 0..6 {
        client.push(session, &gmon(i)).expect("push");
    }

    // Telemetry must not perturb the analysis: traced and untraced
    // queries over the same series return byte-identical JSON.
    let untraced = client.query_analysis(session).expect("query");
    let ids = TraceIdGen::new(0xA11CE);
    let tid = ids.next_id();
    let traced = client
        .query_analysis_traced(session, tid)
        .expect("traced query");
    assert_eq!(untraced, traced);

    let mut admin = Client::connect_tcp(&admin_addr).expect("connect admin");
    let tree: TraceTree =
        serde_json::from_str(&admin.trace_get(tid).expect("trace_get")).expect("json");
    let mut names = Vec::new();
    for r in &tree.roots {
        subtree_names(r, &mut names);
    }
    assert!(
        names.contains(&incprof_obs::names::SERVE_TRACE_QUERY.to_string()),
        "{names:?}"
    );
    assert!(
        names.contains(&incprof_obs::names::CORE_CACHE_ANALYZE.to_string()),
        "core pipeline must inherit into the trace: {names:?}"
    );

    client.close(session).expect("close");
    handle.shutdown();
}

#[test]
fn scrape_health_and_recorder_dump_answer_on_the_admin_socket() {
    let handle = admin_server();
    let admin_addr = handle.admin_addr().expect("admin bound").to_string();
    let mut client = Client::connect_tcp(handle.addr()).expect("connect data");
    let session = client.open().expect("open");
    for i in 0..2 {
        client.push(session, &gmon(i)).expect("push");
    }
    client.query_report(session).expect("query");

    let mut admin = Client::connect_tcp(&admin_addr).expect("connect admin");
    let health = admin.health().expect("health");
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    assert!(health.contains("\"sessions\":1"), "{health}");

    let scrape = admin.scrape().expect("scrape");
    assert!(
        scrape.contains(&format!(
            "incprof_session_snapshots{{session=\"{session}\"}} 2"
        )),
        "{scrape}"
    );
    assert!(
        scrape.contains("# TYPE incprof_serve_frames_received counter"),
        "{scrape}"
    );
    for line in scrape.lines() {
        assert!(
            line.starts_with("# TYPE ")
                || line
                    .rsplit_once(' ')
                    .is_some_and(|(_, v)| v.parse::<f64>().is_ok()),
            "malformed exposition line: {line}"
        );
    }

    let dump = admin.recorder_dump().expect("dump");
    assert!(dump.starts_with("{\"total\":"), "{dump}");
    assert!(dump.contains("\"events\":["), "{dump}");

    client.close(session).expect("close");
    handle.shutdown();
}

#[test]
fn planes_reject_each_others_requests() {
    let handle = admin_server();
    let admin_addr = handle.admin_addr().expect("admin bound").to_string();

    // Admin request on the data socket → BadType.
    let mut data = Client::connect_tcp(handle.addr()).expect("connect data");
    match data.scrape() {
        Err(ClientError::Server(info)) => assert_eq!(info.code, ErrorCode::BadType),
        other => panic!("scrape on data socket must be rejected, got {other:?}"),
    }

    // Write request on the admin socket → BadType; the connection (and
    // daemon) keep serving admin traffic afterwards.
    let mut admin = Client::connect_tcp(&admin_addr).expect("connect admin");
    match admin.open() {
        Err(ClientError::Server(info)) => assert_eq!(info.code, ErrorCode::BadType),
        other => panic!("open on admin socket must be rejected, got {other:?}"),
    }
    assert!(admin.health().expect("health still served").contains("ok"));

    handle.shutdown();
}
