//! Corrupted-frame robustness: a live daemon fed garbage over raw
//! sockets must answer with a typed error frame or drop the connection
//! — never panic, never leak a session, and never poison state for
//! well-behaved clients on other connections.

use incprof_serve::frame::{
    crc32, read_frame, write_frame, ErrorCode, ErrorInfo, Frame, FrameType, ReadOutcome,
    DEFAULT_MAX_PAYLOAD, HEADER_LEN, MAGIC, VERSION_TRACED,
};
use incprof_serve::{Client, ServeConfig, Server, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn live_server() -> ServerHandle {
    Server::bind(ServeConfig {
        workers: 2,
        read_timeout: Duration::from_millis(25),
        idle_timeout: Duration::from_secs(2),
        ..ServeConfig::default()
    })
    .expect("bind")
    .start()
    .expect("start")
}

fn connect(handle: &ServerHandle) -> TcpStream {
    let s = TcpStream::connect(handle.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    s
}

/// Read reply frames until the server answers or hangs up.
fn read_reply(conn: &mut TcpStream) -> Option<Frame> {
    loop {
        match read_frame(conn, DEFAULT_MAX_PAYLOAD).expect("client read") {
            ReadOutcome::Frame(f) => return Some(f),
            ReadOutcome::TimedOut => continue,
            ReadOutcome::Closed => return None,
            ReadOutcome::Malformed(e) => panic!("server sent malformed reply: {e}"),
        }
    }
}

fn expect_error(conn: &mut TcpStream, code: ErrorCode) {
    let f = read_reply(conn).expect("expected an error frame, got EOF");
    assert_eq!(f.frame_type, FrameType::Error, "got {:?}", f.frame_type);
    let info = ErrorInfo::decode(&f.payload).expect("decode error payload");
    assert_eq!(info.code, code, "message: {}", info.message);
}

/// The daemon stays alive and correct after an abusive connection: a
/// fresh client can run a full session.
fn assert_still_serving(handle: &ServerHandle) {
    let mut client = Client::connect_tcp(handle.addr()).expect("fresh connect");
    client.ping().expect("ping after abuse");
    let id = client.open().expect("open after abuse");
    client.close(id).expect("close after abuse");
}

#[test]
fn bad_magic_gets_typed_error_then_disconnect() {
    let handle = live_server();
    let mut conn = connect(&handle);
    let mut bytes = Frame::empty(FrameType::Ping, 0).encode();
    bytes[0] = b'X';
    conn.write_all(&bytes).expect("write");
    expect_error(&mut conn, ErrorCode::BadMagic);
    // Framing is unrecoverable: the server hangs up. Depending on how
    // much of the bad frame it consumed before closing this surfaces as
    // a clean EOF or a reset — either way, no further frames.
    match read_frame(&mut conn, DEFAULT_MAX_PAYLOAD) {
        Ok(ReadOutcome::Closed) | Err(_) => {}
        other => panic!("connection must drop, got {other:?}"),
    }
    assert_still_serving(&handle);
    assert_eq!(handle.active_sessions(), 0);
    handle.shutdown();
}

#[test]
fn wrong_version_gets_typed_error() {
    let handle = live_server();
    let mut conn = connect(&handle);
    let mut bytes = Frame::empty(FrameType::Ping, 0).encode();
    // Version 2 is the (valid) traced layout, so the first genuinely
    // unsupported version is VERSION_TRACED + 1.
    bytes[4] = VERSION_TRACED + 1;
    // Re-stamp the CRC so only the version is wrong.
    let crc_at = bytes.len() - 4;
    let crc = crc32(&bytes[..crc_at]);
    bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
    conn.write_all(&bytes).expect("write");
    expect_error(&mut conn, ErrorCode::BadVersion);
    assert_still_serving(&handle);
    handle.shutdown();
}

#[test]
fn crc_mismatch_gets_typed_error() {
    let handle = live_server();
    let mut conn = connect(&handle);
    let mut bytes = Frame::with_payload(FrameType::Query, 1, vec![0]).encode();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    conn.write_all(&bytes).expect("write");
    expect_error(&mut conn, ErrorCode::BadCrc);
    assert_still_serving(&handle);
    handle.shutdown();
}

#[test]
fn oversized_length_gets_typed_error() {
    let handle = live_server();
    let mut conn = connect(&handle);
    let mut bytes = Frame::empty(FrameType::Snapshot, 1).encode();
    // Claim a payload far beyond the server's cap; only the header is
    // ever sent, so the server must reject on the declared length alone.
    bytes[14..18].copy_from_slice(&u32::MAX.to_le_bytes());
    conn.write_all(&bytes[..HEADER_LEN]).expect("write header");
    expect_error(&mut conn, ErrorCode::Oversize);
    assert_still_serving(&handle);
    handle.shutdown();
}

#[test]
fn truncated_payload_mid_frame_disconnect_is_quiet() {
    let handle = live_server();
    {
        let mut conn = connect(&handle);
        let bytes = Frame::with_payload(FrameType::Snapshot, 1, vec![0u8; 256]).encode();
        // Send the header plus half the payload, then hang up.
        conn.write_all(&bytes[..HEADER_LEN + 128])
            .expect("write partial");
        conn.shutdown(std::net::Shutdown::Both).expect("shutdown");
    }
    // The server treats a mid-frame EOF as a dead peer: no panic, no
    // leaked session, and the next client is served normally.
    assert_still_serving(&handle);
    assert_eq!(handle.active_sessions(), 0);
    handle.shutdown();
}

#[test]
fn snapshot_garbage_payload_keeps_connection_and_session() {
    let handle = live_server();
    let mut client = Client::connect_tcp(handle.addr()).expect("connect");
    let session = client.open().expect("open");

    // A well-framed Snapshot whose payload is not gmon data: payload
    // errors are recoverable, so the same connection keeps working.
    let mut conn = connect(&handle);
    let frame = Frame::with_payload(FrameType::Snapshot, session, b"not gmon".to_vec());
    write_frame(&mut conn, &frame).expect("write");
    expect_error(&mut conn, ErrorCode::BadPayload);
    write_frame(&mut conn, &Frame::empty(FrameType::Ping, 0)).expect("ping same conn");
    let pong = read_reply(&mut conn).expect("pong");
    assert_eq!(pong.frame_type, FrameType::Pong);

    // The session survived the garbage.
    assert_eq!(handle.active_sessions(), 1);
    client.close(session).expect("close");
    assert_eq!(handle.active_sessions(), 0);
    handle.shutdown();
}

#[test]
fn unknown_session_and_bad_type_are_typed_errors() {
    let handle = live_server();
    let mut conn = connect(&handle);
    write_frame(
        &mut conn,
        &Frame::with_payload(FrameType::Query, 999, vec![0]),
    )
    .expect("write query");
    expect_error(&mut conn, ErrorCode::UnknownSession);
    // A reply type used as a request is a protocol violation but not a
    // framing one: typed error, connection stays.
    write_frame(&mut conn, &Frame::empty(FrameType::Pong, 0)).expect("write pong");
    expect_error(&mut conn, ErrorCode::BadType);
    write_frame(&mut conn, &Frame::empty(FrameType::Ping, 0)).expect("write ping");
    assert_eq!(
        read_reply(&mut conn).expect("pong").frame_type,
        FrameType::Pong
    );
    handle.shutdown();
}

#[test]
fn codec_roundtrips_boundary_payload_sizes() {
    // 0, 1, cap−1, and cap exactly — the off-by-one edges of the length
    // field and the cap check. Encode → decode must be the identity, and
    // try_encode must agree with what decode will accept.
    let cap: u32 = 4096;
    for size in [0usize, 1, cap as usize - 1, cap as usize] {
        let f = Frame::with_payload(FrameType::Report, 3, vec![0x5A; size]);
        let bytes = f
            .try_encode(cap)
            .unwrap_or_else(|e| panic!("size {size}: {e}"));
        let (back, used) =
            Frame::decode(&bytes, cap).unwrap_or_else(|e| panic!("size {size}: {e}"));
        assert_eq!(used, bytes.len(), "size {size}");
        assert_eq!(back, f, "size {size}");
    }
    // cap+1 is refused symmetrically on both sides.
    let over = Frame::with_payload(FrameType::Report, 3, vec![0x5A; cap as usize + 1]);
    assert!(over.try_encode(cap).is_err());
    let bytes = over.encode();
    assert!(Frame::decode(&bytes, cap).is_err());
}

#[test]
fn codec_roundtrips_u64_max_session_id() {
    for id in [u64::MAX, u64::MAX - 1, 1u64 << 63] {
        let f = Frame::with_payload(FrameType::Query, id, vec![1]);
        let (back, _) = Frame::decode(&f.encode(), DEFAULT_MAX_PAYLOAD).expect("decode");
        assert_eq!(back.session_id, id);
        assert_eq!(back, f);
    }
}

#[test]
fn u64_max_session_id_on_the_wire_is_unknown_not_mangled() {
    // The extreme id must travel the full stack intact: the daemon
    // should answer "no session 18446744073709551615", proving the id
    // was neither truncated nor sign-mangled en route.
    let handle = live_server();
    let mut conn = connect(&handle);
    write_frame(
        &mut conn,
        &Frame::with_payload(FrameType::Query, u64::MAX, vec![0]),
    )
    .expect("write query");
    let f = read_reply(&mut conn).expect("reply");
    assert_eq!(f.frame_type, FrameType::Error);
    let info = ErrorInfo::decode(&f.payload).expect("decode error payload");
    assert_eq!(info.code, ErrorCode::UnknownSession);
    assert!(
        info.message.contains(&u64::MAX.to_string()),
        "message should echo the full id: {}",
        info.message
    );
    assert_still_serving(&handle);
    handle.shutdown();
}

#[test]
fn raw_garbage_stream_never_panics_the_daemon() {
    let handle = live_server();
    for chunk in [
        &b"\x00\x00\x00\x00"[..],
        &b"GET / HTTP/1.1\r\n\r\n"[..],
        &[0xFFu8; 64][..],
        &MAGIC[..],
    ] {
        let mut conn = connect(&handle);
        conn.write_all(chunk).expect("write garbage");
        // Drain whatever the server says (error frame or EOF) without
        // asserting a specific code — only that nothing panics and the
        // daemon keeps serving.
        let mut sink = Vec::new();
        let _ = conn.read_to_end(&mut sink);
    }
    assert_still_serving(&handle);
    assert_eq!(handle.active_sessions(), 0);
    handle.shutdown();
}
