//! Concurrency smoke: 8 client sessions ingest interleaved frames into
//! one daemon with zero cross-session contamination.
//!
//! Each session streams a *different* app's series (apps repeat across
//! sessions, so identical inputs must also produce identical outputs),
//! all sessions at once from their own threads. Every session's
//! analysis-only report must match the solo run of the same series —
//! if any frame leaked into the wrong session, the sample-index
//! ordering check or the byte comparison would catch it.

use incprof_serve::{Client, ServeConfig, Server};
use std::time::Duration;

use hpc_apps::{gadget2, graph500, lammps, miniamr, minife, HeartbeatPlan, RunMode};
use incprof_collect::SampleSeries;
use incprof_profile::FunctionTable;

fn app_runs() -> Vec<(&'static str, SampleSeries, FunctionTable)> {
    let plan = HeartbeatPlan::none();
    let mode = RunMode::virtual_1s();
    let mut v = Vec::new();
    let r = graph500::run(&graph500::Graph500Config::tiny(), mode, &plan).rank0;
    v.push(("Graph500", r.series, r.table));
    let r = minife::run(&minife::MiniFeConfig::tiny(), mode, &plan).rank0;
    v.push(("MiniFE", r.series, r.table));
    let r = miniamr::run(&miniamr::MiniAmrConfig::tiny(), mode, &plan).rank0;
    v.push(("MiniAMR", r.series, r.table));
    let r = lammps::run(&lammps::LammpsConfig::tiny(), mode, &plan).rank0;
    v.push(("LAMMPS", r.series, r.table));
    let r = gadget2::run(&gadget2::Gadget2Config::tiny(), mode, &plan).rank0;
    v.push(("Gadget2", r.series, r.table));
    v
}

/// Stream one series into its own session and return the analysis JSON.
fn stream_one(addr: &str, series: &SampleSeries, table: &FunctionTable) -> String {
    let mut client = Client::connect_tcp(addr).expect("connect");
    let session = client.open().expect("open");
    for snap in series.snapshots() {
        let gmon = snap.to_gmon(table);
        client.push_retry(session, &gmon, 100).expect("push");
    }
    let analysis = client.query_analysis(session).expect("query");
    client.close(session).expect("close");
    analysis
}

#[test]
fn eight_concurrent_sessions_do_not_contaminate_each_other() {
    let runs = app_runs();

    let handle = Server::bind(ServeConfig {
        workers: 8,
        max_sessions: 16,
        read_timeout: Duration::from_millis(25),
        ..ServeConfig::default()
    })
    .expect("bind")
    .start()
    .expect("start");
    let addr = handle.addr().to_string();

    // Solo baselines, one session at a time on the same daemon.
    let solo: Vec<String> = runs
        .iter()
        .map(|(_, series, table)| stream_one(&addr, series, table))
        .collect();

    // 8 concurrent sessions: apps cycle, so some series run twice.
    let concurrent: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let (_, series, table) = &runs[i % runs.len()];
                let addr = addr.as_str();
                scope.spawn(move || stream_one(addr, series, table))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    for (i, got) in concurrent.iter().enumerate() {
        let (app, _, _) = &runs[i % runs.len()];
        assert_eq!(
            got,
            &solo[i % runs.len()],
            "{app} (concurrent slot {i}): report differs from its solo run"
        );
    }

    assert_eq!(handle.active_sessions(), 0, "all sessions must be closed");
    handle.shutdown();
}
