//! The concurrent session registry.
//!
//! One [`Session`] is one logical profiled application run: the server
//! accumulates its cumulative snapshot series exactly as the offline
//! pipeline would read it from disk, feeds each interval delta through
//! the incremental [`OnlinePhaseDetector`] as frames arrive, and
//! answers report queries by running the *same* offline
//! [`PhaseDetector`] over the accumulated series — which is what makes
//! the streamed result byte-identical to the batch pipeline.
//!
//! Ingest is explicitly bounded: every session owns a fixed-capacity
//! pending queue, and a frame that would overflow it gets a `BUSY`
//! reply instead of being buffered. Snapshots must arrive in
//! sample-index order; anything else is a typed protocol error, never a
//! panic.

use crate::frame::{ErrorCode, ErrorInfo};
use incprof_collect::SampleSeries;
use incprof_core::online::{OnlineConfig, OnlineObservation, OnlinePhaseDetector};
use incprof_core::{source_context_json, AnalysisCache, PhaseDetector, SourceGraph};
use incprof_profile::{FlatProfile, FunctionTable, GmonData, ProfileSnapshot};
use incprof_store::{LogReplay, SessionStore, Store};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Lock a mutex, continuing through poisoning: registry state is plain
/// data and every mutation is small and panic-free, so a poisoned lock
/// only means a *peer* thread died mid-request.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Result of offering a snapshot to a session's ingest queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueue {
    /// The snapshot was queued.
    Accepted,
    /// The bounded queue is full; the client must retry later.
    Busy,
    /// The snapshot is a retransmission of the most recently acked
    /// sample (a client or router retrying after a lost reply): the
    /// caller should answer with [`Session::last_ack`] instead of
    /// ingesting it again.
    Duplicate,
}

/// One processed snapshot: its sample index plus the online detector's
/// observation for the interval it completed.
#[derive(Debug, Clone, Copy)]
pub struct IngestAck {
    /// Sample index of the snapshot.
    pub sample_index: u64,
    /// The incremental detector's verdict.
    pub observation: OnlineObservation,
}

/// What a report query should return.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportMode {
    /// Session metadata + online timeline + offline analysis.
    Full,
    /// Exactly the offline `PhaseAnalysis` JSON, nothing wrapped around
    /// it — the payload the determinism bridge compares bitwise.
    AnalysisOnly,
}

/// A pending, not-yet-detected snapshot.
struct Pending {
    gmon: GmonData,
    enqueued_at: Instant,
}

/// One logical profiled run streaming into the server.
pub struct Session {
    id: u64,
    series: SampleSeries,
    prev_flat: FlatProfile,
    table: FunctionTable,
    online: OnlinePhaseDetector,
    pending: VecDeque<Pending>,
    max_pending: usize,
    /// A snapshot whose delta failed (regressing counters) poisons the
    /// tail of the stream; the prefix stays queryable.
    fault: Option<String>,
    /// Incremental analysis state, reused across report queries. `None`
    /// when the daemon runs with `--no-analysis-cache`, in which case
    /// every query recomputes from scratch (the pre-cache behavior).
    cache: Option<AnalysisCache>,
    /// When the session last saw a frame (`None` until the first one).
    /// Stamped from caller-provided instants so this module stays free
    /// of direct clock reads.
    last_activity: Option<Instant>,
    /// The ack produced for the most recently drained snapshot. Kept so
    /// an at-least-once retransmission (client reconnect, router
    /// failover) of that snapshot can be answered with the identical
    /// ack instead of an `OutOfOrder` error. Rebuilt deterministically
    /// on rehydration because replay runs the same detector over the
    /// same log.
    last_ack: Option<IngestAck>,
    /// The next expected `sample_index`. Tracked explicitly rather than
    /// derived from `series.len()` because tiered retention can trim old
    /// snapshots out of the series without resetting the stream's index
    /// space.
    next_index: u64,
    /// Durable backing for this session's snapshot log and checkpoint.
    /// `None` when the daemon runs memory-only, or after an append error
    /// dropped persistence for this session (the stream continues in
    /// memory; the divergent log must not accept further records).
    persist: Option<SessionStore>,
    /// Set when the registry evicts this object to disk while a worker
    /// still holds its `Arc`: the worker must re-fetch (and rehydrate)
    /// instead of mutating a session the registry no longer owns.
    evicted: bool,
    /// The workspace's static call graph (from `incprof-lint`'s source
    /// analysis), joined against phases in Full reports. Empty when the
    /// daemon starts without one — reports then carry empty contexts.
    source_graph: Arc<SourceGraph>,
}

/// One session's vitals, snapshotted for the admin scrape and
/// `incprof top`.
#[derive(Debug, Clone, Copy)]
pub struct SessionStats {
    /// Session id.
    pub id: u64,
    /// Snapshots fully ingested.
    pub snapshots: u64,
    /// Frames waiting in the pending queue.
    pub pending: u64,
    /// Phases the online detector has discovered so far.
    pub phases: u64,
    /// Analysis-cache memo hits (0 when the cache is disabled).
    pub cache_hits: u64,
    /// Analysis-cache memo misses (0 when the cache is disabled).
    pub cache_misses: u64,
    /// Whether a bad delta has faulted the stream's tail.
    pub faulted: bool,
    /// Nanoseconds since the last frame (`None` before any activity).
    pub idle_ns: Option<u64>,
}

impl Session {
    fn new(id: u64, online: OnlineConfig, max_pending: usize, analysis_cache: bool) -> Session {
        Session {
            id,
            series: SampleSeries::new(),
            prev_flat: FlatProfile::new(),
            table: FunctionTable::new(),
            online: OnlinePhaseDetector::new(online),
            pending: VecDeque::new(),
            max_pending,
            fault: None,
            cache: analysis_cache.then(AnalysisCache::new),
            last_activity: None,
            last_ack: None,
            next_index: 0,
            persist: None,
            evicted: false,
            source_graph: Arc::new(SourceGraph::default()),
        }
    }

    /// Rebuild a session from its durable state: replay every retained
    /// snapshot through a fresh online detector (exactly the drain path,
    /// so the rebuilt timeline matches the live one), then adopt the
    /// analysis checkpoint *iff* it provably covers a prefix of the
    /// rebuilt series — otherwise the checkpoint is discarded and the
    /// first query recomputes cold, which yields the same bytes.
    fn rehydrate(
        id: u64,
        online: OnlineConfig,
        max_pending: usize,
        analysis_cache: bool,
        store: SessionStore,
        replay: LogReplay,
        checkpoint: Option<Vec<u8>>,
    ) -> Session {
        let mut s = Session::new(id, online, max_pending, analysis_cache);
        for gmon in &replay.snapshots {
            let interval = match gmon.flat.delta(&s.prev_flat) {
                Ok(interval) => interval,
                Err(e) => {
                    // The log only ever holds snapshots that delta'd
                    // cleanly when appended, so this means on-disk
                    // corruption past the frame CRC; keep the good
                    // prefix and fault the tail, as live ingest would.
                    s.fault = Some(format!("log replay: {e}"));
                    break;
                }
            };
            let observation = s.online.observe(&interval);
            s.prev_flat = gmon.flat.clone();
            s.table = gmon.functions.clone();
            // Replay is deterministic, so the rebuilt ack for the final
            // retained snapshot is bitwise the one the previous owner
            // sent — a failover retransmission gets the identical reply.
            s.last_ack = Some(IngestAck {
                sample_index: gmon.sample_index,
                observation,
            });
            s.next_index = gmon.sample_index + 1;
            s.series
                .append_monotonic(ProfileSnapshot::from_gmon(gmon))
                // lint: allow(P01, SnapshotLog::open validated strictly increasing indices; regression here is log-layer corruption and must abort loudly)
                .expect("snapshot log replay yields strictly increasing indices");
        }
        if let (Some(blob), Some(slot)) = (checkpoint, s.cache.as_mut()) {
            match AnalysisCache::decode_state(&blob) {
                Some(cache) if checkpoint_covers(&cache, &s.series) => *slot = cache,
                _ => {
                    incprof_obs::counter(incprof_obs::names::STORE_CHECKPOINTS_REJECTED).inc();
                    incprof_obs::warn!(
                        "session {id}: discarding analysis checkpoint (stale or undecodable); first query replays cold"
                    );
                }
            }
        }
        s.persist = Some(store);
        s
    }

    /// The session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Snapshots fully ingested (excludes queued ones).
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when nothing has been ingested or queued.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty() && self.pending.is_empty()
    }

    /// Offer a decoded snapshot. Enforces sample-index ordering and the
    /// queue bound; never grows memory past `max_pending` frames.
    pub fn enqueue(&mut self, gmon: GmonData, enqueued_at: Instant) -> Result<Enqueue, ErrorInfo> {
        if let Some(why) = &self.fault {
            return Err(ErrorInfo::new(
                ErrorCode::BadPayload,
                format!("session {} is faulted: {why}", self.id),
            ));
        }
        let expected = self.next_index + self.pending.len() as u64;
        if gmon.sample_index != expected {
            // At-least-once delivery: a client whose connection died
            // between our ack and its read retransmits the same
            // snapshot. Recognize exactly the most recently acked index
            // (nothing queued behind it) and let the caller replay the
            // remembered ack instead of erroring the stream.
            if self.pending.is_empty()
                && self
                    .last_ack
                    .is_some_and(|a| a.sample_index == gmon.sample_index)
            {
                self.last_activity = Some(enqueued_at);
                return Ok(Enqueue::Duplicate);
            }
            return Err(ErrorInfo::new(
                ErrorCode::OutOfOrder,
                format!(
                    "expected sample index {expected}, got {}",
                    gmon.sample_index
                ),
            ));
        }
        if self.pending.len() >= self.max_pending {
            return Ok(Enqueue::Busy);
        }
        self.last_activity = Some(enqueued_at);
        self.pending.push_back(Pending { gmon, enqueued_at });
        Ok(Enqueue::Accepted)
    }

    /// The ack produced for the most recently drained snapshot, if any.
    /// This is what answers an [`Enqueue::Duplicate`] retransmission.
    pub fn last_ack(&self) -> Option<IngestAck> {
        self.last_ack
    }

    /// Record non-ingest activity (e.g. a report query) at `now`, for
    /// the idle-age gauge.
    pub fn touch(&mut self, now: Instant) {
        self.last_activity = Some(now);
    }

    /// Drain the pending queue through the incremental detector,
    /// returning one ack per processed snapshot. Records the
    /// ingest-to-detect latency of every drained frame.
    pub fn drain(&mut self) -> Result<Vec<IngestAck>, ErrorInfo> {
        self.drain_traced(false)
    }

    /// [`Session::drain`], optionally wrapping each detector step in a
    /// trace-inherited span. `traced` is only true while the worker
    /// holds a traced root span open, so untraced ingest records no
    /// spans at all.
    pub fn drain_traced(&mut self, traced: bool) -> Result<Vec<IngestAck>, ErrorInfo> {
        // lint: allow(A01, one ack buffer per drain, sized by the bounded pending queue; acks are returned to the caller so the buffer cannot be reused)
        let mut acks = Vec::with_capacity(self.pending.len());
        while let Some(p) = self.pending.pop_front() {
            let interval = match p.gmon.flat.delta(&self.prev_flat) {
                Ok(interval) => interval,
                Err(e) => {
                    let why = e.to_string();
                    // Poison the tail: later snapshots would delta
                    // against state the stream no longer has.
                    self.pending.clear();
                    self.fault = Some(why.clone());
                    incprof_obs::recorder().record(
                        incprof_obs::EventKind::SessionFault,
                        self.id,
                        p.gmon.sample_index,
                    );
                    return Err(ErrorInfo::new(
                        ErrorCode::BadPayload,
                        format!("snapshot {}: {why}", p.gmon.sample_index),
                    ));
                }
            };
            let observation = {
                let _obs_span =
                    traced.then(|| incprof_obs::span(incprof_obs::names::SERVE_TRACE_OBSERVE));
                self.online.observe(&interval)
            };
            self.prev_flat = p.gmon.flat.clone();
            self.table = p.gmon.functions.clone();
            let sample_index = p.gmon.sample_index;
            self.next_index = sample_index + 1;
            self.series
                .append_monotonic(ProfileSnapshot::from_gmon(&p.gmon))
                // lint: allow(P01, enqueue rejects any index at or below next_index-1, so drained indices strictly increase)
                .expect("enqueue enforces strictly increasing sample indices");
            self.persist_snapshot(sample_index, &p.gmon);
            incprof_obs::histogram(incprof_obs::names::SERVE_INGEST_DETECT_LATENCY_NS)
                .record(p.enqueued_at.elapsed().as_nanos() as u64);
            let ack = IngestAck {
                sample_index,
                observation,
            };
            self.last_ack = Some(ack);
            acks.push(ack);
        }
        if !acks.is_empty() {
            incprof_obs::recorder().record(
                incprof_obs::EventKind::DrainStep,
                self.id,
                acks.len() as u64,
            );
        }
        Ok(acks)
    }

    /// Snapshot this session's vitals; ages are measured against `now`.
    pub fn stats(&self, now: Instant) -> SessionStats {
        let (cache_hits, cache_misses) = self.cache.as_ref().map(|c| c.stats()).unwrap_or((0, 0));
        SessionStats {
            id: self.id,
            snapshots: self.series.len() as u64,
            pending: self.pending.len() as u64,
            phases: self.online.n_phases() as u64,
            cache_hits,
            cache_misses,
            faulted: self.fault.is_some(),
            idle_ns: self
                .last_activity
                .map(|t| now.saturating_duration_since(t).as_nanos() as u64),
        }
    }

    /// Render the session's phase report. Drains any queued snapshots
    /// first so the report reflects everything acknowledged so far.
    pub fn report_json(&mut self, detector: &PhaseDetector, mode: ReportMode) -> String {
        // A drain failure leaves the fault recorded; report the prefix.
        let _ = self.drain();
        let (analysis_json, source_context) = if self.series.is_empty() {
            ("null".to_string(), "[]".to_string())
        } else {
            // The cache path returns byte-identical analyses (pinned by
            // tests/cache_determinism.rs) while doing O(new data) work
            // per query instead of O(n²) for the whole series.
            let analysis = match self.cache.as_mut() {
                Some(cache) => cache.analyze(detector, &self.series),
                None => detector.detect_series(&self.series),
            };
            match analysis {
                Ok(analysis) => {
                    let context =
                        source_context_json(&analysis, |f| self.table.name(f), &self.source_graph);
                    let json = serde_json::to_string(&analysis)
                        .unwrap_or_else(|e| json_error_object("serialize failed", &e.to_string()));
                    (json, context)
                }
                Err(e) => (
                    json_error_object("analysis failed", &e.to_string()),
                    "[]".to_string(),
                ),
            }
        };
        match mode {
            ReportMode::AnalysisOnly => analysis_json,
            ReportMode::Full => {
                let mut out = String::with_capacity(analysis_json.len() + 256);
                out.push_str(&format!(
                    "{{\"session_id\":{},\"snapshots\":{},",
                    self.id,
                    self.series.len()
                ));
                out.push_str(&format!(
                    "\"online\":{{\"phases\":{},\"assignments\":{},\"transitions\":{},\"phase_sizes\":{},\"capped\":{}}},",
                    self.online.n_phases(),
                    json_usize_array(self.online.assignments()),
                    json_usize_array(self.online.transitions()),
                    json_usize_array(self.online.phase_sizes()),
                    json_usize_array(self.online.capped_intervals()),
                ));
                if let Some(why) = &self.fault {
                    out.push_str(&format!("\"fault\":{},", json_string(why)));
                }
                out.push_str(&format!("\"source_context\":{source_context},"));
                out.push_str(&format!("\"analysis\":{analysis_json}}}"));
                out
            }
        }
    }

    /// The latest function table streamed into the session.
    pub fn table(&self) -> &FunctionTable {
        &self.table
    }

    /// The accumulated cumulative series (mainly for tests).
    pub fn series(&self) -> &SampleSeries {
        &self.series
    }

    /// Whether the registry evicted this object while a worker still
    /// held its `Arc`. A true value means: drop this handle and re-fetch
    /// from the registry, which rehydrates the durable state.
    pub fn is_evicted(&self) -> bool {
        self.evicted
    }

    /// True when nothing is waiting in the ingest queue (an eviction
    /// precondition: queued frames exist only in memory).
    pub(crate) fn pending_is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Whether this session still has healthy durable backing.
    pub(crate) fn persist_healthy(&self) -> bool {
        self.persist.is_some()
    }

    /// Append one drained snapshot to the durable log, mirroring any
    /// retention drops onto the in-memory series so a later rehydration
    /// (which only sees retained records) rebuilds exactly this state.
    /// An I/O error drops persistence for the session — the divergent
    /// log must not accept further records — but ingest continues in
    /// memory.
    fn persist_snapshot(&mut self, sample_index: u64, gmon: &GmonData) {
        let Some(store) = self.persist.as_mut() else {
            return;
        };
        match store.append_snapshot(sample_index, &gmon.encode()) {
            Ok(outcome) => {
                if !outcome.dropped.is_empty() {
                    self.series.remove_sample_indices(&outcome.dropped);
                }
            }
            Err(e) => {
                incprof_obs::counter(incprof_obs::names::STORE_APPEND_ERRORS).inc();
                incprof_obs::warn!(
                    "session {}: snapshot log append failed ({e}); continuing memory-only",
                    self.id
                );
                self.persist = None;
            }
        }
    }

    /// Write an analysis checkpoint if the append cadence says one is
    /// due. Called after drains and queries; cheap no-op otherwise.
    pub fn maybe_checkpoint(&mut self) {
        if self.persist.as_ref().is_some_and(|p| p.checkpoint_due()) {
            self.force_checkpoint();
        }
    }

    /// Write an analysis checkpoint now (eviction / graceful shutdown).
    /// Checkpoints are advisory, so a write failure only warns: the
    /// snapshot log remains the source of truth.
    pub fn force_checkpoint(&mut self) {
        let (Some(store), Some(cache)) = (self.persist.as_mut(), self.cache.as_ref()) else {
            return;
        };
        if let Err(e) = store.write_checkpoint(cache.encode_state()) {
            incprof_obs::warn!("session {}: checkpoint write failed: {e}", self.id);
        }
    }

    /// Mark this object as evicted and release its durable handles so
    /// the rehydrated successor owns the log exclusively.
    fn evict(&mut self) {
        self.evicted = true;
        self.persist = None;
    }
}

/// Whether a decoded checkpoint provably covers a prefix of `series`.
///
/// The cached deltas span positions `0..covered_len()`; the snapshot at
/// the frontier must match the checkpoint's recorded identity. Because
/// sample indices are strictly increasing and order-preserving, any
/// retention trim inside the covered prefix after the checkpoint was
/// written shifts a *different* snapshot into the frontier position, so
/// this single comparison detects every misalignment.
fn checkpoint_covers(cache: &AnalysisCache, series: &SampleSeries) -> bool {
    match cache.covered_len() {
        0 => true,
        c => series
            .snapshots()
            .get(c - 1)
            .is_some_and(|s| cache.covered() == Some((s.sample_index, s.timestamp_ns))),
    }
}

fn json_usize_array(values: &[usize]) -> String {
    let mut out = String::with_capacity(values.len() * 3 + 2);
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
    out
}

fn json_string(s: &str) -> String {
    serde_json::to_string(&s.to_string()).unwrap_or_else(|_| "\"<unrepresentable>\"".to_string())
}

fn json_error_object(what: &str, detail: &str) -> String {
    format!(
        "{{\"analysis_error\":{}}}",
        json_string(&format!("{what}: {detail}"))
    )
}

/// Shared, concurrency-safe session table.
pub struct Registry {
    inner: Mutex<Inner>,
    online: OnlineConfig,
    max_sessions: usize,
    max_pending: usize,
    analysis_cache: bool,
    /// Durable session storage; `None` runs memory-only (the pre-store
    /// behavior, and still the default).
    store: Option<Store>,
    /// Evict idle sessions to disk once more than this many are live
    /// (0 = never evict). Only meaningful with a store.
    max_live: usize,
    /// Static call graph handed to every session for Full-report
    /// source-context joins. Empty unless [`Registry::with_source_graph`]
    /// installed one at startup.
    source_graph: Arc<SourceGraph>,
}

struct Inner {
    sessions: BTreeMap<u64, Arc<Mutex<Session>>>,
    next_id: u64,
}

impl Registry {
    /// New registry with the given limits. `analysis_cache` gives every
    /// session an incremental [`AnalysisCache`] for report queries;
    /// `false` restores recompute-per-query (the `--no-analysis-cache`
    /// escape hatch).
    pub fn new(
        online: OnlineConfig,
        max_sessions: usize,
        max_pending: usize,
        analysis_cache: bool,
    ) -> Registry {
        Registry {
            inner: Mutex::new(Inner {
                sessions: BTreeMap::new(),
                next_id: 1,
            }),
            online,
            max_sessions,
            max_pending,
            analysis_cache,
            store: None,
            max_live: 0,
            source_graph: Arc::new(SourceGraph::default()),
        }
    }

    /// Install the workspace's static call graph (built once at daemon
    /// startup from `incprof-lint`'s source analysis). Every session —
    /// new, recovered, or rehydrated — joins it against detected phases
    /// in Full reports' `source_context` section.
    pub fn with_source_graph(mut self, graph: SourceGraph) -> Registry {
        self.source_graph = Arc::new(graph);
        self
    }

    /// Attach durable session storage: every new session gets an
    /// append-only snapshot log under the store's root, closed-but-not-
    /// deleted sessions rehydrate transparently on their next frame, and
    /// (when `max_live > 0`) idle sessions are evicted to disk once more
    /// than `max_live` are live.
    pub fn with_store(mut self, store: Store, max_live: usize) -> Registry {
        self.store = Some(store);
        self.max_live = max_live;
        self
    }

    /// Scan the store for sessions persisted by a previous run and move
    /// the id allocator past them, so new opens never collide with a
    /// recoverable log. Sessions stay on disk until their first touch
    /// (lazy rehydration). Returns the recovered ids.
    pub fn recover(&self) -> Vec<u64> {
        let Some(store) = &self.store else {
            return Vec::new();
        };
        let ids = match store.scan() {
            Ok(ids) => ids,
            Err(e) => {
                incprof_obs::warn!("store scan failed during recovery: {e}");
                return Vec::new();
            }
        };
        if let Some(&max) = ids.iter().max() {
            let mut inner = lock(&self.inner);
            inner.next_id = inner.next_id.max(max + 1);
        }
        ids
    }

    /// Open a new session, enforcing the session cap.
    pub fn open(&self) -> Result<(u64, Arc<Mutex<Session>>), ErrorInfo> {
        let mut inner = lock(&self.inner);
        if inner.sessions.len() >= self.max_sessions {
            return Err(ErrorInfo::new(
                ErrorCode::SessionLimit,
                format!("session table full ({} sessions)", self.max_sessions),
            ));
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let mut session = Session::new(
            id,
            self.online.clone(),
            self.max_pending,
            self.analysis_cache,
        );
        session.source_graph = Arc::clone(&self.source_graph);
        if let Some(store) = &self.store {
            match store.create_session(id) {
                Ok(persist) => session.persist = Some(persist),
                Err(e) => {
                    incprof_obs::counter(incprof_obs::names::STORE_APPEND_ERRORS).inc();
                    incprof_obs::warn!(
                        "session {id}: could not create snapshot log ({e}); memory-only"
                    );
                }
            }
        }
        let session = Arc::new(Mutex::new(session));
        inner.sessions.insert(id, Arc::clone(&session));
        incprof_obs::counter(incprof_obs::names::SERVE_SESSIONS_OPENED).inc();
        incprof_obs::gauge(incprof_obs::names::SERVE_SESSIONS_ACTIVE)
            .set(inner.sessions.len() as u64);
        Ok((id, session))
    }

    /// Open (or adopt) a session under a caller-chosen id. This is the
    /// router handoff path: a shard router allocates cluster-wide ids
    /// and every backend must accept "open session N" idempotently —
    /// if `id` is already live the existing session is returned, if its
    /// durable state exists in the shared store it is rehydrated, and
    /// otherwise a fresh session is created under exactly that id. The
    /// local allocator always advances past `id` so plain opens never
    /// collide with adopted ones.
    pub fn open_with_id(&self, id: u64) -> Result<Arc<Mutex<Session>>, ErrorInfo> {
        if id == 0 {
            return Err(ErrorInfo::new(
                ErrorCode::BadPayload,
                "session id 0 is reserved for allocation".to_string(),
            ));
        }
        {
            let mut inner = lock(&self.inner);
            inner.next_id = inner.next_id.max(id + 1);
            if let Some(s) = inner.sessions.get(&id) {
                return Ok(Arc::clone(s));
            }
            if inner.sessions.len() >= self.max_sessions {
                return Err(ErrorInfo::new(
                    ErrorCode::SessionLimit,
                    format!("session table full ({} sessions)", self.max_sessions),
                ));
            }
        }
        // A failover re-open finds the previous owner's log in the
        // shared store and replays it (outside the registry lock).
        if self.store.as_ref().is_some_and(|s| s.has_session(id)) {
            if let Some(s) = self.get(id) {
                return Ok(s);
            }
        }
        let mut session = Session::new(
            id,
            self.online.clone(),
            self.max_pending,
            self.analysis_cache,
        );
        session.source_graph = Arc::clone(&self.source_graph);
        if let Some(store) = &self.store {
            match store.create_session(id) {
                Ok(persist) => session.persist = Some(persist),
                Err(e) => {
                    incprof_obs::counter(incprof_obs::names::STORE_APPEND_ERRORS).inc();
                    incprof_obs::warn!(
                        "session {id}: could not create snapshot log ({e}); memory-only"
                    );
                }
            }
        }
        let session = Arc::new(Mutex::new(session));
        let mut inner = lock(&self.inner);
        if let Some(existing) = inner.sessions.get(&id) {
            // Another connection adopted the id first; its instance wins.
            return Ok(Arc::clone(existing));
        }
        inner.sessions.insert(id, Arc::clone(&session));
        incprof_obs::counter(incprof_obs::names::SERVE_SESSIONS_OPENED).inc();
        incprof_obs::gauge(incprof_obs::names::SERVE_SESSIONS_ACTIVE)
            .set(inner.sessions.len() as u64);
        Ok(session)
    }

    /// Look up a session: live ones come straight from the table, and
    /// evicted or recovered ones are rehydrated from the store
    /// transparently.
    pub fn get(&self, id: u64) -> Option<Arc<Mutex<Session>>> {
        if let Some(s) = lock(&self.inner).sessions.get(&id).map(Arc::clone) {
            return Some(s);
        }
        self.rehydrate(id)
    }

    /// Load a session from its on-disk log (and checkpoint, if valid)
    /// and publish it in the table. Disk I/O and replay run outside the
    /// registry lock; if another thread won the race to publish the same
    /// id, its instance wins and ours is discarded.
    fn rehydrate(&self, id: u64) -> Option<Arc<Mutex<Session>>> {
        let store = self.store.as_ref()?;
        let (persist, replay, checkpoint) = match store.open_session(id) {
            Ok(found) => found?,
            Err(e) => {
                incprof_obs::warn!("session {id}: rehydration failed ({e})");
                return None;
            }
        };
        let mut rebuilt = Session::rehydrate(
            id,
            self.online.clone(),
            self.max_pending,
            self.analysis_cache,
            persist,
            replay,
            checkpoint,
        );
        rebuilt.source_graph = Arc::clone(&self.source_graph);
        let session = Arc::new(Mutex::new(rebuilt));
        let mut inner = lock(&self.inner);
        if let Some(existing) = inner.sessions.get(&id) {
            return Some(Arc::clone(existing));
        }
        // Rehydration may transiently exceed `max_sessions`; the cap
        // guards new opens, and eviction (when enabled) restores the
        // live bound on the next sweep.
        inner.sessions.insert(id, Arc::clone(&session));
        incprof_obs::gauge(incprof_obs::names::SERVE_SESSIONS_ACTIVE)
            .set(inner.sessions.len() as u64);
        Some(session)
    }

    /// Remove a session, returning it for a final drain. With a store
    /// attached this is a *destructive* close: the session's durable
    /// state is deleted too (its persistence handle is dropped first, so
    /// the final drain stays memory-only).
    pub fn close(&self, id: u64) -> Option<Arc<Mutex<Session>>> {
        let removed = {
            let mut inner = lock(&self.inner);
            let removed = inner.sessions.remove(&id);
            if removed.is_some() {
                incprof_obs::counter(incprof_obs::names::SERVE_SESSIONS_CLOSED).inc();
                incprof_obs::gauge(incprof_obs::names::SERVE_SESSIONS_ACTIVE)
                    .set(inner.sessions.len() as u64);
            }
            removed
        };
        if let Some(s) = &removed {
            lock(s).persist = None;
            if let Some(store) = &self.store {
                if let Err(e) = store.remove_session(id) {
                    incprof_obs::warn!("session {id}: could not delete session dir: {e}");
                }
            }
        }
        removed
    }

    /// Delete a session that exists only on disk (not live). Returns
    /// whether anything was removed. The live path goes through
    /// [`Registry::close`].
    pub fn purge(&self, id: u64) -> bool {
        let Some(store) = &self.store else {
            return false;
        };
        if lock(&self.inner).sessions.contains_key(&id) {
            return false;
        }
        match store.remove_session(id) {
            Ok(removed) => {
                if removed {
                    incprof_obs::counter(incprof_obs::names::SERVE_SESSIONS_CLOSED).inc();
                }
                removed
            }
            Err(e) => {
                incprof_obs::warn!("session {id}: could not delete session dir: {e}");
                false
            }
        }
    }

    /// Evict the most idle live sessions to disk until at most
    /// `max_live` remain. Only quiescent sessions qualify: the session
    /// lock must be free, the pending queue empty, and durable backing
    /// healthy (evicting an unpersisted session would lose data). Each
    /// eviction writes a final checkpoint, marks the object evicted (a
    /// worker still holding its `Arc` re-fetches and rehydrates), and
    /// drops it from the table. Returns how many sessions were evicted.
    pub fn maybe_evict(&self, now: Instant) -> usize {
        if self.store.is_none() || self.max_live == 0 {
            return 0;
        }
        let candidates: Vec<(u64, Arc<Mutex<Session>>)> = {
            let inner = lock(&self.inner);
            if inner.sessions.len() <= self.max_live {
                return 0;
            }
            inner
                .sessions
                .iter()
                .map(|(&id, s)| (id, Arc::clone(s)))
                .collect()
        };
        let excess = candidates.len() - self.max_live;
        // Rank by idleness without blocking on busy sessions.
        let mut idle: Vec<(u64, u64)> = Vec::new();
        for (id, s) in &candidates {
            if let Ok(sess) = s.try_lock() {
                if sess.pending_is_empty() && sess.persist_healthy() && !sess.is_evicted() {
                    idle.push((sess.stats(now).idle_ns.unwrap_or(u64::MAX), *id));
                }
            }
        }
        idle.sort_unstable_by_key(|&(idle_ns, _)| std::cmp::Reverse(idle_ns));
        let mut evicted = 0;
        for &(_, id) in idle.iter().take(excess) {
            let Some(s) = lock(&self.inner).sessions.get(&id).map(Arc::clone) else {
                continue;
            };
            // Re-check quiescence under the lock; skip if a worker got in.
            let Ok(mut sess) = s.try_lock() else { continue };
            if !sess.pending_is_empty() || !sess.persist_healthy() {
                continue;
            }
            sess.force_checkpoint();
            sess.evict();
            drop(sess);
            let mut inner = lock(&self.inner);
            inner.sessions.remove(&id);
            incprof_obs::gauge(incprof_obs::names::SERVE_SESSIONS_ACTIVE)
                .set(inner.sessions.len() as u64);
            incprof_obs::counter(incprof_obs::names::STORE_EVICTIONS).inc();
            evicted += 1;
        }
        evicted
    }

    /// Number of live sessions.
    pub fn active(&self) -> usize {
        lock(&self.inner).sessions.len()
    }

    /// Snapshot every live session's vitals (admin scrape), in id
    /// order. Each session is locked briefly; the registry lock is not
    /// held while session locks are taken.
    pub fn stats(&self, now: Instant) -> Vec<SessionStats> {
        let sessions: Vec<Arc<Mutex<Session>>> = lock(&self.inner)
            .sessions
            .values()
            .map(Arc::clone)
            .collect();
        sessions.iter().map(|s| lock(s).stats(now)).collect()
    }

    /// Drain every session's pending queue (graceful shutdown), then
    /// write a final analysis checkpoint for each persisted session so
    /// the next run rehydrates warm.
    pub fn drain_all(&self) {
        let sessions: Vec<Arc<Mutex<Session>>> = lock(&self.inner)
            .sessions
            .values()
            .map(Arc::clone)
            .collect();
        for s in sessions {
            let mut s = lock(&s);
            let _ = s.drain();
            s.force_checkpoint();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incprof_profile::FunctionStats;

    fn gmon(idx: u64, self_ns: u64) -> GmonData {
        let mut table = FunctionTable::new();
        let id = table.register("f");
        let mut flat = FlatProfile::new();
        flat.set(
            id,
            FunctionStats {
                self_time: self_ns,
                calls: idx + 1,
                child_time: 0,
            },
        );
        GmonData {
            sample_index: idx,
            timestamp_ns: idx * 1_000_000_000,
            functions: table,
            flat,
            callgraph: Default::default(),
        }
    }

    fn registry() -> Registry {
        Registry::new(OnlineConfig::default(), 4, 2, true)
    }

    #[test]
    fn ordered_ingest_accumulates_and_acks() {
        let r = registry();
        let (id, s) = r.open().unwrap();
        let mut s = lock(&s);
        assert_eq!(
            s.enqueue(gmon(0, 10), Instant::now()),
            Ok(Enqueue::Accepted)
        );
        let acks = s.drain().unwrap();
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].sample_index, 0);
        assert_eq!(acks[0].observation.phase, 0);
        assert!(acks[0].observation.new_phase);
        assert_eq!(s.len(), 1);
        assert_eq!(s.id(), id);
    }

    #[test]
    fn out_of_order_is_typed_error_not_panic() {
        let r = registry();
        let (_, s) = r.open().unwrap();
        let mut s = lock(&s);
        let err = s.enqueue(gmon(3, 10), Instant::now()).unwrap_err();
        assert_eq!(err.code, ErrorCode::OutOfOrder);
        assert!(s.is_empty());
    }

    #[test]
    fn queue_bound_reports_busy() {
        let r = registry();
        let (_, s) = r.open().unwrap();
        let mut s = lock(&s);
        assert_eq!(
            s.enqueue(gmon(0, 10), Instant::now()),
            Ok(Enqueue::Accepted)
        );
        assert_eq!(
            s.enqueue(gmon(1, 20), Instant::now()),
            Ok(Enqueue::Accepted)
        );
        // max_pending = 2: the third offer must not buffer.
        assert_eq!(s.enqueue(gmon(2, 30), Instant::now()), Ok(Enqueue::Busy));
        s.drain().unwrap();
        assert_eq!(
            s.enqueue(gmon(2, 30), Instant::now()),
            Ok(Enqueue::Accepted)
        );
    }

    #[test]
    fn regressing_counters_fault_the_session() {
        let r = registry();
        let (_, s) = r.open().unwrap();
        let mut s = lock(&s);
        s.enqueue(gmon(0, 100), Instant::now()).unwrap();
        s.drain().unwrap();
        // Cumulative self-time goes *down*: delta must fail.
        s.enqueue(gmon(1, 50), Instant::now()).unwrap();
        let err = s.drain().unwrap_err();
        assert_eq!(err.code, ErrorCode::BadPayload);
        // The fault sticks; the ingested prefix remains reportable.
        let err = s.enqueue(gmon(2, 500), Instant::now()).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadPayload);
        let report = s.report_json(&PhaseDetector::default(), ReportMode::Full);
        assert!(report.contains("\"fault\":"), "{report}");
        assert!(report.contains("\"snapshots\":1"), "{report}");
    }

    #[test]
    fn retransmitted_last_snapshot_is_acked_as_duplicate() {
        let r = registry();
        let (_, s) = r.open().unwrap();
        let mut s = lock(&s);
        s.enqueue(gmon(0, 10), Instant::now()).unwrap();
        let acks = s.drain().unwrap();
        // The same snapshot again (lost-reply retransmission) is not an
        // error and does not re-ingest.
        assert_eq!(
            s.enqueue(gmon(0, 10), Instant::now()),
            Ok(Enqueue::Duplicate)
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s.last_ack().unwrap().sample_index, acks[0].sample_index);
        // Anything older than the most recent ack is still a protocol
        // error.
        s.enqueue(gmon(1, 20), Instant::now()).unwrap();
        s.drain().unwrap();
        let err = s.enqueue(gmon(0, 10), Instant::now()).unwrap_err();
        assert_eq!(err.code, ErrorCode::OutOfOrder);
    }

    #[test]
    fn open_with_id_is_idempotent_and_advances_allocator() {
        let r = registry();
        let s = r.open_with_id(7).unwrap();
        {
            let mut s = lock(&s);
            s.enqueue(gmon(0, 10), Instant::now()).unwrap();
            s.drain().unwrap();
        }
        // Adopting a live id returns the existing session, data intact.
        let again = r.open_with_id(7).unwrap();
        assert_eq!(lock(&again).len(), 1);
        // Plain opens never reissue an adopted id.
        let (next, _) = r.open().unwrap();
        assert!(next > 7, "allocator must advance past adopted id 7");
        // Id 0 is the allocation sentinel and cannot be adopted.
        assert!(r.open_with_id(0).is_err());
    }

    #[test]
    fn session_cap_is_enforced() {
        let r = registry();
        let mut held = Vec::new();
        for _ in 0..4 {
            held.push(r.open().unwrap());
        }
        let err = match r.open() {
            Ok(_) => panic!("cap should reject a fifth session"),
            Err(e) => e,
        };
        assert_eq!(err.code, ErrorCode::SessionLimit);
        // Closing frees a slot.
        r.close(held[0].0);
        assert!(r.open().is_ok());
    }

    #[test]
    fn close_removes_and_active_tracks() {
        let r = registry();
        let (a, _) = r.open().unwrap();
        let (b, _) = r.open().unwrap();
        assert_eq!(r.active(), 2);
        assert!(r.close(a).is_some());
        assert!(r.close(a).is_none(), "double close is a no-op");
        assert_eq!(r.active(), 1);
        assert!(r.get(a).is_none());
        assert!(r.get(b).is_some());
    }

    #[test]
    fn analysis_only_report_matches_offline_detector() {
        let r = registry();
        let (_, s) = r.open().unwrap();
        let mut s = lock(&s);
        for i in 0..6u64 {
            s.enqueue(gmon(i, (i + 1) * 1_000_000_000), Instant::now())
                .unwrap();
            s.drain().unwrap();
        }
        let detector = PhaseDetector::default();
        let offline = serde_json::to_string(&detector.detect_series(s.series()).unwrap()).unwrap();
        assert_eq!(s.report_json(&detector, ReportMode::AnalysisOnly), offline);
    }

    #[test]
    fn cached_and_uncached_reports_are_byte_identical() {
        let cached = registry();
        let uncached = Registry::new(OnlineConfig::default(), 4, 2, false);
        let (_, a) = cached.open().unwrap();
        let (_, b) = uncached.open().unwrap();
        let mut a = lock(&a);
        let mut b = lock(&b);
        let detector = PhaseDetector::default();
        for i in 0..6u64 {
            a.enqueue(gmon(i, (i + 1) * 1_000_000_000), Instant::now())
                .unwrap();
            b.enqueue(gmon(i, (i + 1) * 1_000_000_000), Instant::now())
                .unwrap();
            // Query after every push, and twice at the end, so the memo
            // path is exercised too.
            assert_eq!(
                a.report_json(&detector, ReportMode::AnalysisOnly),
                b.report_json(&detector, ReportMode::AnalysisOnly),
                "push {i}"
            );
        }
        assert_eq!(
            a.report_json(&detector, ReportMode::Full),
            b.report_json(&detector, ReportMode::Full)
        );
    }

    #[test]
    fn full_report_exposes_capped_intervals() {
        let r = registry();
        let (_, s) = r.open().unwrap();
        let mut s = lock(&s);
        s.enqueue(gmon(0, 1_000_000_000), Instant::now()).unwrap();
        s.drain().unwrap();
        let report = s.report_json(&PhaseDetector::default(), ReportMode::Full);
        assert!(report.contains("\"capped\":[]"), "{report}");
    }

    #[test]
    fn stats_track_queue_ingest_and_cache() {
        let r = registry();
        let (id, s) = r.open().unwrap();
        let mut s = lock(&s);
        let t0 = Instant::now();
        assert_eq!(s.stats(t0).idle_ns, None, "no activity yet");
        s.enqueue(gmon(0, 10), t0).unwrap();
        s.enqueue(gmon(1, 20), t0).unwrap();
        let st = s.stats(t0);
        assert_eq!((st.id, st.snapshots, st.pending), (id, 0, 2));
        assert_eq!(st.idle_ns, Some(0));
        s.drain().unwrap();
        s.report_json(&PhaseDetector::default(), ReportMode::AnalysisOnly);
        s.report_json(&PhaseDetector::default(), ReportMode::AnalysisOnly);
        let st = s.stats(t0);
        assert_eq!((st.snapshots, st.pending), (2, 0));
        assert_eq!(st.cache_misses, 1, "first query computes");
        assert_eq!(st.cache_hits, 1, "second query memo-hits");
        assert!(!st.faulted);
        drop(s);
        assert_eq!(r.stats(t0).len(), 1);
        assert_eq!(r.stats(t0)[0].id, id);
    }

    #[test]
    fn empty_session_reports_null_analysis() {
        let r = registry();
        let (_, s) = r.open().unwrap();
        let mut s = lock(&s);
        let detector = PhaseDetector::default();
        assert_eq!(s.report_json(&detector, ReportMode::AnalysisOnly), "null");
        let full = s.report_json(&detector, ReportMode::Full);
        assert!(full.contains("\"analysis\":null"), "{full}");
        assert!(full.contains("\"source_context\":[]"), "{full}");
    }

    #[test]
    fn full_report_joins_installed_source_graph() {
        let r = registry().with_source_graph(SourceGraph::new(vec![
            ("main".to_string(), "f".to_string(), true),
            ("main".to_string(), "other".to_string(), false),
        ]));
        let (_, s) = r.open().unwrap();
        let mut s = lock(&s);
        for i in 0..4 {
            s.enqueue(gmon(i, (i + 1) * 1_000_000_000), Instant::now())
                .unwrap();
            s.drain().unwrap();
        }
        let full = s.report_json(&PhaseDetector::default(), ReportMode::Full);
        // The streamed function "f" resolves against the static graph:
        // called by main, one confident arc deep, not on a cycle.
        assert!(
            full.contains("\"name\":\"f\",\"callers\":[\"main\"],\"depth\":1,\"cycle\":null"),
            "{full}"
        );
        // Without an installed graph the same session reports an empty
        // caller set for the same function.
        let bare = registry();
        let (_, s2) = bare.open().unwrap();
        let mut s2 = lock(&s2);
        for i in 0..4 {
            s2.enqueue(gmon(i, (i + 1) * 1_000_000_000), Instant::now())
                .unwrap();
            s2.drain().unwrap();
        }
        let plain = s2.report_json(&PhaseDetector::default(), ReportMode::Full);
        assert!(
            plain.contains("\"callers\":[],\"depth\":null,\"cycle\":null"),
            "{plain}"
        );
    }

    // --- durability ---

    use incprof_store::RetentionPolicy;

    fn durable(name: &str, policy: RetentionPolicy) -> (std::path::PathBuf, Store) {
        let root = std::env::temp_dir().join(format!("incprof_sess_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = Store::open(&root, policy, 4).unwrap();
        (root, store)
    }

    #[test]
    fn rehydrated_session_report_is_byte_identical() {
        let (root, store) = durable("rehydrate", RetentionPolicy::keep_all());
        let r = registry().with_store(store, 0);
        let (id, s) = r.open().unwrap();
        let detector = PhaseDetector::default();
        let baseline = {
            let mut s = lock(&s);
            for i in 0..6u64 {
                s.enqueue(gmon(i, (i + 1) * 1_000_000_000), Instant::now())
                    .unwrap();
                s.drain().unwrap();
            }
            s.report_json(&detector, ReportMode::Full)
        };
        drop(s);
        drop(r);
        // "Restart": a fresh registry over the same directory.
        let store = Store::open(&root, RetentionPolicy::keep_all(), 4).unwrap();
        let r2 = registry().with_store(store, 0);
        assert_eq!(r2.recover(), vec![id]);
        let s2 = r2.get(id).expect("recovered session is queryable");
        let mut s2 = lock(&s2);
        assert_eq!(s2.report_json(&detector, ReportMode::Full), baseline);
        drop(s2);
        // Recovered ids are not reissued to new sessions.
        let (next, _) = r2.open().unwrap();
        assert!(next > id, "next id {next} must advance past recovered {id}");
    }

    #[test]
    fn evicted_sessions_rehydrate_transparently() {
        let (_root, store) = durable("evict", RetentionPolicy::keep_all());
        let r = registry().with_store(store, 1);
        let (a, sa) = r.open().unwrap();
        let (b, sb) = r.open().unwrap();
        let detector = PhaseDetector::default();
        let baseline_a = {
            let mut s = lock(&sa);
            for i in 0..4u64 {
                s.enqueue(gmon(i, (i + 1) * 1_000_000_000), Instant::now())
                    .unwrap();
                s.drain().unwrap();
            }
            s.report_json(&detector, ReportMode::Full)
        };
        let baseline_b = {
            let mut s = lock(&sb);
            s.enqueue(gmon(0, 1_000_000_000), Instant::now()).unwrap();
            s.drain().unwrap();
            s.report_json(&detector, ReportMode::Full)
        };
        drop(sa);
        drop(sb);
        assert_eq!(r.maybe_evict(Instant::now()), 1);
        assert_eq!(r.active(), 1);
        // Whichever session was evicted comes back on demand,
        // byte-identical to its pre-eviction report.
        let sa = r.get(a).expect("session a reachable after eviction");
        assert_eq!(
            lock(&sa).report_json(&detector, ReportMode::Full),
            baseline_a
        );
        let sb = r.get(b).expect("session b reachable after eviction");
        assert_eq!(
            lock(&sb).report_json(&detector, ReportMode::Full),
            baseline_b
        );
    }

    #[test]
    fn failover_adopt_replays_log_and_answers_duplicate() {
        let (root, store) = durable("handoff", RetentionPolicy::keep_all());
        let r = registry().with_store(store, 0);
        let s = r.open_with_id(42).unwrap();
        let last_ack = {
            let mut s = lock(&s);
            for i in 0..3u64 {
                s.enqueue(gmon(i, (i + 1) * 1_000_000_000), Instant::now())
                    .unwrap();
                s.drain().unwrap();
            }
            s.last_ack().unwrap()
        };
        drop(s);
        drop(r);
        // "Failover": a different backend over the same store adopts
        // the id and replays the previous owner's log.
        let store = Store::open(&root, RetentionPolicy::keep_all(), 4).unwrap();
        let r2 = registry().with_store(store, 0);
        let s2 = r2.open_with_id(42).unwrap();
        let mut s2 = lock(&s2);
        assert_eq!(s2.len(), 3, "log replayed on adopt");
        // The router's retransmission of the in-flight snapshot gets
        // the same ack the dead backend would have sent.
        assert_eq!(
            s2.enqueue(gmon(2, 3_000_000_000), Instant::now()),
            Ok(Enqueue::Duplicate)
        );
        let replayed = s2.last_ack().unwrap();
        assert_eq!(replayed.sample_index, last_ack.sample_index);
        assert_eq!(replayed.observation.phase, last_ack.observation.phase);
        assert_eq!(
            replayed.observation.new_phase,
            last_ack.observation.new_phase
        );
    }

    #[test]
    fn sessions_with_pending_work_are_not_evicted() {
        let (_root, store) = durable("quiesce", RetentionPolicy::keep_all());
        let r = registry().with_store(store, 1);
        let (_a, sa) = r.open().unwrap();
        let (_b, sb) = r.open().unwrap();
        lock(&sa).enqueue(gmon(0, 10), Instant::now()).unwrap();
        lock(&sb).enqueue(gmon(0, 10), Instant::now()).unwrap();
        // Both sessions hold undrained pushes: neither may evict.
        assert_eq!(r.maybe_evict(Instant::now()), 0);
        assert_eq!(r.active(), 2);
        lock(&sa).drain().unwrap();
        lock(&sb).drain().unwrap();
        assert_eq!(r.maybe_evict(Instant::now()), 1);
        assert_eq!(r.active(), 1);
    }

    #[test]
    fn close_deletes_durable_state_and_purge_handles_disk_only() {
        let (root, store) = durable("close", RetentionPolicy::keep_all());
        let r = registry().with_store(store.clone(), 0);
        let (a, sa) = r.open().unwrap();
        {
            let mut s = lock(&sa);
            s.enqueue(gmon(0, 10), Instant::now()).unwrap();
            s.drain().unwrap();
        }
        drop(sa);
        let (b, _sb) = r.open().unwrap();
        assert!(r.close(a).is_some());
        assert!(!store.has_session(a), "close deletes the session dir");
        assert!(r.get(a).is_none(), "closed sessions do not rehydrate");
        // Restart with session b still on disk: purge removes it without
        // ever rehydrating.
        drop(r);
        let store2 = Store::open(&root, RetentionPolicy::keep_all(), 4).unwrap();
        let r2 = registry().with_store(store2.clone(), 0);
        assert_eq!(r2.recover(), vec![b]);
        assert!(!r2.purge(999), "unknown ids purge to false");
        assert!(r2.purge(b));
        assert!(!store2.has_session(b));
        assert!(r2.get(b).is_none());
    }

    #[test]
    fn downsampling_retention_trims_live_series_in_lockstep_with_the_log() {
        let policy = RetentionPolicy::parse("hot=2,stride=4").unwrap();
        let (root, store) = durable("retention", policy);
        let r = registry().with_store(store, 0);
        let (id, s) = r.open().unwrap();
        let detector = PhaseDetector::default();
        let live = {
            let mut s = lock(&s);
            for i in 0..10u64 {
                s.enqueue(gmon(i, (i + 1) * 1_000_000_000), Instant::now())
                    .unwrap();
                s.drain().unwrap();
            }
            // The live series was trimmed in lockstep with the log:
            // stride multiples plus the hot tail survive.
            let kept: Vec<u64> = s
                .series()
                .snapshots()
                .iter()
                .map(|x| x.sample_index)
                .collect();
            assert_eq!(kept, vec![0, 4, 8, 9]);
            s.report_json(&detector, ReportMode::AnalysisOnly)
        };
        drop(s);
        drop(r);
        let store = Store::open(&root, policy, 4).unwrap();
        let r2 = registry().with_store(store, 0);
        assert_eq!(r2.recover(), vec![id]);
        let s2 = r2.get(id).unwrap();
        assert_eq!(
            lock(&s2).report_json(&detector, ReportMode::AnalysisOnly),
            live
        );
    }
}
