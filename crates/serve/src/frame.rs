//! Re-export of the IPRF frame codec, which moved to `incprof-store`
//! when the on-disk snapshot log adopted it as its record format: wire
//! frames and log records now share one codec (one CRC, one version
//! field, one corruption test surface). Serve's public API is
//! unchanged — everything that was `incprof_serve::frame::*` still is.

pub use incprof_store::frame::*;
