//! Blocking client for the incprof-serve wire protocol.
//!
//! One [`Client`] owns one connection and any number of logical
//! sessions on it. Every call is a synchronous request/reply exchange,
//! so the natural usage is one client per pushing thread. Backpressure
//! is surfaced as [`Push::Busy`] — the caller decides whether to retry,
//! and [`Client::push_retry`] implements the obvious bounded-retry
//! loop for convenience.

use crate::frame::{
    read_frame, write_frame, ErrorInfo, Frame, FrameError, FrameType, ReadOutcome, SnapshotAck,
    DEFAULT_MAX_PAYLOAD,
};
use incprof_profile::GmonData;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server replied with a typed error frame.
    Server(ErrorInfo),
    /// The reply frame was malformed or of an unexpected type.
    Protocol(String),
    /// The server closed the connection.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Protocol(e.to_string())
    }
}

/// Outcome of a snapshot push.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Push {
    /// Ingested and observed by the incremental detector.
    Ack(SnapshotAck),
    /// The session's ingest queue (or the accept queue) is full.
    Busy,
}

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A blocking protocol client over TCP or a Unix socket.
pub struct Client {
    stream: Stream,
    max_payload: u32,
}

impl Client {
    /// Connect over TCP (`host:port`).
    pub fn connect_tcp(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(Client {
            stream: Stream::Tcp(stream),
            max_payload: DEFAULT_MAX_PAYLOAD,
        })
    }

    /// Connect over a Unix-domain socket.
    pub fn connect_unix(path: &Path) -> Result<Client, ClientError> {
        let stream = UnixStream::connect(path)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(Client {
            stream: Stream::Unix(stream),
            max_payload: DEFAULT_MAX_PAYLOAD,
        })
    }

    /// Connect to `addr`, treating anything containing `/` as a Unix
    /// socket path and everything else as `host:port`.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        if addr.contains('/') {
            Client::connect_unix(Path::new(addr))
        } else {
            Client::connect_tcp(addr)
        }
    }

    fn round_trip(&mut self, request: &Frame) -> Result<Frame, ClientError> {
        write_frame(&mut self.stream, request)?;
        loop {
            match read_frame(&mut self.stream, self.max_payload)? {
                ReadOutcome::Frame(f) => return Ok(f),
                ReadOutcome::TimedOut => continue,
                ReadOutcome::Closed => return Err(ClientError::Disconnected),
                ReadOutcome::Malformed(e) => return Err(e.into()),
            }
        }
    }

    fn expect_reply(&mut self, request: &Frame, want: FrameType) -> Result<Frame, ClientError> {
        let reply = self.round_trip(request)?;
        match reply.frame_type {
            t if t == want => Ok(reply),
            FrameType::Error => Err(ClientError::Server(ErrorInfo::decode(&reply.payload)?)),
            other => Err(ClientError::Protocol(format!(
                "expected {want:?}, got {other:?}"
            ))),
        }
    }

    /// Open a new session; returns its server-assigned id.
    pub fn open(&mut self) -> Result<u64, ClientError> {
        let reply = self.expect_reply(&Frame::empty(FrameType::Open, 0), FrameType::OpenAck)?;
        Ok(reply.session_id)
    }

    /// Push one cumulative snapshot (as gmon wire bytes) into a session.
    pub fn push(&mut self, session_id: u64, gmon: &GmonData) -> Result<Push, ClientError> {
        let frame = Frame::with_payload(FrameType::Snapshot, session_id, gmon.encode().to_vec());
        let reply = self.round_trip(&frame)?;
        match reply.frame_type {
            FrameType::SnapshotAck => Ok(Push::Ack(SnapshotAck::decode(&reply.payload)?)),
            FrameType::Busy => Ok(Push::Busy),
            FrameType::Error => Err(ClientError::Server(ErrorInfo::decode(&reply.payload)?)),
            other => Err(ClientError::Protocol(format!(
                "expected SnapshotAck, got {other:?}"
            ))),
        }
    }

    /// Push with a bounded busy-retry loop (linear backoff).
    pub fn push_retry(
        &mut self,
        session_id: u64,
        gmon: &GmonData,
        max_attempts: usize,
    ) -> Result<SnapshotAck, ClientError> {
        for attempt in 0..max_attempts.max(1) {
            match self.push(session_id, gmon)? {
                Push::Ack(ack) => return Ok(ack),
                Push::Busy => {
                    std::thread::sleep(Duration::from_millis(5 * (attempt as u64 + 1)));
                }
            }
        }
        Err(ClientError::Protocol(format!(
            "session {session_id} still busy after {max_attempts} attempts"
        )))
    }

    /// Fetch the full JSON phase report for a session.
    pub fn query_report(&mut self, session_id: u64) -> Result<String, ClientError> {
        self.query(session_id, 0)
    }

    /// Fetch only the offline `PhaseAnalysis` JSON (the determinism
    /// bridge: byte-identical to the offline pipeline on this series).
    pub fn query_analysis(&mut self, session_id: u64) -> Result<String, ClientError> {
        self.query(session_id, 1)
    }

    fn query(&mut self, session_id: u64, mode: u8) -> Result<String, ClientError> {
        let frame = Frame::with_payload(FrameType::Query, session_id, vec![mode]);
        let reply = self.expect_reply(&frame, FrameType::Report)?;
        String::from_utf8(reply.payload)
            .map_err(|_| ClientError::Protocol("report payload is not UTF-8".to_string()))
    }

    /// Close a session, draining anything still pending server-side.
    pub fn close(&mut self, session_id: u64) -> Result<(), ClientError> {
        self.expect_reply(
            &Frame::empty(FrameType::Close, session_id),
            FrameType::CloseAck,
        )?;
        Ok(())
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.expect_reply(&Frame::empty(FrameType::Ping, 0), FrameType::Pong)?;
        Ok(())
    }

    /// Ask the daemon to shut down gracefully.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.expect_reply(
            &Frame::empty(FrameType::Shutdown, 0),
            FrameType::ShutdownAck,
        )?;
        Ok(())
    }
}
