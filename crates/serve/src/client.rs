//! Blocking client for the incprof-serve wire protocol.
//!
//! One [`Client`] owns one connection and any number of logical
//! sessions on it. Every call is a synchronous request/reply exchange,
//! so the natural usage is one client per pushing thread. Backpressure
//! is surfaced as [`Push::Busy`] — the caller decides whether to retry,
//! and [`Client::push_retry`] implements the obvious bounded-retry
//! loop for convenience.

use crate::backoff::retry_backoff;
use crate::frame::{
    read_frame, write_frame, ErrorInfo, Frame, FrameError, FrameType, ReadOutcome, SnapshotAck,
    TraceWire, DEFAULT_MAX_PAYLOAD,
};
use incprof_profile::GmonData;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server replied with a typed error frame.
    Server(ErrorInfo),
    /// The reply frame was malformed or of an unexpected type.
    Protocol(String),
    /// The server closed the connection.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Protocol(e.to_string())
    }
}

/// Outcome of a snapshot push.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Push {
    /// Ingested and observed by the incremental detector.
    Ack(SnapshotAck),
    /// The session's ingest queue (or the accept queue) is full.
    Busy,
}

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// Where a [`Client`] dials, remembered so a broken connection can be
/// transparently re-established.
#[derive(Debug, Clone)]
enum Target {
    Tcp(String),
    Unix(PathBuf),
}

impl Target {
    fn dial(&self) -> Result<Stream, ClientError> {
        match self {
            Target::Tcp(addr) => {
                let stream = TcpStream::connect(addr.as_str())?;
                stream.set_read_timeout(Some(Duration::from_secs(30)))?;
                Ok(Stream::Tcp(stream))
            }
            Target::Unix(path) => {
                let stream = UnixStream::connect(path)?;
                stream.set_read_timeout(Some(Duration::from_secs(30)))?;
                Ok(Stream::Unix(stream))
            }
        }
    }
}

/// Default bound on transparent reconnect attempts per request.
const DEFAULT_RECONNECT_ATTEMPTS: usize = 3;

/// A blocking protocol client over TCP or a Unix socket.
///
/// A connection that breaks mid-request (reset, broken pipe, peer
/// close) is transparently re-dialed — bounded attempts on the
/// [`retry_backoff`] jitter schedule — and the request retransmitted.
/// Retransmission is safe because the protocol is at-least-once by
/// design: the server recognizes a re-pushed snapshot it already acked
/// and replays the identical ack, and every query is read-only.
pub struct Client {
    stream: Stream,
    max_payload: u32,
    target: Target,
    reconnect_attempts: usize,
}

impl Client {
    fn from_target(target: Target) -> Result<Client, ClientError> {
        let stream = target.dial()?;
        Ok(Client {
            stream,
            max_payload: DEFAULT_MAX_PAYLOAD,
            target,
            reconnect_attempts: DEFAULT_RECONNECT_ATTEMPTS,
        })
    }

    /// Connect over TCP (`host:port`).
    pub fn connect_tcp(addr: &str) -> Result<Client, ClientError> {
        Client::from_target(Target::Tcp(addr.to_string()))
    }

    /// Connect over a Unix-domain socket.
    pub fn connect_unix(path: &Path) -> Result<Client, ClientError> {
        Client::from_target(Target::Unix(path.to_path_buf()))
    }

    /// Connect to `addr`, treating anything containing `/` as a Unix
    /// socket path and everything else as `host:port`.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        if addr.contains('/') {
            Client::connect_unix(Path::new(addr))
        } else {
            Client::connect_tcp(addr)
        }
    }

    /// Bound the transparent reconnect loop (0 disables it; a broken
    /// connection then surfaces as a hard error, the pre-reconnect
    /// behavior).
    pub fn set_reconnect_attempts(&mut self, attempts: usize) {
        self.reconnect_attempts = attempts;
    }

    /// One request/reply exchange on the current connection; connection
    /// loss surfaces as `Io` or `Disconnected`.
    fn exchange(&mut self, request: &Frame) -> Result<Frame, ClientError> {
        write_frame(&mut self.stream, request)?;
        loop {
            match read_frame(&mut self.stream, self.max_payload)? {
                ReadOutcome::Frame(f) => return Ok(f),
                ReadOutcome::TimedOut => continue,
                ReadOutcome::Closed => return Err(ClientError::Disconnected),
                ReadOutcome::Malformed(e) => return Err(e.into()),
            }
        }
    }

    /// Whether a failure means the connection is gone (worth re-dialing)
    /// rather than a server-side or protocol-level verdict.
    fn connection_lost(e: &ClientError) -> bool {
        matches!(e, ClientError::Io(_) | ClientError::Disconnected)
    }

    fn round_trip(&mut self, request: &Frame) -> Result<Frame, ClientError> {
        let mut last = match self.exchange(request) {
            Ok(f) => return Ok(f),
            Err(e) if Self::connection_lost(&e) => e,
            Err(e) => return Err(e),
        };
        // Jitter seeded per (session, request type): concurrent clients
        // re-dialing a restarted daemon spread out, while any given
        // request's schedule stays reproducible.
        let seed = request.session_id ^ (request.frame_type as u64);
        for attempt in 0..self.reconnect_attempts {
            std::thread::sleep(retry_backoff(attempt, seed));
            match self.target.dial() {
                Ok(stream) => {
                    self.stream = stream;
                    incprof_obs::counter(incprof_obs::names::SERVE_CLIENT_RECONNECTS).inc();
                    match self.exchange(request) {
                        Ok(f) => return Ok(f),
                        Err(e) if Self::connection_lost(&e) => last = e,
                        Err(e) => return Err(e),
                    }
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    fn expect_reply(&mut self, request: &Frame, want: FrameType) -> Result<Frame, ClientError> {
        let reply = self.round_trip(request)?;
        match reply.frame_type {
            t if t == want => Ok(reply),
            FrameType::Error => Err(ClientError::Server(ErrorInfo::decode(&reply.payload)?)),
            other => Err(ClientError::Protocol(format!(
                "expected {want:?}, got {other:?}"
            ))),
        }
    }

    /// Open a new session; returns its server-assigned id.
    pub fn open(&mut self) -> Result<u64, ClientError> {
        let reply = self.expect_reply(&Frame::empty(FrameType::Open, 0), FrameType::OpenAck)?;
        Ok(reply.session_id)
    }

    /// Push one cumulative snapshot (as gmon wire bytes) into a session.
    pub fn push(&mut self, session_id: u64, gmon: &GmonData) -> Result<Push, ClientError> {
        self.push_inner(session_id, gmon, None)
    }

    /// [`Client::push`] carrying a trace id: the request frame gets the
    /// version-2 trace extension, a client-side root span
    /// (`serve.client.push`) is recorded, and the server links every
    /// span it opens for this frame under the same trace id — so a
    /// [`Client::trace_get`] on the admin socket (or, in-process, the
    /// span store itself) replays the push end to end.
    pub fn push_traced(
        &mut self,
        session_id: u64,
        gmon: &GmonData,
        trace_id: u64,
    ) -> Result<Push, ClientError> {
        self.push_inner(session_id, gmon, Some(trace_id))
    }

    fn push_inner(
        &mut self,
        session_id: u64,
        gmon: &GmonData,
        trace_id: Option<u64>,
    ) -> Result<Push, ClientError> {
        let root = trace_id.map(|tid| {
            incprof_obs::global().spans().enter_traced(
                incprof_obs::names::SERVE_CLIENT_PUSH,
                tid,
                0,
            )
        });
        let trace = trace_id.map(|tid| TraceWire {
            trace_id: tid,
            parent_span: root.as_ref().map(|r| r.wire_span()).unwrap_or(0),
        });
        let frame = Frame::with_payload(FrameType::Snapshot, session_id, gmon.encode().to_vec())
            .traced(trace);
        let reply = self.round_trip(&frame)?;
        match reply.frame_type {
            FrameType::SnapshotAck => Ok(Push::Ack(SnapshotAck::decode(&reply.payload)?)),
            FrameType::Busy => Ok(Push::Busy),
            FrameType::Error => Err(ClientError::Server(ErrorInfo::decode(&reply.payload)?)),
            other => Err(ClientError::Protocol(format!(
                "expected SnapshotAck, got {other:?}"
            ))),
        }
    }

    /// Push with a bounded busy-retry loop (exponential backoff with
    /// deterministic jitter; see [`retry_backoff`]). Each retry after a
    /// `BUSY` reply increments `serve.client.retries`.
    pub fn push_retry(
        &mut self,
        session_id: u64,
        gmon: &GmonData,
        max_attempts: usize,
    ) -> Result<SnapshotAck, ClientError> {
        // Jitter is seeded per (session, sample) so concurrent pushers
        // retrying the same contended queue spread out instead of
        // thundering back in lockstep — yet any given push's schedule
        // is reproducible.
        let seed = session_id ^ gmon.sample_index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for attempt in 0..max_attempts.max(1) {
            match self.push(session_id, gmon)? {
                Push::Ack(ack) => return Ok(ack),
                Push::Busy => {
                    incprof_obs::counter(incprof_obs::names::SERVE_CLIENT_RETRIES).inc();
                    std::thread::sleep(retry_backoff(attempt, seed));
                }
            }
        }
        Err(ClientError::Protocol(format!(
            "session {session_id} still busy after {max_attempts} attempts"
        )))
    }

    /// Fetch the full JSON phase report for a session.
    pub fn query_report(&mut self, session_id: u64) -> Result<String, ClientError> {
        self.query(session_id, 0, None)
    }

    /// Fetch only the offline `PhaseAnalysis` JSON (the determinism
    /// bridge: byte-identical to the offline pipeline on this series).
    pub fn query_analysis(&mut self, session_id: u64) -> Result<String, ClientError> {
        self.query(session_id, 1, None)
    }

    /// [`Client::query_analysis`] carrying a trace id, linking the
    /// server's whole analysis pipeline (cache, features, clustering)
    /// into one queryable trace tree.
    pub fn query_analysis_traced(
        &mut self,
        session_id: u64,
        trace_id: u64,
    ) -> Result<String, ClientError> {
        self.query(session_id, 1, Some(trace_id))
    }

    fn query(
        &mut self,
        session_id: u64,
        mode: u8,
        trace_id: Option<u64>,
    ) -> Result<String, ClientError> {
        let trace = trace_id.map(|tid| TraceWire {
            trace_id: tid,
            parent_span: 0,
        });
        let frame = Frame::with_payload(FrameType::Query, session_id, vec![mode]).traced(trace);
        let reply = self.expect_reply(&frame, FrameType::Report)?;
        String::from_utf8(reply.payload)
            .map_err(|_| ClientError::Protocol("report payload is not UTF-8".to_string()))
    }

    /// Admin: fetch the Prometheus-style text exposition. Only works on
    /// a connection to the daemon's *admin* socket.
    pub fn scrape(&mut self) -> Result<String, ClientError> {
        self.admin_text(FrameType::Scrape, Vec::new(), FrameType::ScrapeReply)
    }

    /// Admin: resolve `trace_id` to its JSON span tree.
    pub fn trace_get(&mut self, trace_id: u64) -> Result<String, ClientError> {
        self.admin_text(
            FrameType::TraceGet,
            trace_id.to_le_bytes().to_vec(),
            FrameType::TraceReply,
        )
    }

    /// Admin: dump the flight recorder's recent-event tail as JSON.
    pub fn recorder_dump(&mut self) -> Result<String, ClientError> {
        self.admin_text(
            FrameType::RecorderDump,
            Vec::new(),
            FrameType::RecorderReply,
        )
    }

    /// Admin: one-line JSON liveness document.
    pub fn health(&mut self) -> Result<String, ClientError> {
        self.admin_text(FrameType::Health, Vec::new(), FrameType::HealthReply)
    }

    fn admin_text(
        &mut self,
        request: FrameType,
        payload: Vec<u8>,
        want: FrameType,
    ) -> Result<String, ClientError> {
        let frame = Frame::with_payload(request, 0, payload);
        let reply = self.expect_reply(&frame, want)?;
        String::from_utf8(reply.payload)
            .map_err(|_| ClientError::Protocol("admin payload is not UTF-8".to_string()))
    }

    /// Close a session, draining anything still pending server-side.
    pub fn close(&mut self, session_id: u64) -> Result<(), ClientError> {
        self.expect_reply(
            &Frame::empty(FrameType::Close, session_id),
            FrameType::CloseAck,
        )?;
        Ok(())
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.expect_reply(&Frame::empty(FrameType::Ping, 0), FrameType::Pong)?;
        Ok(())
    }

    /// Ask the daemon to shut down gracefully.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.expect_reply(
            &Frame::empty(FrameType::Shutdown, 0),
            FrameType::ShutdownAck,
        )?;
        Ok(())
    }
}
