//! The one retry-backoff schedule every serve-side retry loop shares.
//!
//! The client used to grow retry loops organically — busy-push retries
//! and broken-connection re-dials each hand-rolled an exponential
//! schedule, and the shift caps and base multipliers could drift apart
//! silently. Both now call [`retry_backoff`], which delegates to the
//! single [`RETRY_POLICY`] constant: a new retry loop either reuses the
//! policy or has to introduce a second named constant in this module,
//! where the divergence is visible in review instead of buried in a
//! loop body.

use std::time::Duration;

/// A deterministic exponential-backoff schedule with bounded jitter.
///
/// The delay before 0-based `attempt` is
/// `min(base_ms << min(attempt, shift_cap), cap_ms)` plus a jitter in
/// `[0, base/2]` mixed from the caller's seed — pure, so a whole
/// schedule is computable in a unit test, equal seeds replay
/// identically, and distinct seeds (one per session/request identity)
/// de-synchronize concurrent retriers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// First-attempt delay in milliseconds.
    pub base_ms: u64,
    /// Ceiling the exponential ramp saturates at, in milliseconds
    /// (before jitter).
    pub cap_ms: u64,
    /// Maximum doubling count; keeps the shift defined for any attempt
    /// number (`1u64 << attempt` is UB-adjacent past 63 and pointless
    /// past the cap).
    pub shift_cap: u32,
}

impl BackoffPolicy {
    /// The delay before 0-based retry `attempt`, jittered by `seed`.
    pub fn delay(&self, attempt: usize, seed: u64) -> Duration {
        let shift = (attempt as u64).min(u64::from(self.shift_cap)) as u32;
        let base = self.base_ms.saturating_mul(1u64 << shift).min(self.cap_ms);
        let jitter = mix64(seed ^ attempt as u64) % (base / 2 + 1);
        Duration::from_millis(base + jitter)
    }
}

/// The schedule shared by every client retry loop: busy-push retries
/// and transparent reconnects alike. 5 ms doubling to a 200 ms cap.
pub const RETRY_POLICY: BackoffPolicy = BackoffPolicy {
    base_ms: 5,
    cap_ms: 200,
    shift_cap: 10,
};

/// The backoff before retry `attempt` (0-based) under [`RETRY_POLICY`].
pub fn retry_backoff(attempt: usize, seed: u64) -> Duration {
    RETRY_POLICY.delay(attempt, seed)
}

/// SplitMix64 finalizer: a cheap, well-distributed stateless mix.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_and_bounded() {
        let a: Vec<Duration> = (0..12).map(|i| retry_backoff(i, 42)).collect();
        let b: Vec<Duration> = (0..12).map(|i| retry_backoff(i, 42)).collect();
        assert_eq!(a, b, "same seed must replay the same schedule");
        for (i, d) in a.iter().enumerate() {
            let base = 5u64.saturating_mul(1 << (i as u32).min(10)).min(200);
            assert!(d.as_millis() as u64 >= base, "attempt {i}: below base");
            assert!(
                d.as_millis() as u64 <= base + base / 2,
                "attempt {i}: {d:?} over base {base} + 50% jitter"
            );
        }
        // The exponential ramp reaches (and then respects) the cap.
        assert!(a[11] >= Duration::from_millis(200));
        assert!(a[11] <= Duration::from_millis(300));
    }

    #[test]
    fn backoff_jitter_separates_seeds() {
        // Not every attempt need differ, but a whole-schedule collision
        // across distinct seeds would mean the jitter does nothing.
        let a: Vec<Duration> = (0..8).map(|i| retry_backoff(i, 1)).collect();
        let b: Vec<Duration> = (0..8).map(|i| retry_backoff(i, 2)).collect();
        assert_ne!(a, b);
    }

    /// Any policy (not just the shared constant) must ramp monotonically
    /// to its cap and never overflow, even for absurd attempt numbers —
    /// the invariants a future second policy inherits for free.
    #[test]
    fn policy_invariants_hold_for_any_attempt() {
        let p = BackoffPolicy {
            base_ms: 7,
            cap_ms: 333,
            shift_cap: 20,
        };
        let mut prev_base = 0u64;
        for attempt in 0..80 {
            let d = p.delay(attempt, 0xDEAD_BEEF).as_millis() as u64;
            let shift = (attempt as u64).min(u64::from(p.shift_cap)) as u32;
            let base = p.base_ms.saturating_mul(1u64 << shift).min(p.cap_ms);
            assert!(base >= prev_base, "base must be non-decreasing");
            assert!(d >= base && d <= base + base / 2, "attempt {attempt}");
            prev_base = base;
        }
    }

    /// The two client retry loops (busy-push and reconnect) must share
    /// one schedule: `retry_backoff` is definitionally the shared
    /// policy's delay, so neither loop can drift without changing the
    /// other.
    #[test]
    fn retry_backoff_is_exactly_the_shared_policy() {
        for attempt in 0..16 {
            for seed in [0u64, 1, 42, u64::MAX] {
                assert_eq!(
                    retry_backoff(attempt, seed),
                    RETRY_POLICY.delay(attempt, seed)
                );
            }
        }
    }
}
