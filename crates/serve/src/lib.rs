//! incprof-serve: a streaming phase-detection daemon.
//!
//! The offline pipeline answers "what phases did this run have" after
//! the fact; this crate answers it *while the application runs*. A
//! profiled process (or a replayer) streams cumulative
//! [`incprof_profile::GmonData`] snapshots over TCP or a Unix socket;
//! the daemon keeps one [`session::Session`] per logical run, feeds
//! each interval delta through the incremental
//! [`incprof_core::online::OnlinePhaseDetector`], and answers report
//! queries with JSON that is byte-identical to the offline pipeline on
//! the same series (the *determinism bridge*).
//!
//! Layers, bottom to top:
//!
//! - [`frame`] — the pure, clock-free binary frame codec
//!   (`MAGIC | version | type | session_id | len | payload | crc32`)
//!   shared by client, server, and the on-disk snapshot log (it lives
//!   in `incprof-store` and is re-exported here).
//! - `incprof-store` — the durable session store behind
//!   `--store-dir`: append-only snapshot logs, advisory analysis
//!   checkpoints, tiered retention (format: `docs/PERSISTENCE.md`).
//! - [`session`] — per-run state and the concurrent session registry,
//!   with bounded ingest queues, fault isolation, and — when a store
//!   is attached — LRU eviction plus transparent rehydration.
//! - [`server`] — the daemon: accept loop, bounded worker pool,
//!   backpressure, graceful drain-on-shutdown.
//! - [`mod@admin`] — the optional read-only admin listener: Prometheus
//!   scrape, trace-tree lookup, flight-recorder dump, health.
//! - [`client`] — a blocking request/reply client (data and admin).
//! - [`signal`] — SIGINT-to-atomic-flag plumbing for the CLI.
//!
//! Frames may carry a version-2 trace extension
//! ([`frame::TraceWire`]): a traced push or query links the client's
//! root span and every server-side span it causes — enqueue, drain,
//! the online observation, the analysis cache and pipeline — into one
//! tree under a single trace id, resolvable via
//! [`FrameType::TraceGet`] on the admin socket.
//!
//! Everything is `std`-only: no async runtime, no external crates.

pub mod admin;
pub mod backoff;
pub mod client;
pub mod frame;
pub mod server;
pub mod session;
pub mod signal;

pub use backoff::{retry_backoff, BackoffPolicy, RETRY_POLICY};
pub use client::{Client, ClientError, Push};
pub use frame::{ErrorCode, ErrorInfo, Frame, FrameError, FrameType, SnapshotAck, TraceWire};
pub use incprof_store::{RetentionPolicy, Store};
pub use server::{BindAddr, ServeConfig, Server, ServerHandle};
pub use session::{Registry, ReportMode, SessionStats};
