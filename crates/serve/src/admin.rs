//! The read-only admin surface.
//!
//! A daemon started with [`crate::ServeConfig::admin`] set binds a
//! second listener that speaks the same IPRF/1 frame codec but answers
//! only the four read-only request types:
//!
//! | request                      | reply payload                                  |
//! |------------------------------|------------------------------------------------|
//! | [`FrameType::Scrape`]        | Prometheus-style text exposition               |
//! | [`FrameType::TraceGet`]      | JSON [`incprof_obs::TraceTree`] for a trace id |
//! | [`FrameType::RecorderDump`]  | JSON flight-recorder tail                      |
//! | [`FrameType::Health`]        | one-line JSON liveness document                |
//!
//! Write-shaped traffic (snapshots, session control, shutdown) is
//! rejected with [`ErrorCode::BadType`]; symmetrically the data socket
//! rejects admin requests. Keeping the planes on separate sockets means
//! the admin port can be firewalled (or bound to a Unix socket with
//! tighter permissions) independently of ingest, and a misbehaving
//! scraper can never occupy an ingest worker.
//!
//! The exposition maps every registered metric name (dots become
//! underscores, `incprof_` prefixed) plus per-session gauges labelled
//! `{session="<id>"}` from [`Registry::stats`]. `incprof top` renders
//! the same text client-side.

use crate::frame::{read_frame, write_frame, ErrorCode, ErrorInfo, Frame, FrameType, ReadOutcome};
use crate::server::{Conn, Listener, Shared};
use crate::session::Registry;
use std::time::Instant;

/// Accept loop for the admin listener. Single-threaded on purpose:
/// every request is answered from in-memory snapshots, so one slow
/// scraper only delays other scrapers, never ingest.
pub(crate) fn admin_loop(listener: &Listener, shared: &Shared) {
    loop {
        let conn = match listener.accept() {
            Ok(conn) => conn,
            Err(e) => {
                if shared.shutting_down() {
                    return;
                }
                incprof_obs::warn!("admin accept failed: {e}");
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        if shared.shutting_down() {
            return;
        }
        incprof_obs::counter(incprof_obs::names::SERVE_ADMIN_CONNS).inc();
        serve_admin_conn(conn, shared);
    }
}

/// Serve one admin connection until it closes, errors, idles out, or
/// the daemon drains. Mirrors the data plane's framing discipline:
/// framing violations answer once and drop, payload problems answer
/// and keep going.
fn serve_admin_conn(mut conn: Conn, shared: &Shared) {
    if conn.set_read_timeout(shared.config.read_timeout).is_err() {
        return;
    }
    let idle_limit = shared.config.idle_timeout.as_nanos();
    let mut idle_polls: u128 = 0;
    loop {
        if shared.shutting_down() {
            return;
        }
        let outcome = match read_frame(&mut conn, shared.config.max_payload) {
            Ok(outcome) => outcome,
            Err(_) => return,
        };
        let frame = match outcome {
            ReadOutcome::Frame(f) => f,
            ReadOutcome::Closed => return,
            ReadOutcome::TimedOut => {
                idle_polls += 1;
                if idle_polls * shared.config.read_timeout.as_nanos() >= idle_limit {
                    return;
                }
                continue;
            }
            ReadOutcome::Malformed(e) => {
                incprof_obs::counter(incprof_obs::names::SERVE_DECODE_ERRORS).inc();
                incprof_obs::recorder().record(
                    incprof_obs::EventKind::DecodeError,
                    0,
                    ErrorCode::of_frame_error(&e) as u64,
                );
                let info = ErrorInfo::new(ErrorCode::of_frame_error(&e), e.to_string());
                send(
                    &mut conn,
                    &Frame::with_payload(FrameType::Error, 0, info.encode()),
                );
                return;
            }
        };
        idle_polls = 0;
        incprof_obs::counter(incprof_obs::names::SERVE_ADMIN_REQUESTS).inc();
        if !dispatch_admin(&mut conn, shared, frame) {
            return;
        }
    }
}

/// Answer one admin frame; returns false when the connection should end.
fn dispatch_admin(conn: &mut Conn, shared: &Shared, frame: Frame) -> bool {
    match frame.frame_type {
        FrameType::Scrape => {
            incprof_obs::counter(incprof_obs::names::SERVE_ADMIN_SCRAPES).inc();
            let text = render_exposition(&shared.registry, Instant::now());
            send(
                conn,
                &Frame::with_payload(FrameType::ScrapeReply, 0, text.into_bytes()),
            )
        }
        FrameType::TraceGet => {
            let Ok(bytes) = <[u8; 8]>::try_from(frame.payload.as_slice()) else {
                let info = ErrorInfo::new(
                    ErrorCode::BadPayload,
                    format!(
                        "TraceGet payload must be 8 bytes, got {}",
                        frame.payload.len()
                    ),
                );
                return send(
                    conn,
                    &Frame::with_payload(FrameType::Error, 0, info.encode()),
                );
            };
            let trace_id = u64::from_le_bytes(bytes);
            let tree =
                incprof_obs::trace::store_trace_tree(incprof_obs::global().spans(), trace_id);
            let json = serde_json::to_string(&tree)
                .unwrap_or_else(|e| format!("{{\"error\":\"serialize failed: {e}\"}}"));
            send(
                conn,
                &Frame::with_payload(FrameType::TraceReply, 0, json.into_bytes()),
            )
        }
        FrameType::RecorderDump => {
            let recorder = incprof_obs::recorder();
            let events = recorder.snapshot();
            let json = format!(
                "{{\"total\":{},\"events\":{}}}",
                recorder.total(),
                serde_json::to_string(&events).unwrap_or_else(|_| "[]".to_string())
            );
            send(
                conn,
                &Frame::with_payload(FrameType::RecorderReply, 0, json.into_bytes()),
            )
        }
        FrameType::Health => {
            let json = format!(
                "{{\"status\":\"ok\",\"sessions\":{},\"draining\":{}}}",
                shared.registry.active(),
                shared.shutting_down()
            );
            send(
                conn,
                &Frame::with_payload(FrameType::HealthReply, 0, json.into_bytes()),
            )
        }
        other => {
            let info = ErrorInfo::new(
                ErrorCode::BadType,
                format!("{other:?} is not served on the read-only admin socket"),
            );
            send(
                conn,
                &Frame::with_payload(FrameType::Error, frame.session_id, info.encode()),
            )
        }
    }
}

/// Write a frame, counting it; returns false when the peer is gone.
fn send(conn: &mut Conn, frame: &Frame) -> bool {
    match write_frame(conn, frame) {
        Ok(n) => {
            incprof_obs::counter(incprof_obs::names::SERVE_FRAMES_OUT).inc();
            incprof_obs::counter(incprof_obs::names::SERVE_BYTES_OUT).add(n as u64);
            true
        }
        Err(_) => false,
    }
}

/// `serve.frames.received` → `incprof_serve_frames_received`.
fn prom_name(name: &str) -> String {
    format!("incprof_{}", name.replace('.', "_"))
}

/// Render the whole global metrics registry plus per-session vitals as
/// Prometheus-style text exposition. Deterministic ordering: metric
/// maps iterate sorted (BTreeMap) and sessions come back in id order.
pub(crate) fn render_exposition(registry: &Registry, now: Instant) -> String {
    let metrics = incprof_obs::global().metrics();
    let mut out = String::with_capacity(4096);
    for (name, value) in metrics.counter_values() {
        let n = prom_name(&name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
    }
    for (name, value) in metrics.gauge_values() {
        let n = prom_name(&name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {value}\n"));
    }
    for (name, h) in metrics.histogram_snapshots() {
        let n = prom_name(&name);
        out.push_str(&format!(
            "# TYPE {n} summary\n{n}_count {}\n{n}_sum {}\n",
            h.count, h.sum
        ));
        out.push_str(&format!(
            "# TYPE {n}_min gauge\n{n}_min {}\n# TYPE {n}_max gauge\n{n}_max {}\n",
            h.min, h.max
        ));
    }
    let stats = registry.stats(now);
    type StatGetter = fn(&crate::session::SessionStats) -> u64;
    let gauges: &[(&str, StatGetter)] = &[
        ("incprof_session_snapshots", |s| s.snapshots),
        ("incprof_session_pending", |s| s.pending),
        ("incprof_session_phases", |s| s.phases),
        ("incprof_session_cache_hits", |s| s.cache_hits),
        ("incprof_session_cache_misses", |s| s.cache_misses),
        ("incprof_session_faulted", |s| s.faulted as u64),
    ];
    for (name, get) in gauges {
        out.push_str(&format!("# TYPE {name} gauge\n"));
        for s in &stats {
            out.push_str(&format!("{name}{{session=\"{}\"}} {}\n", s.id, get(s)));
        }
    }
    out.push_str("# TYPE incprof_session_idle_seconds gauge\n");
    for s in &stats {
        if let Some(idle_ns) = s.idle_ns {
            out.push_str(&format!(
                "incprof_session_idle_seconds{{session=\"{}\"}} {}\n",
                s.id,
                idle_ns as f64 / 1e9
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use incprof_core::online::OnlineConfig;
    use incprof_profile::{FlatProfile, FunctionStats, FunctionTable, GmonData};

    fn gmon(idx: u64) -> GmonData {
        let mut table = FunctionTable::new();
        let id = table.register("f");
        let mut flat = FlatProfile::new();
        flat.set(
            id,
            FunctionStats {
                self_time: (idx + 1) * 100,
                calls: idx + 1,
                child_time: 0,
            },
        );
        GmonData {
            sample_index: idx,
            timestamp_ns: idx * 1_000_000_000,
            functions: table,
            flat,
            callgraph: Default::default(),
        }
    }

    /// Every exposition line must be a comment or `name[{labels}] value`.
    fn assert_valid_exposition(text: &str) {
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE "), "bad comment: {line}");
                continue;
            }
            let (name_part, value) = line.rsplit_once(' ').expect("name value split");
            assert!(value.parse::<f64>().is_ok(), "bad value in: {line}");
            let name = name_part.split('{').next().unwrap_or(name_part);
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad metric name in: {line}"
            );
            assert!(name.starts_with("incprof_"), "unprefixed name: {line}");
        }
    }

    #[test]
    fn prom_name_mangles_dots() {
        assert_eq!(
            prom_name(incprof_obs::names::SERVE_FRAMES_IN),
            "incprof_serve_frames_received"
        );
    }

    #[test]
    fn exposition_is_well_formed_and_has_session_gauges() {
        // Touch a counter so the global registry is non-empty even when
        // this test runs alone.
        incprof_obs::counter(incprof_obs::names::SERVE_ADMIN_SCRAPES).inc();
        let registry = Registry::new(OnlineConfig::default(), 4, 4, true);
        let (id, s) = registry.open().unwrap();
        {
            let mut s = crate::session::lock(&s);
            s.enqueue(gmon(0), Instant::now()).unwrap();
            s.drain().unwrap();
        }
        let text = render_exposition(&registry, Instant::now());
        assert_valid_exposition(&text);
        assert!(
            text.contains(&format!("incprof_session_snapshots{{session=\"{id}\"}} 1")),
            "{text}"
        );
        assert!(
            text.contains("# TYPE incprof_session_pending gauge"),
            "{text}"
        );
        assert!(
            text.contains(&format!("incprof_session_idle_seconds{{session=\"{id}\"}}")),
            "{text}"
        );
    }
}
