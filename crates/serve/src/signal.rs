//! Minimal SIGINT plumbing for long-running subcommands.
//!
//! The workspace has no `libc`/`signal-hook` dependency, so this binds
//! the one POSIX primitive it needs — `signal(2)` — directly. The
//! handler only flips a process-global atomic; everything
//! async-signal-unsafe (draining sessions, flushing the obs report)
//! happens on a normal thread that polls [`interrupted`].

use std::sync::atomic::AtomicBool;

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// Process-global flag flipped by the SIGINT handler.
pub fn interrupted() -> &'static AtomicBool {
    &INTERRUPTED
}

#[cfg(unix)]
mod imp {
    use super::INTERRUPTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        // Only async-signal-safe work here: a relaxed atomic store.
        INTERRUPTED.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Install the SIGINT handler (idempotent). After this, Ctrl-C flips
/// [`interrupted`] instead of killing the process, letting the caller
/// drain and exit 0.
pub fn install_sigint_handler() {
    imp::install();
}
