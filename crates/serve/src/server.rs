//! The streaming phase-detection daemon.
//!
//! Architecture (all std, no async runtime):
//!
//! ```text
//!             ┌────────────┐   bounded conn queue   ┌──────────────┐
//!  accept ───▶│  acceptor  │ ──────────────────────▶│ worker pool  │──▶ session
//!  (TCP/Unix) │   thread   │   (BUSY reply + drop   │ (N threads,  │    registry
//!             └────────────┘    when full)          │  blocking IO)│
//!                                                   └──────────────┘
//! ```
//!
//! One worker owns one connection at a time and speaks the frame
//! protocol over blocking sockets with a short read timeout, so every
//! worker observes the shutdown flag within one poll interval. Ingest
//! is bounded end to end: the connection queue, each session's pending
//! queue, and the frame payload size all have hard caps, and every
//! overflow answers with a typed reply instead of buffering.
//!
//! Shutdown is graceful by construction: the flag flips (via a
//! [`FrameType::Shutdown`] frame or [`ServerHandle::shutdown`]), the
//! acceptor wakes itself with a loopback connection and stops, workers
//! finish their in-flight request, every session's pending queue is
//! drained, and only then do the threads join.

use crate::frame::{
    read_frame, write_frame, ErrorCode, ErrorInfo, Frame, FrameType, ReadOutcome, SnapshotAck,
    DEFAULT_MAX_PAYLOAD,
};
use crate::session::{lock, Enqueue, Registry, ReportMode, Session};
use incprof_core::online::OnlineConfig;
use incprof_core::{PhaseDetector, SourceGraph};
use incprof_profile::GmonData;
use incprof_store::{RetentionPolicy, Store};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindAddr {
    /// A TCP address like `127.0.0.1:7077` (`:0` picks an ephemeral
    /// port; read the bound address back from [`ServerHandle::addr`]).
    Tcp(String),
    /// A Unix-domain socket path (taken over: a stale file is removed).
    Unix(PathBuf),
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address.
    pub addr: BindAddr,
    /// Connection-handler threads.
    pub workers: usize,
    /// Cap on concurrently open sessions.
    pub max_sessions: usize,
    /// Per-session ingest queue bound (frames).
    pub max_pending: usize,
    /// Cap on a single frame's payload bytes.
    pub max_payload: u32,
    /// Socket read poll interval; also the shutdown-observation latency.
    pub read_timeout: Duration,
    /// Idle connections are dropped after this long without a frame.
    pub idle_timeout: Duration,
    /// Bounded queue of accepted-but-unclaimed connections.
    pub backlog: usize,
    /// The offline detector answering report queries.
    pub detector: PhaseDetector,
    /// The incremental detector fed per frame.
    pub online: OnlineConfig,
    /// Give each session an incremental analysis cache for report
    /// queries (`false` = recompute the full analysis per query; the
    /// `--no-analysis-cache` escape hatch).
    pub analysis_cache: bool,
    /// Optional read-only admin listener (scrape, trace lookup, flight
    /// recorder, health). `None` = no admin surface.
    pub admin: Option<BindAddr>,
    /// Root directory for durable session storage (`--store-dir`).
    /// `None` runs memory-only; sessions die with the daemon.
    pub store_dir: Option<PathBuf>,
    /// Tiered retention applied to each session's snapshot log (only
    /// meaningful with a store). Default keeps everything.
    pub retention: RetentionPolicy,
    /// With a store: evict the most idle sessions to disk once more
    /// than this many are live (0 = never evict).
    pub max_live: usize,
    /// With a store: write an analysis checkpoint after this many
    /// appended snapshots (clamped to at least 1).
    pub checkpoint_every: u64,
    /// Static call graph joined against phases in Full reports'
    /// `source_context` section. Empty = report empty contexts.
    pub source_graph: SourceGraph,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: BindAddr::Tcp("127.0.0.1:0".to_string()),
            workers: 4,
            max_sessions: 64,
            max_pending: 64,
            max_payload: DEFAULT_MAX_PAYLOAD,
            read_timeout: Duration::from_millis(100),
            idle_timeout: Duration::from_secs(30),
            backlog: 32,
            detector: PhaseDetector::default(),
            online: OnlineConfig::default(),
            analysis_cache: true,
            admin: None,
            store_dir: None,
            retention: RetentionPolicy::keep_all(),
            max_live: 0,
            checkpoint_every: 16,
            source_graph: SourceGraph::default(),
        }
    }
}

/// One accepted connection (TCP or Unix). Public so other frontends —
/// notably the `incprof-shard` router — can reuse the daemon's
/// accept-loop pieces instead of reimplementing the socket plumbing.
pub enum Conn {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain socket connection.
    Unix(UnixStream),
}

impl Conn {
    /// Set the read poll interval (shutdown-observation latency).
    pub fn set_read_timeout(&self, t: Duration) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(Some(t)),
            Conn::Unix(s) => s.set_read_timeout(Some(t)),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// A bound listener (TCP or Unix), the accepting half of [`Conn`].
pub enum Listener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-domain socket listener.
    Unix(UnixListener),
}

impl Listener {
    /// Accept one connection.
    pub fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }
}

pub(crate) struct Shared {
    pub(crate) config: ServeConfig,
    pub(crate) registry: Registry,
    shutdown: AtomicBool,
    queue: Mutex<VecDeque<Conn>>,
    queue_cond: Condvar,
}

impl Shared {
    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

/// Bind one [`BindAddr`], returning the listener and its resolved
/// address (`ip:port` for TCP — ephemeral ports resolved — or the path
/// for Unix, whose stale socket file is taken over).
pub fn bind_addr(addr: &BindAddr) -> io::Result<(Listener, String)> {
    match addr {
        BindAddr::Tcp(spec) => {
            let l = TcpListener::bind(spec.as_str())?;
            let addr = l.local_addr()?.to_string();
            Ok((Listener::Tcp(l), addr))
        }
        BindAddr::Unix(path) => {
            // Take the path over; a stale socket file from a dead
            // daemon would otherwise fail the bind forever.
            let _ = std::fs::remove_file(path);
            let l = UnixListener::bind(path)?;
            Ok((Listener::Unix(l), path.display().to_string()))
        }
    }
}

/// A bound (but not yet running) daemon.
pub struct Server {
    listener: Listener,
    addr: String,
    admin: Option<(Listener, String)>,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the configured address. For `BindAddr::Tcp` with port 0 the
    /// kernel picks an ephemeral port; [`Server::local_addr`] reports it.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let (listener, addr) = bind_addr(&config.addr)?;
        let admin = match &config.admin {
            Some(spec) => Some(bind_addr(spec)?),
            None => None,
        };
        let mut registry = Registry::new(
            config.online.clone(),
            config.max_sessions,
            config.max_pending,
            config.analysis_cache,
        )
        .with_source_graph(config.source_graph.clone());
        if let Some(dir) = &config.store_dir {
            let store = Store::open(dir, config.retention, config.checkpoint_every)?;
            registry = registry.with_store(store, config.max_live);
            let recovered = registry.recover();
            if !recovered.is_empty() {
                incprof_obs::info!(
                    "store: {} session(s) recoverable under {}",
                    recovered.len(),
                    dir.display()
                );
            }
        }
        let shared = Arc::new(Shared {
            config,
            registry,
            shutdown: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            queue_cond: Condvar::new(),
        });
        Ok(Server {
            listener,
            addr,
            admin,
            shared,
        })
    }

    /// The bound address: `ip:port` for TCP, the path for Unix.
    pub fn local_addr(&self) -> &str {
        &self.addr
    }

    /// Spawn the acceptor and worker threads and return a handle.
    pub fn start(self) -> io::Result<ServerHandle> {
        let mut threads = Vec::with_capacity(self.shared.config.workers + 2);
        for i in 0..self.shared.config.workers.max(1) {
            let shared = Arc::clone(&self.shared);
            let t = std::thread::Builder::new()
                .name(format!("incprof-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))?;
            threads.push(t);
        }
        let mut admin_addr = None;
        if let Some((listener, addr)) = self.admin {
            let shared = Arc::clone(&self.shared);
            let t = std::thread::Builder::new()
                .name("incprof-serve-admin".to_string())
                .spawn(move || crate::admin::admin_loop(&listener, &shared))?;
            threads.push(t);
            admin_addr = Some(addr);
        }
        let shared = Arc::clone(&self.shared);
        let listener = self.listener;
        let acceptor = std::thread::Builder::new()
            .name("incprof-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &shared))?;
        threads.push(acceptor);
        Ok(ServerHandle {
            shared: self.shared,
            addr: self.addr,
            admin_addr,
            threads,
        })
    }
}

/// Handle to a running daemon.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: String,
    admin_addr: Option<String>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (`ip:port` or Unix path).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The admin socket's bound address, when one was configured.
    pub fn admin_addr(&self) -> Option<&str> {
        self.admin_addr.as_deref()
    }

    /// Number of live sessions.
    pub fn active_sessions(&self) -> usize {
        self.shared.registry.active()
    }

    /// Flip the shutdown flag without joining (idempotent; a `Shutdown`
    /// frame does the same from the wire).
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.queue_cond.notify_all();
        wake_acceptor(&self.shared.config.addr, &self.addr);
        if let (Some(spec), Some(addr)) = (&self.shared.config.admin, &self.admin_addr) {
            wake_acceptor(spec, addr);
        }
    }

    /// Whether shutdown has been requested (by flag or by frame).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Block until shutdown is requested — by a `Shutdown` frame from
    /// the wire or by `external` flipping true (e.g. a SIGINT flag).
    pub fn wait(&self, external: Option<&AtomicBool>) {
        loop {
            if self.shared.shutting_down() {
                return;
            }
            if let Some(flag) = external {
                if flag.load(Ordering::Acquire) {
                    return;
                }
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Gracefully stop: flag, wake, join every thread, drain every
    /// session's pending queue, and release the Unix socket file.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// [`ServerHandle::shutdown`], then render one final admin
    /// exposition reflecting the drained state — the `--final-scrape`
    /// snapshot a scraper would have seen just before exit.
    pub fn shutdown_scraped(mut self) -> String {
        self.shutdown_inner();
        crate::admin::render_exposition(&self.shared.registry, Instant::now())
    }

    fn shutdown_inner(&mut self) {
        self.request_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let drained = self.shared.registry.active() as u64;
        self.shared.registry.drain_all();
        incprof_obs::recorder().record(incprof_obs::EventKind::Shutdown, drained, 0);
        if let BindAddr::Unix(path) = &self.shared.config.addr {
            let _ = std::fs::remove_file(path);
        }
        if let Some(BindAddr::Unix(path)) = &self.shared.config.admin {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Dial the listener once so a blocking `accept` observes the flag.
pub fn wake_acceptor(bind: &BindAddr, addr: &str) {
    match bind {
        BindAddr::Tcp(_) => {
            if let Ok(parsed) = addr.parse() {
                let _ = TcpStream::connect_timeout(&parsed, Duration::from_millis(250));
            }
        }
        BindAddr::Unix(path) => {
            let _ = UnixStream::connect(path);
        }
    }
}

fn accept_loop(listener: &Listener, shared: &Shared) {
    loop {
        let conn = match listener.accept() {
            Ok(conn) => conn,
            Err(e) => {
                if shared.shutting_down() {
                    return;
                }
                incprof_obs::warn!("accept failed: {e}");
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shared.shutting_down() {
            return;
        }
        incprof_obs::counter(incprof_obs::names::SERVE_CONNS_ACCEPTED).inc();
        let mut q = lock(&shared.queue);
        if q.len() >= shared.config.backlog {
            drop(q);
            // Explicit backpressure instead of unbounded queueing.
            incprof_obs::counter(incprof_obs::names::SERVE_BUSY_REPLIES).inc();
            incprof_obs::recorder().record(incprof_obs::EventKind::BusyReply, 0, BUSY_CONN_BACKLOG);
            let mut conn = conn;
            let _ = write_frame(&mut conn, &Frame::empty(FrameType::Busy, 0));
            continue;
        }
        q.push_back(conn);
        drop(q);
        shared.queue_cond.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(conn) = q.pop_front() {
                    break Some(conn);
                }
                if shared.shutting_down() {
                    break None;
                }
                let (guard, _timeout) = shared
                    .queue_cond
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                q = guard;
            }
        };
        match conn {
            Some(conn) => handle_conn(conn, shared),
            None => return,
        }
    }
}

/// Serve one connection until it closes, errors, idles out, or the
/// daemon drains. Framing violations answer with a typed error and then
/// drop the connection (the stream is no longer frame-aligned);
/// payload-level problems answer with a typed error and keep going.
fn handle_conn(mut conn: Conn, shared: &Shared) {
    if conn.set_read_timeout(shared.config.read_timeout).is_err() {
        return;
    }
    let idle_limit = shared.config.idle_timeout.as_nanos();
    let mut idle_polls: u128 = 0;
    loop {
        if shared.shutting_down() {
            send_error(&mut conn, 0, ErrorCode::ShuttingDown, "daemon draining");
            return;
        }
        let outcome = match read_frame(&mut conn, shared.config.max_payload) {
            Ok(outcome) => outcome,
            Err(_) => return,
        };
        let frame = match outcome {
            ReadOutcome::Frame(f) => f,
            ReadOutcome::Closed => return,
            ReadOutcome::TimedOut => {
                idle_polls += 1;
                if idle_polls * shared.config.read_timeout.as_nanos() >= idle_limit {
                    return;
                }
                continue;
            }
            ReadOutcome::Malformed(e) => {
                incprof_obs::counter(incprof_obs::names::SERVE_DECODE_ERRORS).inc();
                let code = ErrorCode::of_frame_error(&e);
                incprof_obs::recorder().record(incprof_obs::EventKind::DecodeError, 0, code as u64);
                send_error(&mut conn, 0, code, &e.to_string());
                return;
            }
        };
        idle_polls = 0;
        incprof_obs::counter(incprof_obs::names::SERVE_FRAMES_IN).inc();
        incprof_obs::counter(incprof_obs::names::SERVE_BYTES_IN).add(frame.encoded_len() as u64);
        if !dispatch(&mut conn, shared, frame) {
            return;
        }
    }
}

/// Handle one good frame; returns false when the connection should end.
fn dispatch(conn: &mut Conn, shared: &Shared, frame: Frame) -> bool {
    match frame.frame_type {
        // session_id 0 asks the daemon to allocate; a nonzero id adopts
        // that id (idempotently, rehydrating shared-store state when it
        // exists) — the shard router's failover handoff path.
        FrameType::Open if frame.session_id == 0 => match shared.registry.open() {
            Ok((id, _)) => send(conn, &Frame::empty(FrameType::OpenAck, id)),
            Err(e) => send_error_info(conn, frame.session_id, &e),
        },
        FrameType::Open => match shared.registry.open_with_id(frame.session_id) {
            Ok(_) => send(conn, &Frame::empty(FrameType::OpenAck, frame.session_id)),
            Err(e) => send_error_info(conn, frame.session_id, &e),
        },
        FrameType::Snapshot => handle_snapshot(conn, shared, &frame),
        FrameType::Query => handle_query(conn, shared, &frame),
        FrameType::Close => match shared.registry.close(frame.session_id) {
            Some(session) => {
                let _ = lock(&session).drain();
                send(conn, &Frame::empty(FrameType::CloseAck, frame.session_id))
            }
            // Not live — but a store may still hold it (evicted or
            // recovered-but-untouched): closing deletes the durable
            // state without paying for a rehydration first.
            None if shared.registry.purge(frame.session_id) => {
                send(conn, &Frame::empty(FrameType::CloseAck, frame.session_id))
            }
            None => send_error(
                conn,
                frame.session_id,
                ErrorCode::UnknownSession,
                &format!("no session {}", frame.session_id),
            ),
        },
        FrameType::Ping => send(conn, &Frame::empty(FrameType::Pong, frame.session_id)),
        FrameType::Shutdown => {
            shared.shutdown.store(true, Ordering::Release);
            shared.queue_cond.notify_all();
            send(conn, &Frame::empty(FrameType::ShutdownAck, 0));
            // The acceptor may be parked in accept(); a ServerHandle
            // waiter will dial it, but wake it here too so a bare
            // wire-initiated shutdown also terminates promptly.
            wake_acceptor(&shared.config.addr, &local_addr_of(shared));
            false
        }
        // Admin requests are only answered on the admin socket: the
        // data plane stays write-shaped and the read-only surface can
        // be firewalled separately.
        FrameType::Scrape | FrameType::TraceGet | FrameType::RecorderDump | FrameType::Health => {
            send_error(
                conn,
                frame.session_id,
                ErrorCode::BadType,
                &format!("{:?} is admin-only; use the admin socket", frame.frame_type),
            )
        }
        // Checkpoint frames exist only inside session stores on disk.
        FrameType::Checkpoint => send_error(
            conn,
            frame.session_id,
            ErrorCode::BadType,
            "Checkpoint is an on-disk record type, not a wire request",
        ),
        // A reply type arriving as a request is a confused peer.
        FrameType::OpenAck
        | FrameType::SnapshotAck
        | FrameType::Report
        | FrameType::CloseAck
        | FrameType::Pong
        | FrameType::ShutdownAck
        | FrameType::Busy
        | FrameType::Error
        | FrameType::ScrapeReply
        | FrameType::TraceReply
        | FrameType::RecorderReply
        | FrameType::HealthReply => send_error(
            conn,
            frame.session_id,
            ErrorCode::BadType,
            &format!("{:?} is a reply type", frame.frame_type),
        ),
    }
}

fn local_addr_of(shared: &Shared) -> String {
    match &shared.config.addr {
        BindAddr::Tcp(spec) => spec.clone(),
        BindAddr::Unix(path) => path.display().to_string(),
    }
}

fn handle_snapshot(conn: &mut Conn, shared: &Shared, frame: &Frame) -> bool {
    let received_at = Instant::now();
    // A traced frame opens a wire-linked root span; every span opened
    // below on this thread (the online observation, core's pipeline
    // spans) auto-inherits into the same trace tree. Untraced frames
    // open nothing — the hot path records zero spans — and the traced
    // path is deliberately held to two server-side spans per push
    // (root + observe): decode, enqueue, and drain all happen right
    // here on one thread under one session lock, so separate spans for
    // them would triple the tracing tax to say "same place, same time".
    let traced = frame.trace.is_some();
    let _root = frame.trace.map(|tw| {
        incprof_obs::global().spans().enter_traced(
            incprof_obs::names::SERVE_TRACE_SNAPSHOT,
            tw.trace_id,
            tw.parent_span,
        )
    });
    let gmon = match GmonData::decode(&frame.payload) {
        Ok(g) => g,
        Err(e) => {
            incprof_obs::counter(incprof_obs::names::SERVE_DECODE_ERRORS).inc();
            incprof_obs::recorder().record(
                incprof_obs::EventKind::DecodeError,
                frame.session_id,
                ErrorCode::BadPayload as u64,
            );
            return send_error(
                conn,
                frame.session_id,
                ErrorCode::BadPayload,
                &format!("gmon decode: {e}"),
            );
        }
    };
    let sample_index = gmon.sample_index;
    let mut gmon = Some(gmon);
    // Enqueue and drain under one lock hold: the queue bound gives
    // overflow a BUSY answer, and atomicity guarantees this worker
    // drains (and can ack) the frame it just enqueued.
    let handled = with_session(shared, frame.session_id, |session| {
        let sent = match session.enqueue(
            // lint: allow(P01, with_session invokes its closure at most once, so the Option is always populated here)
            gmon.take().expect("with_session runs its closure once"),
            received_at,
        ) {
            Err(e) => send_error_info(conn, frame.session_id, &e),
            Ok(Enqueue::Busy) => {
                incprof_obs::counter(incprof_obs::names::SERVE_BUSY_REPLIES).inc();
                incprof_obs::recorder().record(
                    incprof_obs::EventKind::BusyReply,
                    frame.session_id,
                    BUSY_SESSION_QUEUE,
                );
                send(conn, &Frame::empty(FrameType::Busy, frame.session_id))
            }
            // A retransmission of the most recently acked snapshot
            // (client reconnect or router failover): replay the
            // remembered ack so at-least-once delivery is invisible.
            Ok(Enqueue::Duplicate) => match session.last_ack() {
                Some(ack) => {
                    let payload = SnapshotAck {
                        interval: ack.sample_index,
                        phase: ack.observation.phase as u32,
                        new_phase: ack.observation.new_phase,
                        transition: ack.observation.transition,
                        capped: ack.observation.capped,
                    }
                    .encode();
                    send(
                        conn,
                        &Frame::with_payload(FrameType::SnapshotAck, frame.session_id, payload),
                    )
                }
                None => send_error(
                    conn,
                    frame.session_id,
                    ErrorCode::Internal,
                    "duplicate verdict without a remembered ack",
                ),
            },
            Ok(Enqueue::Accepted) => match session.drain_traced(traced) {
                Err(e) => send_error_info(conn, frame.session_id, &e),
                Ok(acks) => {
                    let Some(ack) = acks.iter().find(|a| a.sample_index == sample_index) else {
                        return send_error(
                            conn,
                            frame.session_id,
                            ErrorCode::Internal,
                            "drained batch missed the enqueued frame",
                        );
                    };
                    let payload = SnapshotAck {
                        interval: ack.sample_index,
                        phase: ack.observation.phase as u32,
                        new_phase: ack.observation.new_phase,
                        transition: ack.observation.transition,
                        capped: ack.observation.capped,
                    }
                    .encode();
                    send(
                        conn,
                        &Frame::with_payload(FrameType::SnapshotAck, frame.session_id, payload),
                    )
                }
            },
        };
        session.maybe_checkpoint();
        sent
    });
    let replied = match handled {
        Some(sent) => sent,
        None => send_error(
            conn,
            frame.session_id,
            ErrorCode::UnknownSession,
            &format!("no session {}", frame.session_id),
        ),
    };
    // Pushes grow the live set (transparent rehydration included), so
    // this is where the LRU bound is re-established. No-op without a
    // store or an eviction limit.
    shared.registry.maybe_evict(Instant::now());
    replied
}

/// Flight-recorder `b` tag on [`incprof_obs::EventKind::BusyReply`]:
/// the acceptor's bounded connection queue was full.
pub const BUSY_CONN_BACKLOG: u64 = 1;
/// Flight-recorder `b` tag: a session's bounded pending queue was full.
pub const BUSY_SESSION_QUEUE: u64 = 2;

fn handle_query(conn: &mut Conn, shared: &Shared, frame: &Frame) -> bool {
    let received_at = Instant::now();
    // Same inheritance contract as `handle_snapshot`: the analysis
    // cache's `core.cache.analyze` span (and the whole pipeline under
    // it) joins this trace automatically via the thread-local stack.
    let _root = frame.trace.map(|tw| {
        incprof_obs::global().spans().enter_traced(
            incprof_obs::names::SERVE_TRACE_QUERY,
            tw.trace_id,
            tw.parent_span,
        )
    });
    let mode = match frame.payload.first() {
        None | Some(0) => ReportMode::Full,
        Some(1) => ReportMode::AnalysisOnly,
        Some(other) => {
            return send_error(
                conn,
                frame.session_id,
                ErrorCode::BadPayload,
                &format!("unknown query mode {other}"),
            );
        }
    };
    let json = with_session(shared, frame.session_id, |session| {
        session.touch(received_at);
        let json = session.report_json(&shared.config.detector, mode);
        // The cache is freshest right after a report; a due checkpoint
        // written here rehydrates warm.
        session.maybe_checkpoint();
        json
    });
    let Some(json) = json else {
        return send_error(
            conn,
            frame.session_id,
            ErrorCode::UnknownSession,
            &format!("no session {}", frame.session_id),
        );
    };
    send(
        conn,
        &Frame::with_payload(FrameType::Report, frame.session_id, json.into_bytes()),
    )
}

/// Fetch session `id` and run `f` on it under its lock, transparently
/// rehydrating from the store when needed. The evicted check happens
/// under the same lock `f` runs under — eviction marks a session while
/// holding that lock — so `f` can never mutate an object the registry
/// has already handed over to disk; a stale `Arc` is dropped and the
/// lookup retried. Returns `None` when the session exists nowhere.
fn with_session<R>(shared: &Shared, id: u64, f: impl FnOnce(&mut Session) -> R) -> Option<R> {
    let mut f = Some(f);
    // Two iterations suffice in practice (fetch, lose the eviction race
    // at most once, rehydrate); the bound is paranoia against a pathological
    // evict/touch interleave, after which the client simply retries.
    for _ in 0..4 {
        let session = shared.registry.get(id)?;
        let mut session = lock(&session);
        if session.is_evicted() {
            continue;
        }
        // lint: allow(P01, the loop returns on the same iteration it takes the closure, so it is taken at most once)
        return Some(f.take().expect("closure consumed once")(&mut session));
    }
    None
}

/// Write a frame, counting it; returns false when the peer is gone.
fn send(conn: &mut Conn, frame: &Frame) -> bool {
    match write_frame(conn, frame) {
        Ok(n) => {
            incprof_obs::counter(incprof_obs::names::SERVE_FRAMES_OUT).inc();
            incprof_obs::counter(incprof_obs::names::SERVE_BYTES_OUT).add(n as u64);
            true
        }
        Err(_) => false,
    }
}

fn send_error(conn: &mut Conn, session_id: u64, code: ErrorCode, message: &str) -> bool {
    send_error_info(conn, session_id, &ErrorInfo::new(code, message))
}

fn send_error_info(conn: &mut Conn, session_id: u64, info: &ErrorInfo) -> bool {
    incprof_obs::recorder().record(
        incprof_obs::EventKind::ErrorReply,
        session_id,
        info.code as u64,
    );
    // The postmortem hook: every typed error reply dumps the recorder
    // tail at debug level, so `INCPROF_LOG=debug` shows the events
    // leading up to the failure without an admin round trip. Gated so
    // the disabled path pays one atomic load, not a ring scan.
    if incprof_obs::logger::enabled(incprof_obs::Level::Debug, module_path!()) {
        incprof_obs::debug!(
            "error reply {:?} (session {session_id}): {}",
            info.code,
            info.message
        );
        for e in incprof_obs::recorder().snapshot().iter().rev().take(16) {
            incprof_obs::debug!(
                "  recorder[{}] t={}ns {:?} a={} b={}",
                e.seq,
                e.t_ns,
                e.kind,
                e.a,
                e.b
            );
        }
    }
    send(
        conn,
        &Frame::with_payload(FrameType::Error, session_id, info.encode()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_ephemeral_tcp_reports_real_port() {
        let server = Server::bind(ServeConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        assert!(addr.starts_with("127.0.0.1:"), "{addr}");
        assert!(!addr.ends_with(":0"), "ephemeral port must be resolved");
        let handle = server.start().unwrap();
        assert_eq!(handle.active_sessions(), 0);
        handle.shutdown();
    }

    #[test]
    fn bind_unix_socket_and_shutdown_removes_file() {
        let path = std::env::temp_dir().join(format!("incprof_serve_{}.sock", std::process::id()));
        let config = ServeConfig {
            addr: BindAddr::Unix(path.clone()),
            ..ServeConfig::default()
        };
        let handle = Server::bind(config).unwrap().start().unwrap();
        assert!(path.exists());
        handle.shutdown();
        assert!(!path.exists(), "socket file must be cleaned up");
    }

    #[test]
    fn wire_shutdown_frame_stops_the_daemon() {
        let handle = Server::bind(ServeConfig::default())
            .unwrap()
            .start()
            .unwrap();
        let mut conn = TcpStream::connect(handle.addr()).unwrap();
        write_frame(&mut conn, &Frame::empty(FrameType::Shutdown, 0)).unwrap();
        match read_frame(&mut conn, DEFAULT_MAX_PAYLOAD).unwrap() {
            ReadOutcome::Frame(f) => assert_eq!(f.frame_type, FrameType::ShutdownAck),
            other => panic!("expected ShutdownAck, got {other:?}"),
        }
        handle.wait(None);
        assert!(handle.shutdown_requested());
        handle.shutdown();
    }
}
