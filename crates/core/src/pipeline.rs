//! The end-to-end phase-detection pipeline (paper §V, Fig. 1 right side).
//!
//! `SampleSeries` (cumulative) → interval profiles (delta) →
//! [`IntervalMatrix`] → clustering (k-means + elbow by default) →
//! Algorithm 1 → [`PhaseAnalysis`].

use crate::algorithm1::{identify_instrumentation, Algorithm1Config, ClusterIntervals};
use crate::types::Phase;
use incprof_cluster::{
    dbscan, ChainConfig, Dataset, DbscanParams, KMeansConfig, KSelectionMethod, PairwiseDistances,
    Scaling, SweepChains,
};
use incprof_collect::{IntervalMatrix, SampleSeries};
use incprof_profile::{FunctionTable, ProfileError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which clustering algorithm drives phase detection.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusteringMethod {
    /// k-means swept over `k = 1..=k_max` with the given k-selection
    /// criterion (the paper's configuration: `k_max = 8`, elbow).
    KMeans {
        /// Maximum k to sweep (paper: 8).
        k_max: usize,
        /// Elbow (paper default) or silhouette.
        selection: KSelectionMethod,
    },
    /// DBSCAN (the paper's negative ablation). Noise intervals are folded
    /// into the nearest discovered cluster; if DBSCAN finds no clusters at
    /// all, every interval becomes one phase.
    Dbscan(DbscanParams),
}

impl Default for ClusteringMethod {
    fn default() -> Self {
        ClusteringMethod::KMeans {
            k_max: 8,
            selection: KSelectionMethod::Elbow,
        }
    }
}

/// Which profile quantities form the clustering feature vectors.
///
/// The paper clusters on self times alone, having "experimented with
/// including or using other profiling data (number of calls, execution
/// time of children, etc.) but have not found these to improve the
/// results, and sometimes to worsen them" (§V-A). The other variants
/// exist to reproduce that ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FeatureSet {
    /// Per-function self time in seconds (the paper's configuration).
    #[default]
    SelfTime,
    /// Self time plus raw per-function call counts (mixed scales — the
    /// configuration the paper found could *worsen* results).
    SelfTimeAndCalls,
    /// Self time plus per-function child (callee) time.
    SelfTimeAndChildTime,
}

/// Errors from the phase-detection pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// The interval matrix has no intervals (empty collection run).
    NoIntervals,
    /// The interval matrix has intervals but no observed functions.
    NoFunctions,
    /// Profile data was inconsistent (non-monotonic cumulative series).
    Profile(ProfileError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::NoIntervals => write!(f, "no intervals collected"),
            PipelineError::NoFunctions => write!(f, "no functions observed in any interval"),
            PipelineError::Profile(e) => write!(f, "profile data error: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<ProfileError> for PipelineError {
    fn from(e: ProfileError) -> Self {
        PipelineError::Profile(e)
    }
}

/// Phase-detection configuration. [`PhaseDetector::default`] matches the
/// paper: k-means k = 1..8, elbow selection, raw self-time features, 95%
/// coverage threshold.
#[derive(Debug, Clone)]
pub struct PhaseDetector {
    /// Clustering algorithm and its parameters.
    pub clustering: ClusteringMethod,
    /// Which profile quantities to cluster on.
    pub features: FeatureSet,
    /// Feature scaling applied to the interval matrix before clustering.
    pub scaling: Scaling,
    /// Algorithm 1 coverage threshold (paper: 0.95).
    pub coverage_threshold: f64,
    /// Seed for the k-means++ initialization.
    pub seed: u64,
    /// k-means restarts per k.
    pub restarts: usize,
    /// Review cadence of the incremental k-means fold (see
    /// [`incprof_cluster::incremental`]): fresh candidates compete with
    /// the warm-started incumbent whenever the interval count is a
    /// positive multiple of this. `0` disables reviews.
    pub review_every: usize,
    /// Fresh single-restart candidates per review.
    pub review_candidates: usize,
    /// Stop the k sweep once the mean silhouette has strictly decreased
    /// twice in a row. Only applies under
    /// [`KSelectionMethod::Silhouette`]; the elbow method always needs
    /// the full WCSS curve.
    pub sweep_early_exit: bool,
}

impl Default for PhaseDetector {
    fn default() -> Self {
        PhaseDetector {
            clustering: ClusteringMethod::default(),
            features: FeatureSet::SelfTime,
            scaling: Scaling::None,
            coverage_threshold: 0.95,
            seed: 42,
            restarts: 8,
            review_every: 16,
            review_candidates: 2,
            sweep_early_exit: true,
        }
    }
}

/// The pipeline's output: phases with selected instrumentation sites,
/// plus the per-k diagnostics used for reporting and ablations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseAnalysis {
    /// Number of phases detected.
    pub k: usize,
    /// Phase index per interval.
    pub assignments: Vec<usize>,
    /// The phases, each with its Algorithm 1 sites.
    pub phases: Vec<Phase>,
    /// WCSS per swept k (k-means only; empty for DBSCAN).
    pub wcss_sweep: Vec<f64>,
    /// Mean silhouette per swept k (k-means only).
    pub silhouette_sweep: Vec<Option<f64>>,
}

impl PhaseAnalysis {
    /// Total distinct ⟨function, type⟩ sites across all phases.
    pub fn total_sites(&self) -> usize {
        let mut seen = std::collections::BTreeSet::new();
        for p in &self.phases {
            for s in &p.sites {
                seen.insert((s.function, s.inst_type));
            }
        }
        seen.len()
    }
}

impl PhaseDetector {
    /// Paper-default detector.
    pub fn new() -> PhaseDetector {
        Self::default()
    }

    /// A stable 64-bit fingerprint of this configuration (FNV-1a over
    /// every field, floats by bit pattern). Two detectors with equal
    /// fingerprints are behaviorally identical — the key the incremental
    /// [`crate::cache::AnalysisCache`] memoizes results under, so a
    /// config change is detected as a cache invalidation rather than
    /// silently served stale.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a, 64-bit.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        match &self.clustering {
            ClusteringMethod::KMeans { k_max, selection } => {
                mix(1);
                mix(*k_max as u64);
                mix(match selection {
                    KSelectionMethod::Elbow => 0,
                    KSelectionMethod::Silhouette => 1,
                });
            }
            ClusteringMethod::Dbscan(p) => {
                mix(2);
                mix(p.eps.to_bits());
                mix(p.min_points as u64);
            }
        }
        mix(match self.features {
            FeatureSet::SelfTime => 0,
            FeatureSet::SelfTimeAndCalls => 1,
            FeatureSet::SelfTimeAndChildTime => 2,
        });
        mix(match self.scaling {
            Scaling::None => 0,
            Scaling::MinMax => 1,
            Scaling::ZScore => 2,
            Scaling::RowFraction => 3,
        });
        mix(self.coverage_threshold.to_bits());
        mix(self.seed);
        mix(self.restarts as u64);
        mix(self.review_every as u64);
        mix(self.review_candidates as u64);
        mix(u64::from(self.sweep_early_exit));
        h
    }

    /// The incremental-fold configuration this detector clusters with.
    pub(crate) fn chain_config(&self) -> ChainConfig {
        ChainConfig {
            base: KMeansConfig {
                restarts: self.restarts,
                ..KMeansConfig::new(1).with_seed(self.seed)
            },
            review_every: self.review_every,
            review_candidates: self.review_candidates,
        }
    }

    /// Detect phases from an already-built interval matrix.
    pub fn detect(&self, matrix: &IntervalMatrix) -> Result<PhaseAnalysis, PipelineError> {
        let _detect_span = incprof_obs::span(incprof_obs::names::CORE_PIPELINE_DETECT);
        if matrix.n_intervals() == 0 {
            return Err(PipelineError::NoIntervals);
        }
        if matrix.n_functions() == 0 {
            return Err(PipelineError::NoFunctions);
        }

        let features_span = incprof_obs::span(incprof_obs::names::CORE_PIPELINE_FEATURES);
        let raw = Dataset::from_rows(self.build_features(matrix));
        let data = self.scaling.apply(&raw);
        drop(features_span);

        self.detect_scaled(matrix, &data, None, None)
    }

    /// Cluster already-scaled feature rows `data` (as produced by
    /// [`PhaseDetector::build_features`] + [`Scaling::apply`] over
    /// `matrix`), optionally consuming a precomputed pairwise-distance
    /// matrix and persistent k-means chains. This is the entry point
    /// [`crate::cache::AnalysisCache`] uses to reuse distance and
    /// clustering work across streamed queries; with `pair = None` and
    /// `chains = None` it is exactly the tail of
    /// [`PhaseDetector::detect`] — the clustering is the same canonical
    /// fold either way ([`incprof_cluster::incremental`]), `chains`
    /// merely resumes it from cached state instead of replaying from row
    /// one.
    pub(crate) fn detect_scaled(
        &self,
        matrix: &IntervalMatrix,
        data: &Dataset,
        pair: Option<&PairwiseDistances>,
        chains: Option<&mut SweepChains>,
    ) -> Result<PhaseAnalysis, PipelineError> {
        if matrix.n_intervals() == 0 {
            return Err(PipelineError::NoIntervals);
        }
        if matrix.n_functions() == 0 {
            return Err(PipelineError::NoFunctions);
        }

        let cluster_span = incprof_obs::span(incprof_obs::names::CORE_PIPELINE_CLUSTER);
        let (assignments, centroids, wcss_sweep, silhouette_sweep) = match &self.clustering {
            ClusteringMethod::KMeans { k_max, selection } => {
                let cfg = self.chain_config();
                let mut fresh = SweepChains::new();
                let chains = chains.unwrap_or(&mut fresh);
                let sel =
                    chains.evaluate(data, *k_max, *selection, &cfg, pair, self.sweep_early_exit);
                (
                    sel.result.assignments.clone(),
                    sel.result.centroids.clone(),
                    sel.sweep.wcss.clone(),
                    sel.sweep.silhouettes.clone(),
                )
            }
            ClusteringMethod::Dbscan(params) => {
                let labels = dbscan(data, *params);
                let assignments = fold_noise(data, &labels);
                let k = assignments.iter().copied().max().unwrap_or(0) + 1;
                let centroids = cluster_means(data, &assignments, k);
                (assignments, centroids, Vec::new(), Vec::new())
            }
        };
        drop(cluster_span);

        let algo1_span = incprof_obs::span(incprof_obs::names::CORE_PIPELINE_ALGORITHM1);
        let k = assignments.iter().copied().max().unwrap_or(0) + 1;
        let clusters: Vec<ClusterIntervals> = (0..k)
            .map(|c| {
                let intervals: Vec<usize> = assignments
                    .iter()
                    .enumerate()
                    .filter(|&(_, &a)| a == c)
                    .map(|(i, _)| i)
                    .collect();
                let centroid_dist = intervals
                    .iter()
                    .map(|&i| incprof_cluster::distance::euclidean(data.row(i), centroids.row(c)))
                    .collect();
                ClusterIntervals {
                    intervals,
                    centroid_dist,
                }
            })
            .collect();

        let phases = identify_instrumentation(
            matrix,
            &clusters,
            Algorithm1Config {
                coverage_threshold: self.coverage_threshold,
            },
        );
        drop(algo1_span);

        incprof_obs::counter(incprof_obs::names::CORE_PIPELINE_DETECT_RUNS).inc();
        incprof_obs::debug!(
            "phase detection: k = {k} over {} intervals × {} functions",
            matrix.n_intervals(),
            matrix.n_functions()
        );
        Ok(PhaseAnalysis {
            k,
            assignments,
            phases,
            wcss_sweep,
            silhouette_sweep,
        })
    }

    /// Assemble clustering feature rows per [`FeatureSet`].
    pub(crate) fn build_features(&self, matrix: &IntervalMatrix) -> Vec<Vec<f64>> {
        let n = matrix.n_intervals();
        let d = matrix.n_functions();
        (0..n)
            .map(|i| {
                let mut row: Vec<f64> = matrix.feature_row(i).to_vec();
                match self.features {
                    FeatureSet::SelfTime => {}
                    FeatureSet::SelfTimeAndCalls => {
                        row.extend((0..d).map(|c| matrix.calls(i, c) as f64));
                    }
                    FeatureSet::SelfTimeAndChildTime => {
                        row.extend((0..d).map(|c| matrix.child_secs(i, c)));
                    }
                }
                row
            })
            .collect()
    }

    /// Detect phases for several independent runs concurrently, one
    /// [`incprof_par`] pool task per matrix.
    ///
    /// Within a task the nested clustering parallelism runs sequentially
    /// (the pool does not nest), so each entry of the result is
    /// bit-identical to calling [`PhaseDetector::detect`] on that matrix
    /// alone — this only buys wall-clock time when analyzing a batch
    /// (e.g. one run per rank, or an experiment sweep).
    pub fn detect_many(
        &self,
        matrices: &[IntervalMatrix],
    ) -> Vec<Result<PhaseAnalysis, PipelineError>> {
        let _span = incprof_obs::span(incprof_obs::names::CORE_PIPELINE_DETECT_MANY);
        incprof_par::Pool::current().map_index(matrices.len(), 1, |i| self.detect(&matrices[i]))
    }

    /// Detect phases from a cumulative sample series (runs the delta step
    /// first).
    pub fn detect_series(&self, series: &SampleSeries) -> Result<PhaseAnalysis, PipelineError> {
        let _series_span = incprof_obs::span(incprof_obs::names::CORE_PIPELINE_DETECT_SERIES);
        let delta_span = incprof_obs::span(incprof_obs::names::CORE_PIPELINE_DELTA);
        let intervals = series.interval_profiles()?;
        drop(delta_span);
        let matrix_span = incprof_obs::span(incprof_obs::names::CORE_PIPELINE_MATRIX);
        let matrix = IntervalMatrix::from_interval_profiles(&intervals);
        drop(matrix_span);
        self.detect(&matrix)
    }

    /// Detect phases through the full paper-fidelity path: render every
    /// cumulative sample to a gprof text report, parse the reports back,
    /// delta, and analyze. Returns the analysis, the matrix it ran on,
    /// and the function table reconstructed from the reports (ids in the
    /// analysis refer to this table).
    pub fn detect_series_via_reports(
        &self,
        series: &SampleSeries,
        table: &FunctionTable,
    ) -> Result<(PhaseAnalysis, IntervalMatrix, FunctionTable), PipelineError> {
        let (intervals, parsed_table) =
            incprof_collect::report_path::intervals_via_reports(series, table)?;
        let matrix = IntervalMatrix::from_interval_profiles(&intervals);
        let analysis = self.detect(&matrix)?;
        Ok((analysis, matrix, parsed_table))
    }
}

/// Replace DBSCAN noise labels with the nearest cluster, or cluster 0
/// when no clusters exist.
fn fold_noise(data: &Dataset, labels: &[incprof_cluster::DbscanLabel]) -> Vec<usize> {
    let k = labels
        .iter()
        .filter_map(|l| l.cluster())
        .max()
        .map(|m| m + 1)
        .unwrap_or(0);
    if k == 0 {
        return vec![0; labels.len()];
    }
    let pre: Vec<Option<usize>> = labels.iter().map(|l| l.cluster()).collect();
    labels
        .iter()
        .enumerate()
        .map(|(i, l)| match l.cluster() {
            Some(c) => c,
            None => {
                // Nearest labeled point's cluster.
                let mut best = 0;
                let mut best_d = f64::INFINITY;
                for (j, c) in pre.iter().enumerate() {
                    if let Some(c) = c {
                        let d = incprof_cluster::distance::sq_euclidean(data.row(i), data.row(j));
                        if d < best_d {
                            best_d = d;
                            best = *c;
                        }
                    }
                }
                best
            }
        })
        .collect()
}

/// Mean point per cluster (centroids for DBSCAN-derived assignments).
fn cluster_means(data: &Dataset, assignments: &[usize], k: usize) -> Dataset {
    let d = data.ncols();
    let mut sums = Dataset::zeros(k, d);
    let mut counts = vec![0usize; k];
    for (i, &c) in assignments.iter().enumerate() {
        counts[c] += 1;
        let row = data.row(i);
        let target = sums.row_mut(c);
        for j in 0..d {
            target[j] += row[j];
        }
    }
    for c in 0..k {
        if counts[c] > 0 {
            let inv = 1.0 / counts[c] as f64;
            for v in sums.row_mut(c) {
                *v *= inv;
            }
        }
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::InstrumentationType;
    use incprof_profile::{FlatProfile, FunctionId, FunctionStats};

    fn profile(entries: &[(u32, u64, u64)]) -> FlatProfile {
        let mut p = FlatProfile::new();
        for &(id, self_ns, calls) in entries {
            p.set(
                FunctionId(id),
                FunctionStats {
                    self_time: self_ns,
                    calls,
                    child_time: 0,
                },
            );
        }
        p
    }

    /// A synthetic run with two planted phases: init (function 0, bursty
    /// calls) then solve (function 1, long-lived).
    fn planted_two_phase_matrix() -> IntervalMatrix {
        let mut intervals = Vec::new();
        for _ in 0..10 {
            intervals.push(profile(&[(0, 1_000_000_000, 50)]));
        }
        for _ in 0..20 {
            intervals.push(profile(&[(1, 1_000_000_000, 0)]));
        }
        IntervalMatrix::from_interval_profiles(&intervals)
    }

    #[test]
    fn detects_planted_two_phases() {
        let matrix = planted_two_phase_matrix();
        let analysis = PhaseDetector::new().detect(&matrix).unwrap();
        assert_eq!(analysis.k, 2);
        // One phase of 10 intervals, one of 20.
        let mut sizes: Vec<usize> = analysis.phases.iter().map(|p| p.intervals.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![10, 20]);
        // Each phase selects its dominant function with the right type.
        for p in &analysis.phases {
            assert_eq!(p.sites.len(), 1);
            let s = &p.sites[0];
            if p.intervals.len() == 10 {
                assert_eq!(s.function, FunctionId(0));
                assert_eq!(s.inst_type, InstrumentationType::Body);
            } else {
                assert_eq!(s.function, FunctionId(1));
                assert_eq!(s.inst_type, InstrumentationType::Loop);
            }
            assert_eq!(s.phase_pct, 100.0);
        }
    }

    #[test]
    fn uniform_run_is_one_phase() {
        let intervals: Vec<FlatProfile> =
            (0..12).map(|_| profile(&[(0, 1_000_000_000, 3)])).collect();
        let matrix = IntervalMatrix::from_interval_profiles(&intervals);
        let analysis = PhaseDetector::new().detect(&matrix).unwrap();
        assert_eq!(analysis.k, 1);
        assert_eq!(analysis.phases[0].sites.len(), 1);
    }

    #[test]
    fn empty_matrix_errors() {
        let matrix = IntervalMatrix::from_interval_profiles(&[]);
        assert!(matches!(
            PhaseDetector::new().detect(&matrix),
            Err(PipelineError::NoIntervals)
        ));
        let matrix = IntervalMatrix::from_interval_profiles(&[FlatProfile::new()]);
        assert!(matches!(
            PhaseDetector::new().detect(&matrix),
            Err(PipelineError::NoFunctions)
        ));
    }

    #[test]
    fn deterministic_across_runs() {
        let matrix = planted_two_phase_matrix();
        let det = PhaseDetector::new();
        let a = det.detect(&matrix).unwrap();
        let b = det.detect(&matrix).unwrap();
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.phases, b.phases);
    }

    #[test]
    fn detect_many_matches_sequential_detects() {
        let matrices = vec![
            planted_two_phase_matrix(),
            IntervalMatrix::from_interval_profiles(
                &(0..12)
                    .map(|_| profile(&[(0, 1_000_000_000, 3)]))
                    .collect::<Vec<_>>(),
            ),
            IntervalMatrix::from_interval_profiles(&[]),
        ];
        let det = PhaseDetector::new();
        let many = det.detect_many(&matrices);
        assert_eq!(many.len(), 3);
        for (matrix, got) in matrices.iter().zip(&many) {
            match (det.detect(matrix), got) {
                (Ok(solo), Ok(batched)) => {
                    assert_eq!(solo.k, batched.k);
                    assert_eq!(solo.assignments, batched.assignments);
                    assert_eq!(solo.phases, batched.phases);
                    assert_eq!(solo.wcss_sweep, batched.wcss_sweep);
                }
                (Err(PipelineError::NoIntervals), Err(PipelineError::NoIntervals)) => {}
                (solo, batched) => panic!("mismatch: {solo:?} vs {batched:?}"),
            }
        }
    }

    #[test]
    fn dbscan_variant_finds_planted_phases() {
        let matrix = planted_two_phase_matrix();
        let det = PhaseDetector {
            clustering: ClusteringMethod::Dbscan(DbscanParams {
                eps: 0.1,
                min_points: 3,
            }),
            ..PhaseDetector::default()
        };
        let analysis = det.detect(&matrix).unwrap();
        assert_eq!(analysis.k, 2);
        assert!(analysis.wcss_sweep.is_empty());
    }

    #[test]
    fn dbscan_all_noise_becomes_one_phase() {
        // Spread intervals far apart with min_points too high for any core.
        let intervals: Vec<FlatProfile> = (0..5)
            .map(|i| profile(&[(0, (i as u64 + 1) * 1_000_000_000, 1)]))
            .collect();
        let matrix = IntervalMatrix::from_interval_profiles(&intervals);
        let det = PhaseDetector {
            clustering: ClusteringMethod::Dbscan(DbscanParams {
                eps: 0.001,
                min_points: 3,
            }),
            ..PhaseDetector::default()
        };
        let analysis = det.detect(&matrix).unwrap();
        assert_eq!(analysis.k, 1);
        assert_eq!(analysis.assignments, vec![0; 5]);
    }

    #[test]
    fn detect_series_runs_delta_first() {
        use incprof_profile::ProfileSnapshot;
        // Cumulative: function 0 grows for 5 samples, then function 1.
        let mut series = SampleSeries::new();
        let mut f0 = 0u64;
        let mut f1 = 0u64;
        for i in 0..10u64 {
            if i < 5 {
                f0 += 1_000_000_000;
            } else {
                f1 += 1_000_000_000;
            }
            let mut s = ProfileSnapshot {
                sample_index: i,
                timestamp_ns: i,
                ..Default::default()
            };
            s.flat.set(
                FunctionId(0),
                FunctionStats {
                    self_time: f0,
                    calls: i.min(5),
                    child_time: 0,
                },
            );
            if f1 > 0 {
                s.flat.set(
                    FunctionId(1),
                    FunctionStats {
                        self_time: f1,
                        calls: 0,
                        child_time: 0,
                    },
                );
            }
            series.push(s);
        }
        let analysis = PhaseDetector::new().detect_series(&series).unwrap();
        assert_eq!(analysis.k, 2);
    }

    #[test]
    fn silhouette_selection_variant_works() {
        let matrix = planted_two_phase_matrix();
        let det = PhaseDetector {
            clustering: ClusteringMethod::KMeans {
                k_max: 8,
                selection: KSelectionMethod::Silhouette,
            },
            ..PhaseDetector::default()
        };
        let analysis = det.detect(&matrix).unwrap();
        assert_eq!(analysis.k, 2);
        assert!(analysis.silhouette_sweep.iter().flatten().count() > 0);
    }

    #[test]
    fn total_sites_dedupes_across_phases() {
        let matrix = planted_two_phase_matrix();
        let analysis = PhaseDetector::new().detect(&matrix).unwrap();
        assert_eq!(analysis.total_sites(), 2);
    }

    #[test]
    fn scaled_features_still_detect_phases() {
        let matrix = planted_two_phase_matrix();
        for scaling in [Scaling::MinMax, Scaling::ZScore, Scaling::RowFraction] {
            let det = PhaseDetector {
                scaling,
                ..PhaseDetector::default()
            };
            let analysis = det.detect(&matrix).unwrap();
            assert_eq!(analysis.k, 2, "scaling {scaling:?} broke detection");
        }
    }
}
