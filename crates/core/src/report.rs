//! Paper-style table rendering for phase analyses.
//!
//! Renders a [`PhaseAnalysis`] in the layout of the paper's Tables II–VI:
//!
//! ```text
//! | Phase ID | HB ID | Discovered Site Function | Phase % | App % | Inst. Type |
//! ```
//!
//! plus an optional "Manual Instrumentation Sites" footer for the
//! side-by-side comparison the paper makes against human-chosen sites.

use crate::pipeline::PhaseAnalysis;
use crate::types::InstrumentationType;
use incprof_profile::FunctionId;
use std::fmt::Write as _;

/// A manually chosen instrumentation site (the paper's human baseline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManualSite {
    /// Function name as written in the paper's tables.
    pub function: String,
    /// Body or loop.
    pub inst_type: InstrumentationType,
}

impl ManualSite {
    /// Convenience constructor.
    pub fn new(function: impl Into<String>, inst_type: InstrumentationType) -> ManualSite {
        ManualSite {
            function: function.into(),
            inst_type,
        }
    }
}

/// Render the discovered-sites table with paper column headings.
///
/// `name_of` resolves function ids to display names.
pub fn render_sites_table<'a>(
    title: &str,
    analysis: &PhaseAnalysis,
    name_of: impl Fn(FunctionId) -> &'a str,
    manual: &[ManualSite],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "| {:<8} | {:<5} | {:<34} | {:>7} | {:>6} | {:<10} |",
        "Phase ID", "HB ID", "Discovered Site Function", "Phase %", "App %", "Inst. Type"
    );
    let _ = writeln!(out, "|{}|", "-".repeat(94));
    for phase in &analysis.phases {
        for site in &phase.sites {
            let _ = writeln!(
                out,
                "| {:<8} | {:<5} | {:<34} | {:>7.1} | {:>6.1} | {:<10} |",
                phase.id,
                site.hb_id,
                truncate(name_of(site.function), 34),
                site.phase_pct,
                site.app_pct,
                site.inst_type
            );
        }
    }
    if !manual.is_empty() {
        let _ = writeln!(out, "| Manual Instrumentation Sites{}|", " ".repeat(65));
        for m in manual {
            let _ = writeln!(
                out,
                "| {:<8} | {:<5} | {:<34} | {:>7} | {:>6} | {:<10} |",
                "",
                "",
                truncate(&m.function, 34),
                "",
                "",
                m.inst_type
            );
        }
    }
    out
}

/// Render the k-selection diagnostics (WCSS/silhouette per k).
pub fn render_k_sweep(analysis: &PhaseAnalysis) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "k-sweep (chosen k = {}):", analysis.k);
    let _ = writeln!(out, "{:>3} {:>14} {:>12}", "k", "WCSS", "silhouette");
    for (i, w) in analysis.wcss_sweep.iter().enumerate() {
        let s = analysis
            .silhouette_sweep
            .get(i)
            .and_then(|s| *s)
            .map(|v| format!("{v:.4}"))
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(out, "{:>3} {:>14.6} {:>12}", i + 1, w, s);
    }
    out
}

/// Render the phase assignment as a timeline band — the textual
/// equivalent of the colored phase bars over time in the paper's
/// figures. Phases 0-9 print as digits, further ones as letters.
pub fn render_timeline(analysis: &PhaseAnalysis) -> String {
    const GLYPHS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";
    let band: String = analysis
        .assignments
        .iter()
        .map(|&a| GLYPHS[a % GLYPHS.len()] as char)
        .collect();
    format!(
        "phase timeline ({} intervals):\n|{}|\n",
        analysis.assignments.len(),
        band
    )
}

/// Per-phase signatures: the top functions by mean per-interval self
/// time within the phase, with their time share — a human-readable
/// answer to "what *is* phase 2?".
pub fn render_signatures<'a>(
    analysis: &PhaseAnalysis,
    matrix: &incprof_collect::IntervalMatrix,
    name_of: impl Fn(FunctionId) -> &'a str,
    top: usize,
) -> String {
    let mut out = String::new();
    for phase in &analysis.phases {
        let mut totals: Vec<(FunctionId, f64)> = (0..matrix.n_functions())
            .map(|col| {
                let sum: f64 = phase
                    .intervals
                    .iter()
                    .map(|&i| matrix.self_secs(i, col))
                    .sum();
                (matrix.function_at(col), sum)
            })
            .filter(|&(_, t)| t > 0.0)
            .collect();
        totals.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let phase_total: f64 = totals.iter().map(|t| t.1).sum();
        let _ = write!(
            out,
            "phase {} ({} intervals):",
            phase.id,
            phase.intervals.len()
        );
        for (id, t) in totals.into_iter().take(top) {
            let _ = write!(
                out,
                " {} {:.0}%",
                name_of(id),
                100.0 * t / phase_total.max(1e-12)
            );
        }
        out.push('\n');
    }
    out
}

/// Summary line for Table I's right-hand columns.
pub fn summarize(analysis: &PhaseAnalysis) -> String {
    format!(
        "{} phases discovered, {} distinct instrumentation sites",
        analysis.k,
        analysis.total_sites()
    )
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        format!("{}...", &s[..max - 3])
    }
}

/// A name-keyed static call graph, as produced by `incprof-lint`'s
/// source analysis but carried here as plain data so `incprof-core`
/// stays independent of the lint crate.
///
/// Edges are `(caller, callee, confident)` display names. Only
/// *confident* edges participate in [`source_context_json`]; ambiguous
/// edges are carried for completeness (and for consumers that want to
/// render them) but never influence depth, callers, or cycles.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceGraph {
    /// `(caller, callee, confident)` triples, name-keyed.
    pub edges: Vec<(String, String, bool)>,
}

impl SourceGraph {
    /// Build from edge triples.
    pub fn new(edges: Vec<(String, String, bool)>) -> SourceGraph {
        SourceGraph { edges }
    }

    /// Whether the graph carries no edges at all.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Join a [`PhaseAnalysis`] against a static [`SourceGraph`]: for each
/// phase, emit the dominant site functions with their *static* callers,
/// call-path depth, and cycle membership.
///
/// The result is a deterministic JSON array:
///
/// ```json
/// [{"phase":0,"functions":[
///    {"id":3,"name":"cg_solve","callers":["run"],"depth":1,"cycle":null}]}]
/// ```
///
/// `id` is the analysis' runtime [`FunctionId`] (so entries round-trip
/// against the profile's function column map); `callers`/`depth`/`cycle`
/// come from the static graph, joined by display name. Functions the
/// static analysis never saw (e.g. macro-generated or external) get
/// empty callers and `null` depth/cycle. Depth is the minimum number of
/// confident call arcs from a static root (a function nobody calls);
/// cycle is the index of the Tarjan SCC the function belongs to, if any.
pub fn source_context_json<'a>(
    analysis: &PhaseAnalysis,
    name_of: impl Fn(FunctionId) -> &'a str,
    graph: &SourceGraph,
) -> String {
    use incprof_profile::{cycle_membership, find_cycles, CallGraphProfile};
    use std::collections::BTreeMap;

    // Index every name in the confident subgraph. Sorted-name order makes
    // the local ids (and everything derived from them) deterministic.
    let mut names: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for (caller, callee, confident) in &graph.edges {
        if *confident {
            names.insert(caller);
            names.insert(callee);
        }
    }
    let local: BTreeMap<&str, FunctionId> = names
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, FunctionId(i as u32)))
        .collect();
    let name_list: Vec<&str> = names.into_iter().collect();

    let mut cg = CallGraphProfile::new();
    for (caller, callee, confident) in &graph.edges {
        if *confident {
            cg.record_arcs(local[caller.as_str()], local[callee.as_str()], 1);
        }
    }
    let cycles = find_cycles(&cg);
    let membership = cycle_membership(&cycles);

    let mut out = String::from("[");
    for (pi, phase) in analysis.phases.iter().enumerate() {
        if pi > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"phase\":{},\"functions\":[", phase.id);
        let mut seen = std::collections::BTreeSet::new();
        let mut first = true;
        for site in &phase.sites {
            if !seen.insert(site.function) {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let name = name_of(site.function);
            let _ = write!(
                out,
                "{{\"id\":{},\"name\":{}",
                site.function.0,
                json_string(name)
            );
            match local.get(name) {
                Some(&lid) => {
                    let mut callers: Vec<&str> = cg
                        .callers_of(lid)
                        .into_iter()
                        .map(|c| name_list[c.index()])
                        .collect();
                    callers.sort_unstable();
                    out.push_str(",\"callers\":[");
                    for (i, c) in callers.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&json_string(c));
                    }
                    out.push(']');
                    match cg.depth_from_roots(lid) {
                        Some(d) => {
                            let _ = write!(out, ",\"depth\":{d}");
                        }
                        None => out.push_str(",\"depth\":null"),
                    }
                    match membership.get(&lid) {
                        Some(c) => {
                            let _ = write!(out, ",\"cycle\":{c}");
                        }
                        None => out.push_str(",\"cycle\":null"),
                    }
                }
                None => out.push_str(",\"callers\":[],\"depth\":null,\"cycle\":null"),
            }
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push(']');
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PhaseDetector;
    use incprof_collect::IntervalMatrix;
    use incprof_profile::{FlatProfile, FunctionStats};

    fn analysis() -> PhaseAnalysis {
        let mut intervals = Vec::new();
        for _ in 0..5 {
            let mut p = FlatProfile::new();
            p.set(
                FunctionId(0),
                FunctionStats {
                    self_time: 1_000_000_000,
                    calls: 3,
                    child_time: 0,
                },
            );
            intervals.push(p);
        }
        for _ in 0..5 {
            let mut p = FlatProfile::new();
            p.set(
                FunctionId(1),
                FunctionStats {
                    self_time: 1_000_000_000,
                    calls: 0,
                    child_time: 0,
                },
            );
            intervals.push(p);
        }
        let matrix = IntervalMatrix::from_interval_profiles(&intervals);
        PhaseDetector::new().detect(&matrix).unwrap()
    }

    fn names(id: FunctionId) -> &'static str {
        match id.0 {
            0 => "make_graph",
            _ => "run_bfs",
        }
    }

    #[test]
    fn table_contains_paper_columns_and_rows() {
        let a = analysis();
        let table = render_sites_table(
            "TABLE X",
            &a,
            names,
            &[ManualSite::new("run_bfs", InstrumentationType::Body)],
        );
        assert!(table.contains("Phase ID"));
        assert!(table.contains("HB ID"));
        assert!(table.contains("Inst. Type"));
        assert!(table.contains("make_graph"));
        assert!(table.contains("run_bfs"));
        assert!(table.contains("Manual Instrumentation Sites"));
        assert!(table.contains("100.0"));
    }

    #[test]
    fn manual_section_omitted_when_empty() {
        let a = analysis();
        let table = render_sites_table("T", &a, names, &[]);
        assert!(!table.contains("Manual Instrumentation Sites"));
    }

    #[test]
    fn k_sweep_lists_every_k() {
        let a = analysis();
        let sweep = render_k_sweep(&a);
        assert!(sweep.contains(&format!("chosen k = {}", a.k)));
        for k in 1..=a.wcss_sweep.len() {
            assert!(sweep.contains(&format!("\n{k:>3} ")), "missing k={k} row");
        }
    }

    #[test]
    fn summary_counts() {
        let a = analysis();
        let s = summarize(&a);
        assert!(s.contains("2 phases"));
        assert!(s.contains("2 distinct"));
    }

    #[test]
    fn timeline_band_matches_assignments() {
        let a = analysis();
        let text = render_timeline(&a);
        let band = text.lines().nth(1).unwrap().trim_matches('|');
        assert_eq!(band.len(), a.assignments.len());
        // Two contiguous planted phases → the band has exactly one glyph
        // change.
        let changes = band.as_bytes().windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(changes, 1, "band {band}");
    }

    #[test]
    fn signatures_name_the_dominant_function() {
        use incprof_collect::IntervalMatrix;
        let mut intervals = Vec::new();
        for _ in 0..5 {
            let mut p = FlatProfile::new();
            p.set(
                FunctionId(0),
                FunctionStats {
                    self_time: 900_000_000,
                    calls: 3,
                    child_time: 0,
                },
            );
            p.set(
                FunctionId(1),
                FunctionStats {
                    self_time: 100_000_000,
                    calls: 9,
                    child_time: 0,
                },
            );
            intervals.push(p);
        }
        let matrix = IntervalMatrix::from_interval_profiles(&intervals);
        let a = PhaseDetector::new().detect(&matrix).unwrap();
        let text = render_signatures(&a, &matrix, names, 2);
        assert!(text.contains("phase 0 (5 intervals)"));
        assert!(text.contains("make_graph 90%"), "{text}");
        assert!(text.contains("run_bfs 10%"), "{text}");
    }

    #[test]
    fn long_names_are_truncated() {
        let long = "a".repeat(60);
        assert_eq!(truncate(&long, 34).len(), 34);
        assert!(truncate(&long, 34).ends_with("..."));
        assert_eq!(truncate("short", 34), "short");
    }

    #[test]
    fn source_context_joins_static_callers_depth_and_cycles() {
        let a = analysis();
        // Static shape: main -> make_graph -> run_bfs, with run_bfs and
        // helper mutually recursive (one Tarjan cycle).
        let graph = SourceGraph::new(vec![
            ("main".into(), "make_graph".into(), true),
            ("make_graph".into(), "run_bfs".into(), true),
            ("run_bfs".into(), "helper".into(), true),
            ("helper".into(), "run_bfs".into(), true),
        ]);
        let json = source_context_json(&a, names, &graph);
        assert!(
            json.contains(
                "\"name\":\"make_graph\",\"callers\":[\"main\"],\"depth\":1,\"cycle\":null"
            ),
            "{json}"
        );
        assert!(
            json.contains(
                "\"name\":\"run_bfs\",\"callers\":[\"helper\",\"make_graph\"],\"depth\":2,\"cycle\":0"
            ),
            "{json}"
        );
        // Runtime ids round-trip: the emitted ids are the analysis' own.
        assert!(json.contains("\"id\":0,\"name\":\"make_graph\""), "{json}");
        assert!(json.contains("\"id\":1,\"name\":\"run_bfs\""), "{json}");
    }

    #[test]
    fn source_context_handles_unknown_functions_and_ambiguous_edges() {
        let a = analysis();
        // Only an ambiguous edge mentions make_graph: it must not count.
        let graph = SourceGraph::new(vec![("main".into(), "make_graph".into(), false)]);
        let json = source_context_json(&a, names, &graph);
        assert!(
            json.contains("\"name\":\"make_graph\",\"callers\":[],\"depth\":null,\"cycle\":null"),
            "{json}"
        );
    }

    #[test]
    fn source_context_is_deterministic() {
        let a = analysis();
        let graph = SourceGraph::new(vec![
            ("z".into(), "run_bfs".into(), true),
            ("a".into(), "run_bfs".into(), true),
        ]);
        assert_eq!(
            source_context_json(&a, names, &graph),
            source_context_json(&a, names, &graph)
        );
        assert!(
            source_context_json(&a, names, &graph).contains("\"callers\":[\"a\",\"z\"]"),
            "callers sorted by name"
        );
    }
}
