//! Phase-merging postprocessing (paper future work, §VI-A).
//!
//! Graph500 and LAMMPS both produced pairs of phases whose instrumentation
//! reduces to the same function — "our phase discovery might need some
//! postprocessing to combine phases which have the same instrumentation
//! sites" and "Phases 0 and 2, with the PairLJCut::compute site, ... should
//! really be identified as a single phase." This module implements that
//! postprocessing: phases whose *site function sets* are equal (ignoring
//! the body/loop distinction, which is an artifact of interval boundaries)
//! are merged, percentages recomputed.

use crate::pipeline::PhaseAnalysis;
use crate::types::{InstrumentationSite, Phase};
use std::collections::BTreeMap;

/// Merge phases that share an identical set of site *functions*.
///
/// Returns a new analysis with merged phases renumbered 0..k' and
/// `assignments` remapped. Within a merged phase, sites with the same
/// ⟨function, type⟩ are combined (their covered intervals concatenated);
/// body/loop variants of one function are kept distinct, as they
/// represent different instrumentation placements.
pub fn merge_phases_with_same_sites(analysis: &PhaseAnalysis) -> PhaseAnalysis {
    let total_intervals: usize = analysis.phases.iter().map(|p| p.intervals.len()).sum();

    // Group phase ids by their site-function signature.
    let mut groups: BTreeMap<Vec<incprof_profile::FunctionId>, Vec<usize>> = BTreeMap::new();
    for p in &analysis.phases {
        groups.entry(p.site_functions()).or_default().push(p.id);
    }

    // Preserve original phase order: a group's position is its first
    // member's position.
    let mut ordered: Vec<Vec<usize>> = groups.into_values().collect();
    ordered.sort_by_key(|ids| ids[0]);

    let mut remap = vec![0usize; analysis.phases.len()];
    let mut phases = Vec::with_capacity(ordered.len());
    for (new_id, member_ids) in ordered.iter().enumerate() {
        let mut intervals = Vec::new();
        let mut merged_sites: BTreeMap<
            (
                incprof_profile::FunctionId,
                crate::types::InstrumentationType,
            ),
            InstrumentationSite,
        > = BTreeMap::new();
        let mut site_order = Vec::new();
        for &pid in member_ids {
            remap[pid] = new_id;
            let p = &analysis.phases[pid];
            intervals.extend_from_slice(&p.intervals);
            for s in &p.sites {
                let key = (s.function, s.inst_type);
                match merged_sites.get_mut(&key) {
                    Some(existing) => {
                        existing
                            .covered_intervals
                            .extend_from_slice(&s.covered_intervals);
                    }
                    None => {
                        site_order.push(key);
                        merged_sites.insert(key, s.clone());
                    }
                }
            }
        }
        intervals.sort_unstable();
        let n_phase = intervals.len().max(1);
        let sites = site_order
            .into_iter()
            .map(|key| {
                // lint: allow(P01, site_order and merged_sites are populated in lockstep in the loop above)
                let mut s = merged_sites.remove(&key).expect("key recorded at insert");
                s.covered_intervals.sort_unstable();
                s.phase_pct = 100.0 * s.covered_intervals.len() as f64 / n_phase as f64;
                s.app_pct =
                    100.0 * s.covered_intervals.len() as f64 / total_intervals.max(1) as f64;
                s
            })
            .collect();
        phases.push(Phase {
            id: new_id,
            intervals,
            sites,
        });
    }

    let assignments = analysis.assignments.iter().map(|&a| remap[a]).collect();
    PhaseAnalysis {
        k: phases.len(),
        assignments,
        phases,
        wcss_sweep: analysis.wcss_sweep.clone(),
        silhouette_sweep: analysis.silhouette_sweep.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::InstrumentationType;
    use incprof_profile::FunctionId;

    fn site(f: u32, t: InstrumentationType, hb: u32, covered: Vec<usize>) -> InstrumentationSite {
        InstrumentationSite {
            function: FunctionId(f),
            inst_type: t,
            hb_id: hb,
            covered_intervals: covered,
            phase_pct: 0.0,
            app_pct: 0.0,
        }
    }

    fn analysis_with_duplicate_site_phases() -> PhaseAnalysis {
        // Mirrors the paper's Graph500: phases 1 and 2 both select
        // run_bfs (body vs loop); phases 0 and 3 are distinct.
        let phases = vec![
            Phase {
                id: 0,
                intervals: vec![0, 1],
                sites: vec![site(10, InstrumentationType::Loop, 1, vec![0, 1])],
            },
            Phase {
                id: 1,
                intervals: vec![2, 3],
                sites: vec![site(20, InstrumentationType::Body, 2, vec![2, 3])],
            },
            Phase {
                id: 2,
                intervals: vec![4, 5],
                sites: vec![site(20, InstrumentationType::Loop, 3, vec![4, 5])],
            },
            Phase {
                id: 3,
                intervals: vec![6],
                sites: vec![site(30, InstrumentationType::Body, 4, vec![6])],
            },
        ];
        PhaseAnalysis {
            k: 4,
            assignments: vec![0, 0, 1, 1, 2, 2, 3],
            phases,
            wcss_sweep: vec![],
            silhouette_sweep: vec![],
        }
    }

    #[test]
    fn merges_phases_sharing_site_function() {
        let merged = merge_phases_with_same_sites(&analysis_with_duplicate_site_phases());
        assert_eq!(merged.k, 3);
        // The merged run_bfs phase holds intervals 2..=5.
        let bfs_phase = merged
            .phases
            .iter()
            .find(|p| p.site_functions() == vec![FunctionId(20)])
            .unwrap();
        assert_eq!(bfs_phase.intervals, vec![2, 3, 4, 5]);
        // Body and loop variants both retained.
        assert_eq!(bfs_phase.sites.len(), 2);
        // Assignments remapped consistently.
        assert_eq!(merged.assignments[2], merged.assignments[4]);
        assert_ne!(merged.assignments[0], merged.assignments[2]);
    }

    #[test]
    fn percentages_recomputed_after_merge() {
        let merged = merge_phases_with_same_sites(&analysis_with_duplicate_site_phases());
        let bfs_phase = merged
            .phases
            .iter()
            .find(|p| p.site_functions() == vec![FunctionId(20)])
            .unwrap();
        for s in &bfs_phase.sites {
            assert!((s.phase_pct - 50.0).abs() < 1e-9);
            // 2 covered of 7 total intervals.
            assert!((s.app_pct - 100.0 * 2.0 / 7.0).abs() < 1e-9);
        }
    }

    #[test]
    fn distinct_phases_are_untouched() {
        let input = analysis_with_duplicate_site_phases();
        let merged = merge_phases_with_same_sites(&input);
        let lone = merged
            .phases
            .iter()
            .find(|p| p.site_functions() == vec![FunctionId(30)])
            .unwrap();
        assert_eq!(lone.intervals, vec![6]);
        assert_eq!(lone.sites.len(), 1);
    }

    #[test]
    fn merge_is_idempotent() {
        let once = merge_phases_with_same_sites(&analysis_with_duplicate_site_phases());
        let twice = merge_phases_with_same_sites(&once);
        assert_eq!(once.k, twice.k);
        assert_eq!(once.assignments, twice.assignments);
    }

    #[test]
    fn no_duplicates_is_identity_shape() {
        let input = PhaseAnalysis {
            k: 2,
            assignments: vec![0, 1],
            phases: vec![
                Phase {
                    id: 0,
                    intervals: vec![0],
                    sites: vec![site(1, InstrumentationType::Body, 1, vec![0])],
                },
                Phase {
                    id: 1,
                    intervals: vec![1],
                    sites: vec![site(2, InstrumentationType::Body, 2, vec![1])],
                },
            ],
            wcss_sweep: vec![],
            silhouette_sweep: vec![],
        };
        let merged = merge_phases_with_same_sites(&input);
        assert_eq!(merged.k, 2);
        assert_eq!(merged.assignments, vec![0, 1]);
    }
}
