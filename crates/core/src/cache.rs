//! Incremental analysis cache for streamed series.
//!
//! `PhaseDetector::detect_series` is stateless: every call re-deltas the
//! whole cumulative series, rebuilds features, recomputes the O(n²·d)
//! pairwise-distance matrix, and reruns the full k sweep. A streaming
//! consumer (the serve daemon answering report queries between snapshot
//! pushes) therefore pays O(n²) *per query* — exactly the repeated
//! analysis the paper's incremental design is meant to avoid.
//!
//! [`AnalysisCache`] removes the redundancy in three layers, each gated
//! on a check that preserves **bit-identical** output versus a cold
//! [`PhaseDetector::detect_series`] call:
//!
//! 1. **Whole-report memoization.** Results are keyed on (sample count,
//!    last sample identity, config fingerprint); a query with no new
//!    snapshot returns the memoized [`PhaseAnalysis`] in O(1).
//! 2. **Incremental deltas.** Interval profiles are the per-snapshot
//!    deltas of a cumulative series; the cache keeps the deltas already
//!    computed and only subtracts the new suffix.
//! 3. **Incremental pairwise distances.** The distance matrix grows via
//!    [`PairwiseDistances::extend`], computing only rows/columns for new
//!    intervals — *iff* the previously-scaled rows are bit-identical
//!    under the new scaling. Column-stat scalings
//!    ([`incprof_cluster::Scaling::MinMax`],
//!    [`incprof_cluster::Scaling::ZScore`]) shift old rows when new data moves the column
//!    stats, so the cache verifies the scaled prefix bit-for-bit (with
//!    feature columns re-aligned through [`FunctionId`]s, since newly
//!    observed functions insert columns) and falls back to a cold
//!    rebuild when anything moved. The fallback is counted as a
//!    `core.cache.invalidations` metric, reuse as `core.cache.pair_extends`.
//!
//! 4. **Incremental k-means chains.** The clustering itself is a
//!    canonical per-row fold ([`incprof_cluster::incremental`]): cold
//!    runs fold from row one, warm runs resume the cached
//!    [`SweepChains`] — the same pure function of the prefix either way,
//!    so the bits match by construction. Chains survive checkpoints,
//!    re-align when new feature columns appear (`centroid_remaps` — the
//!    new columns are verified `+0.0` over the covered prefix as part of
//!    the prefix check, which makes the re-alignment bit-preserving),
//!    and are dropped with the pair matrix whenever the prefix moved
//!    (`centroid_resets`); `centroid_continues` counts analyses that
//!    actually resumed cached chains.
//!
//! Whatever the path, clustering and Algorithm 1 run on exactly the same
//! scaled dataset (always recomputed — O(n·d)) and a distance matrix
//! whose every entry equals `euclidean(row(i), row(j))` bit-for-bit, so
//! warm output is byte-identical to cold output. `tests/cache_determinism.rs`
//! at the workspace root pins this across all five mini-apps under a
//! streaming push/query interleave.

use crate::pipeline::{FeatureSet, PhaseAnalysis, PhaseDetector, PipelineError};
use incprof_cluster::{Dataset, KChain, KMeansResult, PairwiseDistances, SweepChains};
use incprof_collect::{IntervalMatrix, SampleSeries};
use incprof_profile::{FlatProfile, FunctionId};

/// Flight-recorder `b` tag: detector config fingerprint changed.
pub const INVALIDATE_FINGERPRINT: u64 = 1;
/// Flight-recorder `b` tag: the sample series shrank (session restart).
pub const INVALIDATE_SHRINK: u64 = 2;
/// Flight-recorder `b` tag: scaled prefix moved; pairwise matrix rebuilt.
pub const INVALIDATE_PAIR: u64 = 3;
/// Flight-recorder `b` tag: the snapshot at the cache's coverage frontier
/// changed identity (retention trimmed the series and it regrew past the
/// old length — a shift the length-only shrink check cannot see).
pub const INVALIDATE_TRIM: u64 = 4;

/// Version byte of the [`AnalysisCache::encode_state`] blob format.
/// Version 2 added the k-means chain section; version-1 blobs (and any
/// other version) are rejected cleanly by [`AnalysisCache::decode_state`]
/// and the caller replays the snapshot log cold.
const STATE_VERSION: u8 = 2;

/// Memoized result of the last completed analysis.
#[derive(Debug, Clone)]
struct Memo {
    /// Series length the analysis covered.
    samples: usize,
    /// `sample_index` of the last snapshot covered (identity check).
    last_sample_index: u64,
    /// `timestamp_ns` of the last snapshot covered (identity check).
    last_timestamp_ns: u64,
    /// The analysis itself.
    analysis: PhaseAnalysis,
}

/// Per-session incremental analysis state. See the module docs.
///
/// One cache serves one growing [`SampleSeries`]; if the series shrinks
/// or its detector configuration changes, the cache detects it and
/// recomputes from scratch (counted as an invalidation) rather than
/// serving stale results.
#[derive(Debug, Default)]
pub struct AnalysisCache {
    /// Fingerprint of the detector config the cached state was built by.
    fingerprint: Option<u64>,
    /// Last full result, reused verbatim for no-new-data queries.
    memo: Option<Memo>,
    /// Interval (delta) profiles computed so far, one per snapshot.
    intervals: Vec<FlatProfile>,
    /// The cumulative profile the next delta subtracts from.
    prev_cumulative: FlatProfile,
    /// Scaled feature rows from the previous analysis, for prefix
    /// verification before reusing distance entries.
    scaled: Option<Dataset>,
    /// Feature-column function ids of the previous analysis, aligned
    /// with `scaled`'s columns (per feature block).
    feature_fns: Vec<FunctionId>,
    /// The incrementally grown pairwise-distance matrix.
    pair: PairwiseDistances,
    /// Converged k-means chain state per k, resumed by warm analyses
    /// (layer 4 of the module docs). Reset together with the pair
    /// matrix: both are valid exactly while the scaled prefix is
    /// bit-stable.
    chains: SweepChains,
    /// Serialized pair section (`u32` order + strict-upper-triangle
    /// bits) staged by [`AnalysisCache::decode_state`] and materialized
    /// into `pair` only when a query actually misses the memo. The
    /// matrix is by far the largest piece of a checkpoint, and the
    /// common rehydration path — restart, re-query, memo hit — never
    /// needs it; decoding it eagerly would put an O(n²) reconstruction
    /// on every restart instead of on the first new snapshot.
    /// Invariant: while this is `Some`, nothing else in the cache has
    /// mutated since decode ([`AnalysisCache::analyze`] hydrates before
    /// any mutation), so `encode_state` can splice the bytes back
    /// verbatim.
    staged_pair: Option<Vec<u8>>,
    /// This instance's memo hits (the global `core.cache.memo_hits`
    /// counter aggregates across sessions; per-session gauges need the
    /// split). Survives cache resets.
    memo_hits: u64,
    /// This instance's memo misses. Survives cache resets.
    memo_misses: u64,
    /// Identity (`sample_index`, `timestamp_ns`) of the snapshot at
    /// position `intervals.len() − 1` of the series the cache last
    /// covered. Checked before every incremental extension: if the
    /// series was trimmed (retention) and regrew past the old length,
    /// positions have shifted even though the length never shrank, and
    /// the cache must rebuild cold instead of extending stale deltas.
    last_covered: Option<(u64, u64)>,
}

impl AnalysisCache {
    /// Fresh, empty cache.
    pub fn new() -> AnalysisCache {
        AnalysisCache {
            pair: PairwiseDistances::empty(),
            ..Default::default()
        }
    }

    /// Analyze `series` with `detector`, reusing cached work from
    /// previous calls where bit-identity is proven.
    ///
    /// Returns exactly what `detector.detect_series(series)` would —
    /// same values, same bits — or the same error for an empty series.
    pub fn analyze(
        &mut self,
        detector: &PhaseDetector,
        series: &SampleSeries,
    ) -> Result<PhaseAnalysis, PipelineError> {
        let _span = incprof_obs::span(incprof_obs::names::CORE_CACHE_ANALYZE);

        let fp = detector.fingerprint();
        if self.fingerprint != Some(fp) {
            if self.fingerprint.is_some() {
                incprof_obs::counter(incprof_obs::names::CORE_CACHE_INVALIDATIONS).inc();
                incprof_obs::recorder().record(
                    incprof_obs::EventKind::CacheInvalidation,
                    self.intervals.len() as u64,
                    INVALIDATE_FINGERPRINT,
                );
            }
            self.reset();
            self.fingerprint = Some(fp);
        }

        if let Some(memo) = &self.memo {
            if let Some(last) = series.last() {
                if memo.samples == series.len()
                    && memo.last_sample_index == last.sample_index
                    && memo.last_timestamp_ns == last.timestamp_ns
                {
                    incprof_obs::counter(incprof_obs::names::CORE_CACHE_HITS).inc();
                    self.memo_hits += 1;
                    return Ok(memo.analysis.clone());
                }
            }
        }
        incprof_obs::counter(incprof_obs::names::CORE_CACHE_MISSES).inc();
        self.memo_misses += 1;

        if series.is_empty() {
            return Err(PipelineError::NoIntervals);
        }

        self.hydrate_pair();
        self.extend_intervals(series)?;

        let matrix = IntervalMatrix::from_interval_profiles(&self.intervals);
        if matrix.n_intervals() == 0 {
            return Err(PipelineError::NoIntervals);
        }
        if matrix.n_functions() == 0 {
            return Err(PipelineError::NoFunctions);
        }

        let raw = Dataset::from_rows(detector.build_features(&matrix));
        let data = detector.scaling.apply(&raw);

        self.update_pair(detector, &matrix, &data);

        if !self.chains.is_empty() {
            incprof_obs::counter(incprof_obs::names::CORE_CACHE_CENTROID_CONTINUES).inc();
        }
        let analysis =
            detector.detect_scaled(&matrix, &data, Some(&self.pair), Some(&mut self.chains))?;

        self.scaled = Some(data);
        self.feature_fns = matrix.functions().to_vec();
        let last = series.last().ok_or(PipelineError::NoIntervals)?;
        self.memo = Some(Memo {
            samples: series.len(),
            last_sample_index: last.sample_index,
            last_timestamp_ns: last.timestamp_ns,
            analysis: analysis.clone(),
        });
        Ok(analysis)
    }

    /// Per-instance memo statistics, `(hits, misses)`, for per-session
    /// cache-hit-ratio gauges. Survives a cache reset.
    pub fn stats(&self) -> (u64, u64) {
        (self.memo_hits, self.memo_misses)
    }

    /// Identity (`sample_index`, `timestamp_ns`) of the last snapshot the
    /// cached deltas cover, or `None` for an empty cache. Together with
    /// [`AnalysisCache::covered_len`] this lets a rehydrating session
    /// validate a decoded checkpoint against the series rebuilt from its
    /// snapshot log before trusting it.
    pub fn covered(&self) -> Option<(u64, u64)> {
        self.last_covered
    }

    /// Number of interval deltas the cache currently covers.
    pub fn covered_len(&self) -> usize {
        self.intervals.len()
    }

    /// Serialize the cache into a self-contained checkpoint blob
    /// (little-endian, versioned; layout in `docs/PERSISTENCE.md`).
    ///
    /// The blob is advisory: [`AnalysisCache::decode_state`] refuses
    /// anything it cannot validate, and the caller falls back to a cold
    /// replay of the snapshot log — so the format can evolve by bumping
    /// the version byte without migration code.
    pub fn encode_state(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(STATE_VERSION);
        // Memo analyses are stored as their JSON serialization; decode
        // re-parses and byte-compares the round trip, dropping the memo
        // (only) if the text does not survive identically.
        let memo_json = self.memo.as_ref().and_then(|m| {
            serde_json::to_string(&m.analysis)
                .ok()
                .map(|j| (m, j.into_bytes()))
        });
        let mut flags = 0u8;
        if self.fingerprint.is_some() {
            flags |= 1;
        }
        if self.scaled.is_some() {
            flags |= 2;
        }
        if self.last_covered.is_some() {
            flags |= 4;
        }
        if memo_json.is_some() {
            flags |= 8;
        }
        out.push(flags);
        if let Some(fp) = self.fingerprint {
            put_u64(&mut out, fp);
        }
        put_u32(&mut out, self.intervals.len() as u32);
        for flat in &self.intervals {
            put_flat(&mut out, flat);
        }
        put_flat(&mut out, &self.prev_cumulative);
        if let Some(scaled) = &self.scaled {
            put_u32(&mut out, scaled.nrows() as u32);
            put_u32(&mut out, scaled.ncols() as u32);
            for i in 0..scaled.nrows() {
                for &v in scaled.row(i) {
                    put_u64(&mut out, v.to_bits());
                }
            }
        }
        put_u32(&mut out, self.feature_fns.len() as u32);
        for id in &self.feature_fns {
            put_u32(&mut out, id.0);
        }
        if let Some(staged) = &self.staged_pair {
            // Never hydrated since decode (see the field invariant): the
            // section round-trips verbatim.
            out.extend_from_slice(staged);
        } else {
            put_u32(&mut out, self.pair.n() as u32);
            // Strict upper triangle only: every entry is
            // `euclidean(row i, row j)`, which is bitwise symmetric (the
            // squared differences are sign-invariant) with a +0.0
            // diagonal, so the other half reconstructs exactly — and the
            // pairwise matrix is the dominant checkpoint cost, so this
            // halves it.
            let n = self.pair.n();
            let flat = self.pair.as_flat();
            for i in 0..n {
                for &v in &flat[i * n + i + 1..(i + 1) * n] {
                    put_u64(&mut out, v.to_bits());
                }
            }
        }
        // Chain section (v2): chains are stored in k order, so k itself
        // is implied by position (`chains[i].k == i + 1`).
        put_u32(&mut out, self.chains.chains.len() as u32);
        for chain in &self.chains.chains {
            put_u32(&mut out, chain.covered as u32);
            put_u32(&mut out, chain.last.iterations as u32);
            put_u64(&mut out, chain.last.total_iterations);
            put_u64(&mut out, chain.last.wcss.to_bits());
            put_u32(&mut out, chain.last.centroids.ncols() as u32);
            for c in 0..chain.k {
                for &v in chain.last.centroids.row(c) {
                    put_u64(&mut out, v.to_bits());
                }
            }
            for &a in &chain.last.assignments {
                put_u32(&mut out, a as u32);
            }
        }
        if let Some((idx, ts)) = self.last_covered {
            put_u64(&mut out, idx);
            put_u64(&mut out, ts);
        }
        if let Some((m, json)) = memo_json {
            put_u64(&mut out, m.samples as u64);
            put_u64(&mut out, m.last_sample_index);
            put_u64(&mut out, m.last_timestamp_ns);
            put_u32(&mut out, json.len() as u32);
            out.extend_from_slice(&json);
        }
        out
    }

    /// Rebuild a cache from an [`AnalysisCache::encode_state`] blob.
    ///
    /// Returns `None` on any structural problem — unknown version, short
    /// or trailing bytes, inconsistent dimensions — so a torn or corrupt
    /// checkpoint degrades to a cold replay instead of a panic or, worse,
    /// silently wrong incremental state. A memo whose JSON does not
    /// round-trip byte-identically is dropped alone (it is a pure
    /// optimization); the rest of the blob still loads. Memo statistics
    /// restart at zero: they describe an instance's history, and the
    /// decoded instance is new.
    pub fn decode_state(bytes: &[u8]) -> Option<AnalysisCache> {
        let mut r = Reader { b: bytes, pos: 0 };
        if r.u8()? != STATE_VERSION {
            return None;
        }
        let flags = r.u8()?;
        if flags & !0b1111 != 0 {
            return None;
        }
        let fingerprint = if flags & 1 != 0 { Some(r.u64()?) } else { None };
        let n_intervals = r.u32()? as usize;
        if r.remaining() < n_intervals.checked_mul(4)? {
            return None;
        }
        let mut intervals = Vec::with_capacity(n_intervals);
        for _ in 0..n_intervals {
            intervals.push(read_flat(&mut r)?);
        }
        let prev_cumulative = read_flat(&mut r)?;
        let scaled = if flags & 2 != 0 {
            let rows = r.u32()? as usize;
            let cols = r.u32()? as usize;
            let vals = r.f64_vec(rows.checked_mul(cols)?)?;
            let mut d = Dataset::zeros(rows, cols);
            for i in 0..rows {
                d.row_mut(i)
                    .copy_from_slice(&vals[i * cols..(i + 1) * cols]);
            }
            Some(d)
        } else {
            None
        };
        let n_fns = r.u32()? as usize;
        if r.remaining() < n_fns.checked_mul(4)? {
            return None;
        }
        let mut feature_fns = Vec::with_capacity(n_fns);
        for _ in 0..n_fns {
            feature_fns.push(FunctionId(r.u32()?));
        }
        // The pair section is validated for shape here but staged
        // undecoded: rebuilding the full O(n²) matrix is the dominant
        // decode cost, and a rehydrated session whose next query memo-
        // hits never needs it. `hydrate_pair` materializes it on the
        // first real analysis.
        let section_start = r.pos;
        let pair_n = r.u32()? as usize;
        let tri_len = pair_n.checked_mul(pair_n.saturating_sub(1))? / 2;
        r.bytes(tri_len.checked_mul(8)?)?;
        let staged_pair = Some(bytes[section_start..r.pos].to_vec());
        let n_chains = r.u32()? as usize;
        let mut chains = Vec::with_capacity(n_chains.min(64));
        for i in 0..n_chains {
            let k = i + 1;
            let covered = r.u32()? as usize;
            // A chain's base case covers exactly k rows and the fold only
            // ever extends it over the covered interval prefix.
            if covered < k || covered > n_intervals {
                return None;
            }
            let iterations = r.u32()? as usize;
            let total_iterations = r.u64()?;
            let wcss = f64::from_bits(r.u64()?);
            let ncols = r.u32()? as usize;
            // Chains cluster the scaled rows; their centroid width must
            // match or the whole blob is inconsistent.
            match &scaled {
                Some(s) if s.ncols() == ncols => {}
                _ => return None,
            }
            let vals = r.f64_vec(k.checked_mul(ncols)?)?;
            let mut centroids = Dataset::zeros(k, ncols);
            for c in 0..k {
                centroids
                    .row_mut(c)
                    .copy_from_slice(&vals[c * ncols..(c + 1) * ncols]);
            }
            if r.remaining() < covered.checked_mul(4)? {
                return None;
            }
            let mut assignments = Vec::with_capacity(covered);
            for _ in 0..covered {
                let a = r.u32()? as usize;
                if a >= k {
                    return None;
                }
                assignments.push(a);
            }
            chains.push(KChain {
                k,
                covered,
                last: KMeansResult {
                    assignments,
                    centroids,
                    wcss,
                    iterations,
                    total_iterations,
                },
            });
        }
        let last_covered = if flags & 4 != 0 {
            Some((r.u64()?, r.u64()?))
        } else {
            None
        };
        let memo = if flags & 8 != 0 {
            let samples = r.u64()? as usize;
            let last_sample_index = r.u64()?;
            let last_timestamp_ns = r.u64()?;
            let len = r.u32()? as usize;
            let raw = r.bytes(len)?;
            let analysis = std::str::from_utf8(raw)
                .ok()
                .and_then(|text| serde_json::from_str::<PhaseAnalysis>(text).ok())
                .filter(|a| {
                    serde_json::to_string(a)
                        .map(|again| again.as_bytes() == raw)
                        .unwrap_or(false)
                });
            analysis.map(|analysis| Memo {
                samples,
                last_sample_index,
                last_timestamp_ns,
                analysis,
            })
        } else {
            None
        };
        if r.remaining() != 0 {
            return None;
        }
        Some(AnalysisCache {
            fingerprint,
            memo,
            intervals,
            prev_cumulative,
            scaled,
            feature_fns,
            pair: PairwiseDistances::empty(),
            chains: SweepChains { chains },
            staged_pair,
            memo_hits: 0,
            memo_misses: 0,
            last_covered,
        })
    }

    /// Materialize a staged pair section (see `staged_pair`) into the
    /// full symmetric matrix. Entry `(i, j)` with `i < j` lives at
    /// triangle index `off(i) + j − i − 1`; the diagonal is +0.0 by
    /// construction and the lower half mirrors the same bytes. Rows are
    /// produced in fixed chunk order on the [`incprof_par`] pool, so the
    /// reconstruction is identical for every worker count. Infallible:
    /// `decode_state` already validated the section's shape.
    fn hydrate_pair(&mut self) {
        let Some(bytes) = self.staged_pair.take() else {
            return;
        };
        let mut r = Reader { b: &bytes, pos: 0 };
        // lint: allow(P01, decode_state validated this exact section before staging it)
        let pair_n = r.u32().expect("staged pair section validated at decode") as usize;
        let raw = r.b[r.pos..].to_vec();
        let at = |t: usize| {
            let eight: [u8; 8] = raw[8 * t..8 * t + 8]
                .try_into()
                // lint: allow(P01, the slice is exactly eight bytes; the array conversion cannot fail)
                .unwrap();
            f64::from_bits(u64::from_le_bytes(eight))
        };
        let off = |i: usize| i * pair_n - i * (i + 1) / 2;
        let blocks = incprof_par::Pool::current().map_chunks(
            pair_n,
            incprof_par::default_chunk(pair_n),
            |rows| {
                let mut block = Vec::with_capacity(rows.len() * pair_n);
                for i in rows {
                    for j in 0..i {
                        block.push(at(off(j) + i - j - 1));
                    }
                    block.push(0.0);
                    let base = off(i);
                    block.extend((0..pair_n - i - 1).map(|t| at(base + t)));
                }
                block
            },
        );
        let mut dist = Vec::with_capacity(pair_n * pair_n);
        for block in blocks {
            dist.extend_from_slice(&block);
        }
        self.pair = PairwiseDistances::from_flat(pair_n, dist)
            // lint: allow(P01, the flat length is n² by construction above)
            .expect("hydrated pair matrix has n² entries");
    }

    /// Drop all cached state (fingerprint included). Memo statistics
    /// survive: they describe the instance's history, not its contents.
    fn reset(&mut self) {
        let (hits, misses) = (self.memo_hits, self.memo_misses);
        *self = AnalysisCache::new();
        self.memo_hits = hits;
        self.memo_misses = misses;
    }

    /// Bring `self.intervals` up to date with `series`, computing deltas
    /// only for the new snapshot suffix. Replicates
    /// `SampleSeries::interval_profiles` exactly: interval `i` is
    /// `snapshot[i] − snapshot[i−1]`, interval 0 measured from empty.
    fn extend_intervals(&mut self, series: &SampleSeries) -> Result<(), PipelineError> {
        let snaps = series.snapshots();
        let stale = if snaps.len() < self.intervals.len() {
            // Series shrank (session restart) — cold restart.
            Some(INVALIDATE_SHRINK)
        } else if let Some(pos) = self.intervals.len().checked_sub(1) {
            // The snapshot at the coverage frontier must still be the one
            // the cached deltas were computed from; a retention trim that
            // regrew past the old length shifts positions without ever
            // shrinking the series.
            let s = &snaps[pos];
            (self.last_covered != Some((s.sample_index, s.timestamp_ns))).then_some(INVALIDATE_TRIM)
        } else {
            None
        };
        if let Some(tag) = stale {
            incprof_obs::counter(incprof_obs::names::CORE_CACHE_INVALIDATIONS).inc();
            incprof_obs::recorder().record(
                incprof_obs::EventKind::CacheInvalidation,
                self.intervals.len() as u64,
                tag,
            );
            let fp = self.fingerprint;
            self.reset();
            self.fingerprint = fp;
        }
        for snap in &snaps[self.intervals.len()..] {
            // On a delta error (non-monotonic counters) the already-pushed
            // prefix stays consistent; a retry recomputes only from here.
            self.intervals.push(snap.flat.delta(&self.prev_cumulative)?);
            self.prev_cumulative = snap.flat.clone();
            self.last_covered = Some((snap.sample_index, snap.timestamp_ns));
        }
        Ok(())
    }

    /// Grow (or rebuild) the pairwise matrix to cover `data`'s rows.
    ///
    /// Extension is sound only when the first `pair.n()` rows of `data`
    /// are bit-identical to the rows the matrix was computed from, which
    /// [`AnalysisCache::prefix_rows_unchanged`] verifies through the
    /// feature-column function ids. Otherwise a cold rebuild runs.
    fn update_pair(&mut self, detector: &PhaseDetector, matrix: &IntervalMatrix, data: &Dataset) {
        let old_n = self.pair.n();
        let col_map = self.prefix_col_map(detector, matrix, data);
        let reusable = old_n == 0 || (old_n <= data.nrows() && col_map.is_some());
        if reusable {
            if old_n > 0 && data.nrows() > old_n {
                incprof_obs::counter(incprof_obs::names::CORE_CACHE_PAIR_EXTENDS).inc();
            }
            self.pair.extend(data);
            if !self.chains.is_empty() {
                if let Some(map) = &col_map {
                    let d_old = self.feature_fns.len();
                    let d_new = matrix.n_functions();
                    if d_new > d_old {
                        // The prefix check proved the old columns kept
                        // their bits and the inserted columns are exactly
                        // +0.0 over the covered prefix, so re-aligning
                        // the cached centroids is bit-preserving (see
                        // `SweepChains::remap_columns`). Expand the
                        // per-function map over the feature blocks.
                        let blocks = feature_blocks(detector);
                        let full: Vec<usize> = (0..blocks)
                            .flat_map(|b| map.iter().map(move |&c| b * d_new + c))
                            .collect();
                        self.chains.remap_columns(&full, d_new * blocks);
                        incprof_obs::counter(incprof_obs::names::CORE_CACHE_CENTROID_REMAPS).inc();
                    }
                }
            }
        } else {
            incprof_obs::counter(incprof_obs::names::CORE_CACHE_INVALIDATIONS).inc();
            incprof_obs::recorder().record(
                incprof_obs::EventKind::CacheInvalidation,
                old_n as u64,
                INVALIDATE_PAIR,
            );
            self.pair = PairwiseDistances::euclidean_of(data);
            if !self.chains.is_empty() {
                self.chains.clear();
                incprof_obs::counter(incprof_obs::names::CORE_CACHE_CENTROID_RESETS).inc();
            }
        }
    }

    /// Check that every previously-scaled row reappears bit-identically
    /// in `data`, after re-aligning feature columns by [`FunctionId`]
    /// (new functions insert columns; an old row's new entries there
    /// must be exactly `+0.0`, which leaves Euclidean sums bit-stable).
    /// Returns the old-to-new per-function column map on success, `None`
    /// when anything moved and the distance/chain state must rebuild
    /// cold.
    fn prefix_col_map(
        &self,
        detector: &PhaseDetector,
        matrix: &IntervalMatrix,
        data: &Dataset,
    ) -> Option<Vec<usize>> {
        let old = self.scaled.as_ref()?;
        if old.nrows() != self.pair.n() || old.nrows() > data.nrows() {
            return None;
        }
        // Old feature column t maps to new column col_map[t].
        let mut col_map: Vec<usize> = Vec::with_capacity(self.feature_fns.len());
        for id in &self.feature_fns {
            // A previously observed function vanishing is only possible
            // after a series reset; rebuild cold.
            col_map.push(matrix.col_of(*id)?);
        }
        let blocks = feature_blocks(detector);
        let d_old = self.feature_fns.len();
        let d_new = matrix.n_functions();
        if old.ncols() != d_old * blocks || data.ncols() != d_new * blocks {
            return None;
        }
        let mut expected = vec![0.0_f64; d_new * blocks];
        for i in 0..old.nrows() {
            for v in expected.iter_mut() {
                *v = 0.0;
            }
            let old_row = old.row(i);
            for b in 0..blocks {
                for (t, &c) in col_map.iter().enumerate() {
                    expected[b * d_new + c] = old_row[b * d_old + t];
                }
            }
            let new_row = data.row(i);
            for (e, n) in expected.iter().zip(new_row) {
                if e.to_bits() != n.to_bits() {
                    return None;
                }
            }
        }
        Some(col_map)
    }
}

/// Feature blocks the detector's [`FeatureSet`] lays out per function
/// (self time alone, or self time plus one companion quantity).
fn feature_blocks(detector: &PhaseDetector) -> usize {
    match detector.features {
        FeatureSet::SelfTime => 1,
        FeatureSet::SelfTimeAndCalls | FeatureSet::SelfTimeAndChildTime => 2,
    }
}

// --- checkpoint blob primitives -------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a [`FlatProfile`] as `u32 count` then per function
/// `u32 id, u64 self_time, u64 calls, u64 child_time` in id order
/// (the profile's map iteration order, which is already sorted).
fn put_flat(out: &mut Vec<u8>, flat: &FlatProfile) {
    put_u32(out, flat.len() as u32);
    for (id, s) in flat.iter() {
        put_u32(out, id.0);
        put_u64(out, s.self_time);
        put_u64(out, s.calls);
        put_u64(out, s.child_time);
    }
}

fn read_flat(r: &mut Reader<'_>) -> Option<FlatProfile> {
    let count = r.u32()? as usize;
    // 28 bytes per entry: id + three u64 counters.
    if r.remaining() < count.checked_mul(28)? {
        return None;
    }
    let mut flat = FlatProfile::new();
    for _ in 0..count {
        let id = FunctionId(r.u32()?);
        let stats = incprof_profile::FunctionStats {
            self_time: r.u64()?,
            calls: r.u64()?,
            child_time: r.u64()?,
        };
        flat.set(id, stats);
    }
    Some(flat)
}

/// Bounds-checked little-endian cursor over a checkpoint blob. Every
/// accessor returns `None` past the end, so `decode_state` can use `?`
/// throughout and reject truncation uniformly.
struct Reader<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.b.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.b.len() {
            return None;
        }
        let s = &self.b[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.bytes(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.bytes(4)
            // lint: allow(P01, bytes(4) returned exactly four bytes; the array conversion cannot fail)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.bytes(8)
            // lint: allow(P01, bytes(8) returned exactly eight bytes; the array conversion cannot fail)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Read `n` little-endian f64 bit patterns with a single bounds
    /// check. The scalar path costs a checked slice per value, which
    /// dominates checkpoint decode once the pairwise matrix reaches
    /// megabytes; this bulk path is what keeps warm rehydration cheap.
    fn f64_vec(&mut self, n: usize) -> Option<Vec<f64>> {
        let raw = self.bytes(n.checked_mul(8)?)?;
        Some(
            raw.chunks_exact(8)
                .map(|c| {
                    // lint: allow(P01, chunks_exact(8) yields exactly eight bytes; the array conversion cannot fail)
                    f64::from_bits(u64::from_le_bytes(c.try_into().unwrap()))
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incprof_profile::{CallGraphProfile, FunctionStats, ProfileSnapshot};

    /// A deterministic cumulative series with a couple of alternating
    /// hot functions, enough structure for a non-trivial clustering.
    fn series(n: usize) -> SampleSeries {
        let mut s = SampleSeries::new();
        let mut f1 = FunctionStats::default();
        let mut f2 = FunctionStats::default();
        for i in 0..n as u64 {
            if i % 2 == 0 {
                f1.self_time += 900 + i * 13;
                f1.calls += 3;
                f2.self_time += 50;
            } else {
                f2.self_time += 800 + i * 7;
                f2.calls += 5;
                f2.child_time += 100;
                f1.self_time += 40;
            }
            let mut flat = FlatProfile::new();
            flat.set(FunctionId(1), f1);
            flat.set(FunctionId(2), f2);
            s.push(ProfileSnapshot {
                sample_index: i,
                timestamp_ns: 1_000 + i * 500,
                flat,
                callgraph: CallGraphProfile::default(),
            });
        }
        s
    }

    #[test]
    fn empty_cache_state_roundtrip() {
        let cache = AnalysisCache::new();
        let blob = cache.encode_state();
        let back = AnalysisCache::decode_state(&blob).expect("decodes");
        assert_eq!(back.covered(), None);
        assert_eq!(back.covered_len(), 0);
        assert!(back.memo.is_none());
        assert_eq!(back.pair.n(), 0);
    }

    #[test]
    fn warm_state_roundtrip_is_byte_identical_going_forward() {
        let detector = PhaseDetector::default();
        let s6 = series(6);
        let mut live = AnalysisCache::new();
        live.analyze(&detector, &s6).unwrap();

        let blob = cache_after(&detector, 6).encode_state();
        let mut rehydrated = AnalysisCache::decode_state(&blob).expect("decodes");
        assert_eq!(rehydrated.covered_len(), 6);
        assert_eq!(rehydrated.covered(), live.covered());

        // Continue both caches over the same grown series: analyses must
        // match byte-for-byte through the JSON report serialization.
        let s9 = series(9);
        let a = live.analyze(&detector, &s9).unwrap();
        let b = rehydrated.analyze(&detector, &s9).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        // The rehydrated memo serves a repeat query without recompute.
        let before = rehydrated.stats();
        rehydrated.analyze(&detector, &s9).unwrap();
        let after = rehydrated.stats();
        assert_eq!(after.0, before.0 + 1, "repeat query must memo-hit");
    }

    fn cache_after(detector: &PhaseDetector, n: usize) -> AnalysisCache {
        let mut c = AnalysisCache::new();
        c.analyze(detector, &series(n)).unwrap();
        c
    }

    #[test]
    fn truncated_blob_is_rejected() {
        let blob = cache_after(&PhaseDetector::default(), 5).encode_state();
        for cut in [0, 1, 2, blob.len() / 2, blob.len() - 1] {
            assert!(
                AnalysisCache::decode_state(&blob[..cut]).is_none(),
                "truncation at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut blob = cache_after(&PhaseDetector::default(), 5).encode_state();
        blob.push(0);
        assert!(AnalysisCache::decode_state(&blob).is_none());
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut blob = cache_after(&PhaseDetector::default(), 5).encode_state();
        blob[0] = 99;
        assert!(AnalysisCache::decode_state(&blob).is_none());
    }

    #[test]
    fn corrupt_memo_json_drops_memo_but_keeps_state() {
        let detector = PhaseDetector::default();
        let blob = cache_after(&detector, 6).encode_state();
        // The memo JSON is the blob's final section; flip a byte inside it
        // without disturbing the length prefix.
        let mut bad = blob.clone();
        let last = bad.len() - 2;
        bad[last] = bad[last].wrapping_add(1);
        // Flipping a byte can also break UTF-8/JSON framing, in which
        // case rejecting the whole blob (decode_state -> None) is an
        // acceptable fail-closed outcome.
        if let Some(c) = AnalysisCache::decode_state(&bad) {
            assert!(c.memo.is_none(), "tampered memo must not survive");
            assert_eq!(c.covered_len(), 6, "non-memo state must survive");
        }
    }

    #[test]
    fn trim_then_regrow_invalidates_instead_of_aliasing() {
        let detector = PhaseDetector::default();
        let mut cache = AnalysisCache::new();
        cache.analyze(&detector, &series(6)).unwrap();

        // Simulate a retention trim: rebuild the series without its first
        // two snapshots (indices preserved via append_monotonic semantics
        // -- here we just renumber, which changes frontier identity), then
        // grow past the old length.
        let full = series(9);
        let mut trimmed = SampleSeries::new();
        for (pos, snap) in full.snapshots().iter().skip(2).enumerate() {
            let mut s = snap.clone();
            s.sample_index = pos as u64;
            trimmed.push(s);
        }
        let warm = cache.analyze(&detector, &trimmed).unwrap();

        let mut cold = AnalysisCache::new();
        let fresh = cold.analyze(&detector, &trimmed).unwrap();
        assert_eq!(
            serde_json::to_string(&warm).unwrap(),
            serde_json::to_string(&fresh).unwrap(),
            "a shifted series must produce the cold answer, not stale reuse"
        );
    }
}
