//! Incremental analysis cache for streamed series.
//!
//! `PhaseDetector::detect_series` is stateless: every call re-deltas the
//! whole cumulative series, rebuilds features, recomputes the O(n²·d)
//! pairwise-distance matrix, and reruns the full k sweep. A streaming
//! consumer (the serve daemon answering report queries between snapshot
//! pushes) therefore pays O(n²) *per query* — exactly the repeated
//! analysis the paper's incremental design is meant to avoid.
//!
//! [`AnalysisCache`] removes the redundancy in three layers, each gated
//! on a check that preserves **bit-identical** output versus a cold
//! [`PhaseDetector::detect_series`] call:
//!
//! 1. **Whole-report memoization.** Results are keyed on (sample count,
//!    last sample identity, config fingerprint); a query with no new
//!    snapshot returns the memoized [`PhaseAnalysis`] in O(1).
//! 2. **Incremental deltas.** Interval profiles are the per-snapshot
//!    deltas of a cumulative series; the cache keeps the deltas already
//!    computed and only subtracts the new suffix.
//! 3. **Incremental pairwise distances.** The distance matrix grows via
//!    [`PairwiseDistances::extend`], computing only rows/columns for new
//!    intervals — *iff* the previously-scaled rows are bit-identical
//!    under the new scaling. Column-stat scalings
//!    ([`incprof_cluster::Scaling::MinMax`],
//!    [`incprof_cluster::Scaling::ZScore`]) shift old rows when new data moves the column
//!    stats, so the cache verifies the scaled prefix bit-for-bit (with
//!    feature columns re-aligned through [`FunctionId`]s, since newly
//!    observed functions insert columns) and falls back to a cold
//!    rebuild when anything moved. The fallback is counted as a
//!    `core.cache.invalidations` metric, reuse as `core.cache.pair_extends`.
//!
//! Whatever the path, clustering and Algorithm 1 run on exactly the same
//! scaled dataset (always recomputed — O(n·d)) and a distance matrix
//! whose every entry equals `euclidean(row(i), row(j))` bit-for-bit, so
//! warm output is byte-identical to cold output. `tests/cache_determinism.rs`
//! at the workspace root pins this across all five mini-apps under a
//! streaming push/query interleave.

use crate::pipeline::{FeatureSet, PhaseAnalysis, PhaseDetector, PipelineError};
use incprof_cluster::{Dataset, PairwiseDistances};
use incprof_collect::{IntervalMatrix, SampleSeries};
use incprof_profile::{FlatProfile, FunctionId};

/// Flight-recorder `b` tag: detector config fingerprint changed.
pub const INVALIDATE_FINGERPRINT: u64 = 1;
/// Flight-recorder `b` tag: the sample series shrank (session restart).
pub const INVALIDATE_SHRINK: u64 = 2;
/// Flight-recorder `b` tag: scaled prefix moved; pairwise matrix rebuilt.
pub const INVALIDATE_PAIR: u64 = 3;

/// Memoized result of the last completed analysis.
#[derive(Debug, Clone)]
struct Memo {
    /// Series length the analysis covered.
    samples: usize,
    /// `sample_index` of the last snapshot covered (identity check).
    last_sample_index: u64,
    /// `timestamp_ns` of the last snapshot covered (identity check).
    last_timestamp_ns: u64,
    /// The analysis itself.
    analysis: PhaseAnalysis,
}

/// Per-session incremental analysis state. See the module docs.
///
/// One cache serves one growing [`SampleSeries`]; if the series shrinks
/// or its detector configuration changes, the cache detects it and
/// recomputes from scratch (counted as an invalidation) rather than
/// serving stale results.
#[derive(Debug, Default)]
pub struct AnalysisCache {
    /// Fingerprint of the detector config the cached state was built by.
    fingerprint: Option<u64>,
    /// Last full result, reused verbatim for no-new-data queries.
    memo: Option<Memo>,
    /// Interval (delta) profiles computed so far, one per snapshot.
    intervals: Vec<FlatProfile>,
    /// The cumulative profile the next delta subtracts from.
    prev_cumulative: FlatProfile,
    /// Scaled feature rows from the previous analysis, for prefix
    /// verification before reusing distance entries.
    scaled: Option<Dataset>,
    /// Feature-column function ids of the previous analysis, aligned
    /// with `scaled`'s columns (per feature block).
    feature_fns: Vec<FunctionId>,
    /// The incrementally grown pairwise-distance matrix.
    pair: PairwiseDistances,
    /// This instance's memo hits (the global `core.cache.memo_hits`
    /// counter aggregates across sessions; per-session gauges need the
    /// split). Survives cache resets.
    memo_hits: u64,
    /// This instance's memo misses. Survives cache resets.
    memo_misses: u64,
}

impl AnalysisCache {
    /// Fresh, empty cache.
    pub fn new() -> AnalysisCache {
        AnalysisCache {
            pair: PairwiseDistances::empty(),
            ..Default::default()
        }
    }

    /// Analyze `series` with `detector`, reusing cached work from
    /// previous calls where bit-identity is proven.
    ///
    /// Returns exactly what `detector.detect_series(series)` would —
    /// same values, same bits — or the same error for an empty series.
    pub fn analyze(
        &mut self,
        detector: &PhaseDetector,
        series: &SampleSeries,
    ) -> Result<PhaseAnalysis, PipelineError> {
        let _span = incprof_obs::span(incprof_obs::names::CORE_CACHE_ANALYZE);

        let fp = detector.fingerprint();
        if self.fingerprint != Some(fp) {
            if self.fingerprint.is_some() {
                incprof_obs::counter(incprof_obs::names::CORE_CACHE_INVALIDATIONS).inc();
                incprof_obs::recorder().record(
                    incprof_obs::EventKind::CacheInvalidation,
                    self.intervals.len() as u64,
                    INVALIDATE_FINGERPRINT,
                );
            }
            self.reset();
            self.fingerprint = Some(fp);
        }

        if let Some(memo) = &self.memo {
            if let Some(last) = series.last() {
                if memo.samples == series.len()
                    && memo.last_sample_index == last.sample_index
                    && memo.last_timestamp_ns == last.timestamp_ns
                {
                    incprof_obs::counter(incprof_obs::names::CORE_CACHE_HITS).inc();
                    self.memo_hits += 1;
                    return Ok(memo.analysis.clone());
                }
            }
        }
        incprof_obs::counter(incprof_obs::names::CORE_CACHE_MISSES).inc();
        self.memo_misses += 1;

        if series.is_empty() {
            return Err(PipelineError::NoIntervals);
        }

        self.extend_intervals(series)?;

        let matrix = IntervalMatrix::from_interval_profiles(&self.intervals);
        if matrix.n_intervals() == 0 {
            return Err(PipelineError::NoIntervals);
        }
        if matrix.n_functions() == 0 {
            return Err(PipelineError::NoFunctions);
        }

        let raw = Dataset::from_rows(detector.build_features(&matrix));
        let data = detector.scaling.apply(&raw);

        self.update_pair(detector, &matrix, &data);

        let analysis = detector.detect_scaled(&matrix, &data, Some(&self.pair))?;

        self.scaled = Some(data);
        self.feature_fns = matrix.functions().to_vec();
        let last = series.last().ok_or(PipelineError::NoIntervals)?;
        self.memo = Some(Memo {
            samples: series.len(),
            last_sample_index: last.sample_index,
            last_timestamp_ns: last.timestamp_ns,
            analysis: analysis.clone(),
        });
        Ok(analysis)
    }

    /// Per-instance memo statistics, `(hits, misses)`, for per-session
    /// cache-hit-ratio gauges. Survives a cache reset.
    pub fn stats(&self) -> (u64, u64) {
        (self.memo_hits, self.memo_misses)
    }

    /// Drop all cached state (fingerprint included). Memo statistics
    /// survive: they describe the instance's history, not its contents.
    fn reset(&mut self) {
        let (hits, misses) = (self.memo_hits, self.memo_misses);
        *self = AnalysisCache::new();
        self.memo_hits = hits;
        self.memo_misses = misses;
    }

    /// Bring `self.intervals` up to date with `series`, computing deltas
    /// only for the new snapshot suffix. Replicates
    /// `SampleSeries::interval_profiles` exactly: interval `i` is
    /// `snapshot[i] − snapshot[i−1]`, interval 0 measured from empty.
    fn extend_intervals(&mut self, series: &SampleSeries) -> Result<(), PipelineError> {
        let snaps = series.snapshots();
        if snaps.len() < self.intervals.len() {
            // Series shrank (session restart) — cold restart.
            incprof_obs::counter(incprof_obs::names::CORE_CACHE_INVALIDATIONS).inc();
            incprof_obs::recorder().record(
                incprof_obs::EventKind::CacheInvalidation,
                self.intervals.len() as u64,
                INVALIDATE_SHRINK,
            );
            let fp = self.fingerprint;
            self.reset();
            self.fingerprint = fp;
        }
        for snap in &snaps[self.intervals.len()..] {
            // On a delta error (non-monotonic counters) the already-pushed
            // prefix stays consistent; a retry recomputes only from here.
            self.intervals.push(snap.flat.delta(&self.prev_cumulative)?);
            self.prev_cumulative = snap.flat.clone();
        }
        Ok(())
    }

    /// Grow (or rebuild) the pairwise matrix to cover `data`'s rows.
    ///
    /// Extension is sound only when the first `pair.n()` rows of `data`
    /// are bit-identical to the rows the matrix was computed from, which
    /// [`AnalysisCache::prefix_rows_unchanged`] verifies through the
    /// feature-column function ids. Otherwise a cold rebuild runs.
    fn update_pair(&mut self, detector: &PhaseDetector, matrix: &IntervalMatrix, data: &Dataset) {
        let old_n = self.pair.n();
        let reusable = old_n == 0
            || (old_n <= data.nrows() && self.prefix_rows_unchanged(detector, matrix, data));
        if reusable {
            if old_n > 0 && data.nrows() > old_n {
                incprof_obs::counter(incprof_obs::names::CORE_CACHE_PAIR_EXTENDS).inc();
            }
            self.pair.extend(data);
        } else {
            incprof_obs::counter(incprof_obs::names::CORE_CACHE_INVALIDATIONS).inc();
            incprof_obs::recorder().record(
                incprof_obs::EventKind::CacheInvalidation,
                old_n as u64,
                INVALIDATE_PAIR,
            );
            self.pair = PairwiseDistances::euclidean_of(data);
        }
    }

    /// Check that every previously-scaled row reappears bit-identically
    /// in `data`, after re-aligning feature columns by [`FunctionId`]
    /// (new functions insert columns; an old row's new entries there
    /// must be exactly `0.0`, which leaves Euclidean sums bit-stable).
    fn prefix_rows_unchanged(
        &self,
        detector: &PhaseDetector,
        matrix: &IntervalMatrix,
        data: &Dataset,
    ) -> bool {
        let old = match &self.scaled {
            Some(d) => d,
            None => return false,
        };
        if old.nrows() != self.pair.n() || old.nrows() > data.nrows() {
            return false;
        }
        // Old feature column t maps to new column col_map[t].
        let mut col_map = Vec::with_capacity(self.feature_fns.len());
        for id in &self.feature_fns {
            match matrix.col_of(*id) {
                Some(c) => col_map.push(c),
                // A previously observed function vanished — only possible
                // after a series reset; rebuild cold.
                None => return false,
            }
        }
        let blocks = match detector.features {
            FeatureSet::SelfTime => 1,
            FeatureSet::SelfTimeAndCalls | FeatureSet::SelfTimeAndChildTime => 2,
        };
        let d_old = self.feature_fns.len();
        let d_new = matrix.n_functions();
        if old.ncols() != d_old * blocks || data.ncols() != d_new * blocks {
            return false;
        }
        let mut expected = vec![0.0_f64; d_new * blocks];
        for i in 0..old.nrows() {
            for v in expected.iter_mut() {
                *v = 0.0;
            }
            let old_row = old.row(i);
            for b in 0..blocks {
                for (t, &c) in col_map.iter().enumerate() {
                    expected[b * d_new + c] = old_row[b * d_old + t];
                }
            }
            let new_row = data.row(i);
            for (e, n) in expected.iter().zip(new_row) {
                if e.to_bits() != n.to_bits() {
                    return false;
                }
            }
        }
        true
    }
}
